//! Ablation tests for the design choices called out in DESIGN.md §4.

use diic::core::{
    check_cif, check_with_engine, flat_check, CheckOptions, FlatOptions, StageEngine, ViolationKind,
};
use diic::gen::{generate, ChipSpec, ErrorKind};
use diic::geom::SizingMode;
use diic::tech::nmos::nmos_technology;

/// Same-net suppression: turning it off makes the checker behave like a
/// topology-blind tool — the clean chip sprouts false spacing errors.
#[test]
fn ablation_same_net_suppression() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(3, 2));
    let with = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let without = check_cif(
        &chip.cif,
        &tech,
        &CheckOptions {
            same_net_suppression: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(with.is_clean());
    let false_spacing = without
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::Spacing { same_net: true, .. }))
        .count();
    assert!(
        false_spacing >= 3 * 2,
        "expected at least one same-net false error per cell, got {false_spacing}"
    );
}

/// Metric ablation: the orthogonal (L∞) predicate, equivalent to the
/// expand-check-overlap baseline, over-flags diagonal pairs that the
/// Euclidean predicate accepts.
#[test]
fn ablation_metric() {
    let tech = nmos_technology();
    // Corners at gap 550/550: L2 = 778 >= 750 legal, L∞ = 550 < 750.
    let cif = "L NM; B 1000 750 500 375; B 1000 750 2050 1675; E";
    let euclid = check_cif(
        cif,
        &tech,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    let orth = check_cif(
        cif,
        &tech,
        &CheckOptions {
            metric: SizingMode::Orthogonal,
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(euclid.is_clean(), "{:?}", euclid.violations);
    assert_eq!(orth.violations.len(), 1);
}

/// Hierarchy ablation: the candidate cache changes nothing about the
/// verdicts across seeds and error mixes — only the work done.
#[test]
fn ablation_hierarchical_cache_equivalence() {
    let tech = nmos_technology();
    for seed in [1u64, 7, 23, 99] {
        let chip = generate(&ChipSpec::with_errors(
            5,
            2,
            vec![
                ErrorKind::NarrowWire,
                ErrorKind::CloseSpacing,
                ErrorKind::ButtedBoxes,
                ErrorKind::AccidentalTransistor,
            ],
            seed,
        ));
        let hier = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
        let flat = check_cif(
            &chip.cif,
            &tech,
            &CheckOptions {
                hierarchical: false,
                ..Default::default()
            },
        )
        .unwrap();
        let key = |v: &diic::core::Violation| {
            (
                format!("{}", v.kind),
                v.location.map(|r| (r.x1, r.y1, r.x2, r.y2)),
            )
        };
        let mut a: Vec<_> = hier.violations.iter().map(key).collect();
        let mut b: Vec<_> = flat.violations.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "seed {seed}: verdicts diverge");
        assert!(
            hier.interact_stats.cache_hits > 0,
            "seed {seed}: cache unused"
        );
    }
}

/// Parallel-flat ablation: splitting the baseline's per-layer Boolean
/// work across workers changes nothing about the verdicts, and the flat
/// stage set reports the new per-phase profile entries the e16 table
/// exercises.
#[test]
fn ablation_parallel_flat_baseline() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        4,
        2,
        vec![
            ErrorKind::NarrowWire,
            ErrorKind::CloseSpacing,
            ErrorKind::ContactOverGate,
        ],
        17,
    ));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let serial = flat_check(&layout, &tech, &FlatOptions::default());
    assert!(
        !serial.is_empty(),
        "injected faults must reach the baseline"
    );
    for workers in [2usize, 8, 0] {
        let parallel = flat_check(
            &layout,
            &tech,
            &FlatOptions {
                parallelism: workers,
                ..FlatOptions::default()
            },
        );
        assert_eq!(serial, parallel, "workers={workers}: flat verdicts diverge");
    }
    // Engine wiring: the parallel flat phases appear in the stage profile.
    let report = check_with_engine(
        &StageEngine::flat_baseline(FlatOptions::default()),
        &layout,
        &tech,
        &CheckOptions {
            parallelism: 4,
            ..CheckOptions::default()
        },
    );
    assert_eq!(report.violations, serial);
    for stage in ["flat-union", "flat-width", "flat-spacing", "flat-gate"] {
        assert!(
            report.stage_profile.iter().any(|s| s.name == stage),
            "missing stage_profile entry {stage}: {:?}",
            report.stage_profile
        );
    }
}

/// Immunity ablation: the 9C flag waives exactly the device's internal
/// rules and nothing else.
#[test]
fn ablation_immunity_flag() {
    let tech = nmos_technology();
    let broken = "
        DS 1; 9 odd; 9D NMOS_ENH;
        L NP; B 1000 500 250 0;
        L ND; B 500 2500 250 0;
        DF; C 1; E";
    let waived = broken.replace("9D NMOS_ENH;", "9D NMOS_ENH; 9C;");
    let opt = CheckOptions {
        erc: false,
        ..Default::default()
    };
    let r1 = check_cif(broken, &tech, &opt).unwrap();
    let r2 = check_cif(&waived, &tech, &opt).unwrap();
    assert!(!r1.is_clean());
    assert!(r2.is_clean(), "{:?}", r2.violations);
    assert_eq!(r2.waived_devices, vec!["odd"]);
}

/// The DSL round trip preserves checker behaviour end to end: a technology
/// serialised to a rule file and re-parsed yields identical reports.
#[test]
fn ablation_rule_file_roundtrip_behaviour() {
    let nmos = nmos_technology();
    let reparsed = diic::tech::dsl::parse_rules(&diic::tech::dsl::to_rules(&nmos)).unwrap();
    let chip = generate(&ChipSpec::with_errors(
        3,
        1,
        vec![ErrorKind::NarrowWire, ErrorKind::ContactOverGate],
        5,
    ));
    let a = check_cif(&chip.cif, &nmos, &CheckOptions::default()).unwrap();
    let b = check_cif(&chip.cif, &reparsed, &CheckOptions::default()).unwrap();
    assert_eq!(a.violations.len(), b.violations.len());
}
