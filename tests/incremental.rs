//! The **fifth leg** of the differential oracle: incremental == full.
//!
//! `tests/differential.rs` pins flat/hierarchical × serial/parallel to
//! one answer; this suite pins the *edit loop* to it too. Every
//! proptest case generates a chip (with injected faults), opens a
//! [`CheckSession`], and drives it through a sequence of random edits
//! (adds, fault stubs, removes, moves, cell-definition replacements).
//! After **every** step the session's patched report must be
//! byte-identical — violations in canonical order, net list, counts —
//! to a from-scratch [`canonical_check`] of the edited layout, under
//! both a serial session and one running at the `CHECK_PARALLELISM`
//! worker count (CI forces 1 and `$(nproc)` in separate steps).

use diic::core::incremental::{CheckSession, EditSet};
use diic::core::{canonical_check, env_parallelism, CheckOptions, CheckReport};
use diic::gen::{generate, random_edit_set, ChipSpec, ErrorKind};
use diic::geom::Rect;
use diic::tech::nmos::nmos_technology;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The parallel worker count exercised against serial runs.
fn wide_workers() -> usize {
    env_parallelism().unwrap_or(0) // 0 = all available cores
}

/// Asserts the session's cached report equals a from-scratch canonical
/// check of its current layout, field by comparable field.
fn assert_matches_full(session: &CheckSession, context: &str) -> CheckReport {
    let full = session.full_check();
    assert_eq!(
        session.report().violations,
        full.violations,
        "{context}: patched violations diverge from full re-check"
    );
    assert_eq!(
        session.report().netlist,
        full.netlist,
        "{context}: patched net list diverges"
    );
    assert_eq!(
        session.report().element_count,
        full.element_count,
        "{context}"
    );
    assert_eq!(
        session.report().device_count,
        full.device_count,
        "{context}"
    );
    assert_eq!(
        session.report().waived_devices,
        full.waived_devices,
        "{context}"
    );
    full
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The oracle proper: ≥ 32 chips × ≥ 8 edit steps, serial and wide
    /// sessions in lockstep, both equal to the from-scratch check at
    /// every step — and equal to each other.
    #[test]
    fn edit_sequences_match_full_checks(
        nx in 2usize..4,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");

        let serial_options = CheckOptions::default();
        let wide_options = CheckOptions {
            parallelism: wide_workers(),
            ..CheckOptions::default()
        };
        let mut serial = CheckSession::new(layout.clone(), &tech, &serial_options);
        let mut wide = CheckSession::new(layout, &tech, &wide_options);
        assert_matches_full(&serial, "step 0 (serial)");

        // Both sessions see the same edit stream.
        let bounds = Rect::new(-2500, -6000, nx as i64 * 6750 + 2500, ny as i64 * 10000 + 2500);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1C);
        for step in 0..8 {
            let edits = random_edit_set(serial.layout(), bounds, step, &mut rng);
            serial.apply(&edits).expect("generated edits are valid");
            wide.apply(&edits).expect("generated edits are valid");
            let ctx = format!("step {} (nx={nx} ny={ny} seed={seed} mask={mask:#b})", step + 1);
            let full = assert_matches_full(&serial, &ctx);
            prop_assert_eq!(
                &wide.report().violations,
                &full.violations,
                "{}: wide session diverges",
                ctx
            );
            prop_assert_eq!(&wide.report().netlist, &full.netlist, "{}", ctx);
        }
    }
}

/// A clean chip stays clean through benign edits (moving an instance
/// around in free space must not fabricate violations), and the patched
/// report still matches the full check at every step.
#[test]
fn benign_edits_on_clean_chip_stay_clean() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(3, 2));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let mut session = CheckSession::new(layout, &tech, &CheckOptions::default());
    assert!(
        session.report().violations.is_empty(),
        "seed chip must be clean"
    );

    // A clean wire far below the array, then slide it around.
    let mut add = EditSet::new();
    add.add_box("NM", Rect::new(0, -20000, 2000, -19250), Some("IO_PROBE"));
    let n = session.layout().top_items().len();
    session.apply(&add).unwrap();
    for dx in [2500i64, 2500, -5000] {
        let mut mv = EditSet::new();
        mv.translate(n, dx, 0);
        session.apply(&mv).unwrap();
        assert!(
            session.report().violations.is_empty(),
            "{:?}",
            session.report().violations
        );
        assert_matches_full(&session, "benign move");
    }
}

/// Editing must also *repair*: injecting a fault stub and then removing
/// it returns the report to its original bytes.
#[test]
fn fault_injection_roundtrip() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(2, 1));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let mut session = CheckSession::new(layout, &tech, &CheckOptions::default());
    let clean = session.report().violations.clone();

    let mut fault = EditSet::new();
    fault.add_box("NM", Rect::new(0, -10000, 2000, -9300), None); // 700 < 750 wide
    let idx = session.layout().top_items().len();
    let stats = session.apply(&fault).unwrap();
    assert!(stats.spliced > 0, "{stats:?}");
    assert!(
        session.report().violations.len() > clean.len(),
        "fault stub must be reported"
    );
    assert_matches_full(&session, "after fault");

    let mut repair = EditSet::new();
    repair.remove(idx);
    session.apply(&repair).unwrap();
    assert_eq!(
        session.report().violations,
        clean,
        "repair must restore the report"
    );
    assert_matches_full(&session, "after repair");
}

/// Small edits on a mid-size array should re-check only a neighbourhood:
/// the scoped interaction pass must evaluate far fewer candidate pairs
/// than the full run enumerates.
#[test]
fn small_edit_rechecks_a_small_neighbourhood() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec {
        demo_cells: false,
        ..ChipSpec::clean(6, 4)
    });
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let options = CheckOptions::default();
    let full_pairs = canonical_check(&layout, &tech, &options)
        .interact_stats
        .candidate_pairs;
    let mut session = CheckSession::new(layout, &tech, &options);

    let mut edits = EditSet::new();
    edits.add_box(
        "NM",
        Rect::new(500, 5600 - 375, 2500, 5600 + 375),
        Some("IO_PROBE"),
    );
    let stats = session.apply(&edits).unwrap();
    assert_matches_full(&session, "probe stub");
    assert!(
        stats.rechecked_pairs * 4 < full_pairs,
        "scoped pass re-evaluated {}/{} pairs — not incremental",
        stats.rechecked_pairs,
        full_pairs
    );
    assert!(stats.dirty_items == 1, "{stats:?}");
}
