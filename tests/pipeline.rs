//! End-to-end integration tests: generated chips through the full pipeline.

use diic::core::{check_cif, flat_check, CheckOptions, CheckStage, FlatOptions, ViolationKind};
use diic::gen::{generate, ChipSpec, ErrorKind};
use diic::tech::nmos::nmos_technology;

/// Mega-chip smoke (debug-sized; the release-mode CI job runs the same
/// shape at ~10⁶ elements via `mega_smoke`): the bounded-memory
/// pipeline — sharded instantiation, tiled interactions, a counting
/// sink — checks a clean library-scale array clean, with the candidate
/// buffer peak bounded by the widest tile rather than the total pair
/// count, and identical to the buffered run.
#[test]
fn mega_chip_smoke_bounded_memory() {
    use diic::core::{check_with_sink, CountingSink, StageEngine};

    let tech = nmos_technology();
    let chip = diic::gen::mega_chip(4_000);
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let options = CheckOptions {
        erc: false,
        parallelism: 0,
        ..CheckOptions::default() // tiled interactions are the default
    };
    let mut sink = CountingSink::new();
    let tiled = check_with_sink(
        &StageEngine::diic_pipeline(),
        &layout,
        &tech,
        &options,
        &mut sink,
    );
    assert!(tiled.element_count >= 4_000, "{}", tiled.element_count);
    assert_eq!(sink.total(), 0, "clean mega array must check clean");
    assert!(tiled.violations.is_empty(), "streaming run buffers nothing");
    assert!(
        tiled.interact_stats.peak_candidate_buffer < tiled.interact_stats.candidate_pairs,
        "peak {} not bounded below total pairs {}",
        tiled.interact_stats.peak_candidate_buffer,
        tiled.interact_stats.candidate_pairs
    );

    let buffered = check_cif(
        &chip.cif,
        &tech,
        &CheckOptions {
            tiled_interactions: false,
            ..options
        },
    )
    .unwrap();
    assert!(buffered.is_clean());
    assert_eq!(
        buffered.interact_stats.candidate_pairs, tiled.interact_stats.candidate_pairs,
        "tiling must enumerate every pair exactly once"
    );
}

#[test]
fn clean_chip_is_clean() {
    let tech = nmos_technology();
    for (nx, ny) in [(1, 1), (3, 1), (4, 2)] {
        let chip = generate(&ChipSpec::clean(nx, ny));
        let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
        assert!(
            report.is_clean(),
            "{nx}x{ny} chip not clean:\n{}",
            diic::core::format_report(&report.violations)
        );
    }
}

#[test]
fn clean_chip_without_demo_cells_is_clean_for_flat_widths() {
    // The flat checker on a clean chip must report only its signature false
    // errors (the same-net tie gap per cell, the butting contact), never
    // width errors.
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(3, 2));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let flat = flat_check(&layout, &tech, &FlatOptions::default());
    assert!(
        flat.iter()
            .all(|v| !matches!(v.kind, ViolationKind::Width { .. })),
        "{flat:?}"
    );
    assert!(!flat.is_empty(), "flat checker should produce false errors");
}

#[test]
fn every_injected_error_is_caught_by_diic() {
    let tech = nmos_technology();
    for kind in ErrorKind::ALL {
        let chip = generate(&ChipSpec::with_errors(3, 2, vec![kind], 11));
        let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
        let regions = diic::core::account(&report.violations, &chip.injected(), 800);
        assert_eq!(
            regions.unchecked,
            0,
            "{kind} not caught; report:\n{}",
            diic::core::format_report(&report.violations)
        );
        assert_eq!(regions.real_flagged, 1, "{kind}");
    }
}

#[test]
fn diic_has_no_false_errors_on_injected_chips() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        4,
        2,
        vec![
            ErrorKind::NarrowWire,
            ErrorKind::CloseSpacing,
            ErrorKind::AccidentalTransistor,
            ErrorKind::ButtedBoxes,
        ],
        23,
    ));
    let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let regions = diic::core::account(&report.violations, &chip.injected(), 800);
    assert_eq!(regions.false_errors, 0, "{:#?}", report.violations);
    assert_eq!(regions.unchecked, 0);
}

#[test]
fn flat_checker_misses_topological_errors() {
    let tech = nmos_technology();
    // Errors invisible to a mask-level checker.
    for kind in [
        ErrorKind::AccidentalTransistor,
        ErrorKind::ButtedBoxes,
        ErrorKind::PowerGroundShort,
        ErrorKind::BusToRail,
        ErrorKind::BadGateOverhang,
    ] {
        let chip = generate(&ChipSpec::with_errors(3, 1, vec![kind], 5));
        let layout = diic::cif::parse(&chip.cif).unwrap();
        let flat = flat_check(&layout, &tech, &FlatOptions::default());
        let regions = diic::core::account(&flat, &chip.injected(), 800);
        assert_eq!(
            regions.unchecked, 1,
            "{kind} unexpectedly caught: {flat:#?}"
        );
    }
}

#[test]
fn flat_false_error_ratio_exceeds_paper_claim() {
    // The paper: "the ratio of false to real errors can be 10 to 1 or
    // higher". A 6x4 array with two real errors reproduces it.
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        6,
        4,
        vec![ErrorKind::NarrowWire, ErrorKind::CloseSpacing],
        31,
    ));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let flat = flat_check(&layout, &tech, &FlatOptions::default());
    let flat_regions = diic::core::account(&flat, &chip.injected(), 800);
    assert!(
        flat_regions.false_to_real_ratio() >= 10.0,
        "flat ratio {} (false {} / real {})",
        flat_regions.false_to_real_ratio(),
        flat_regions.false_errors,
        flat_regions.real_flagged
    );
    // DIIC on the same chip: everything caught, nothing false.
    let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let diic_regions = diic::core::account(&report.violations, &chip.injected(), 800);
    assert_eq!(diic_regions.false_errors, 0);
    assert_eq!(diic_regions.unchecked, 0);
}

#[test]
fn netlist_consistency_check_passes_on_clean_chip() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(3, 1));
    let options = CheckOptions {
        intended_netlist: Some(chip.intended_netlist.clone()),
        ..CheckOptions::default()
    };
    let report = check_cif(&chip.cif, &tech, &options).unwrap();
    assert!(
        report.is_clean(),
        "{}",
        diic::core::format_report(&report.violations)
    );
}

#[test]
fn netlist_consistency_detects_miswiring() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(2, 1));
    // Intend a different wiring: swap the golden netlist's chain length.
    let wrong = diic::gen::chip::intended_netlist(&ChipSpec::clean(3, 1));
    let options = CheckOptions {
        intended_netlist: Some(wrong),
        ..CheckOptions::default()
    };
    let report = check_cif(&chip.cif, &tech, &options).unwrap();
    assert!(report
        .violations
        .iter()
        .any(|v| v.stage == CheckStage::NetList));
}

#[test]
fn hierarchical_and_flat_search_agree_on_generated_chips() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        4,
        2,
        vec![ErrorKind::CloseSpacing, ErrorKind::AccidentalTransistor],
        17,
    ));
    let hier = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let flat = check_cif(
        &chip.cif,
        &tech,
        &CheckOptions {
            hierarchical: false,
            ..CheckOptions::default()
        },
    )
    .unwrap();
    assert_eq!(hier.violations.len(), flat.violations.len());
    assert!(hier.interact_stats.cache_hits > 0);
}

#[test]
fn extraction_matches_intended_structure_for_sizes() {
    let tech = nmos_technology();
    for nx in [1, 2, 5] {
        let chip = generate(&ChipSpec::clean(nx, 1));
        let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
        let diff = diic::netlist::compare_by_structure(&report.netlist, &chip.intended_netlist, 12);
        assert!(diff.matched, "nx={nx}: {:?}", diff.messages);
    }
}
