//! The differential test oracle for the paper's central claim: the
//! hierarchical candidate search finds **exactly** what the flat
//! (fully-instantiated) search finds, only faster — and parallelism
//! changes nothing at all. (The mask-level *baseline* checker finds
//! different things by design — that asymmetry is the paper's point —
//! so its own serial/parallel identity is checked separately below.)
//!
//! Every generated chip (with injected faults from `diic-gen`'s ledger)
//! is checked four ways:
//!
//! | path          | `hierarchical` | `parallelism` |
//! |---------------|----------------|---------------|
//! | flat-serial   | false          | 1             |
//! | flat-parallel | false          | wide          |
//! | hier-serial   | true           | 1             |
//! | hier-parallel | true           | wide          |
//!
//! Within one search engine, serial and parallel reports must be
//! **byte-identical** (ordered lists and statistics). Across engines,
//! the reports must be identical **after a canonical sort** (the two
//! searches enumerate candidates in different walk orders). On top of
//! the equivalence, every injected fault must be recalled by all four
//! paths (region 1 of the paper's Fig. 1 accounting stays empty).
//!
//! The "wide" worker count honours the `CHECK_PARALLELISM` environment
//! variable (CI forces it to `1` and to `$(nproc)` in separate steps),
//! defaulting to all available cores.
//!
//! On top of the four paths, the **sixth differential leg**
//! (`tiled_streaming_equals_buffered`; the fifth is the incremental
//! oracle in `tests/incremental.rs`) pins the bounded-memory pipeline:
//! the tiled streaming interaction search must be byte-identical to the
//! buffered all-pairs baseline under both engines and both worker
//! counts, with identical statistics apart from the candidate-buffer
//! peak it exists to bound.
//!
//! The **seventh leg** (`parallel_connections_and_netgen_equal_serial`)
//! pins the two stages parallelised after the interaction search: the
//! tile-sharded connection scan and the netgen per-scope union phase
//! must produce byte-identical results — violations, merges,
//! `pairs_examined`, and the assembled net list — for any worker count.
//! Alongside it, `interned_strings_round_trip` proves the `ChipView`
//! string interner is a pure storage decision: every rendered
//! `path` / `net_key` string resolves back to its own handle, parallel
//! instantiation renders the same strings as serial, and shared paths
//! collapse to single interner entries.
//!
//! The **eighth leg** (`columnar_equals_boxed`) pins the columnar
//! element store the same way: the struct-of-arrays `ElementColumns`
//! layout is a pure storage decision. Every generated chip's columns
//! round-trip through boxed `ChipElement` records back to identical
//! columns, and each `ElementRef` accessor agrees field for field with
//! its boxed counterpart — so the batch kernels sweeping column slices
//! see exactly what per-record code saw. (The **ninth leg** — the
//! disk-spilling sink against the buffered canonical report — lives in
//! `tests/sinks.rs`.)
//!
//! The **tenth leg** (`deck_compiled_nmos_equals_hardcoded`) pins the
//! rule-deck front end: compiling the checked-in `decks/nmos.deck`
//! through `diic::deck` must produce a `Technology` equal to the
//! hardcoded `nmos_technology()` recipe, and every faulted chip must
//! check **byte-identically** under the two on all four search paths —
//! the deck language is a pure representation decision. Alongside it,
//! `random_decks_preserve_fault_recall` compiles generator-produced
//! deck variations (spacing only ever tightened, `same_mask` sometimes
//! added) and re-runs the recall oracle under them: rule decks that
//! tighten rules never lose injected faults.

use diic::core::{
    account, check_cif, check_connections, check_connections_parallel, env_parallelism, flat_check,
    generate_netlist, generate_netlist_parallel, instantiate_parallel, CheckOptions, CheckReport,
    ElementColumns, FlatOptions, LayerBinding, Violation,
};
use diic::gen::{generate, ChipSpec, ErrorKind};
use diic::tech::nmos::nmos_technology;
use diic::tech::Technology;
use proptest::prelude::*;

/// The parallel worker count exercised against serial runs.
fn wide_workers() -> usize {
    env_parallelism().unwrap_or(0) // 0 = all available cores
}

/// Canonical form of a report's violation set: sorted debug renderings,
/// so "identical after canonical sort" is literal byte equality.
fn canonical(violations: &[Violation]) -> Vec<String> {
    let mut v: Vec<String> = violations.iter().map(|x| format!("{x:?}")).collect();
    v.sort();
    v
}

fn run(cif: &str, tech: &Technology, hierarchical: bool, parallelism: usize) -> CheckReport {
    check_cif(
        cif,
        tech,
        &CheckOptions {
            hierarchical,
            parallelism,
            ..CheckOptions::default()
        },
    )
    .expect("generated chips always parse")
}

/// Checks the four-way contract for one generated chip; returns the
/// reports for further assertions.
fn assert_four_way(chip_cif: &str, tech: &Technology) -> [CheckReport; 4] {
    let wide = wide_workers();
    let flat_serial = run(chip_cif, tech, false, 1);
    let flat_parallel = run(chip_cif, tech, false, wide);
    let hier_serial = run(chip_cif, tech, true, 1);
    let hier_parallel = run(chip_cif, tech, true, wide);

    // Serial vs parallel, same engine: byte-identical ordered reports.
    assert_eq!(
        flat_serial.violations, flat_parallel.violations,
        "flat search: parallel run diverges from serial"
    );
    assert_eq!(flat_serial.interact_stats, flat_parallel.interact_stats);
    assert_eq!(
        hier_serial.violations, hier_parallel.violations,
        "hierarchical search: parallel run diverges from serial"
    );
    assert_eq!(hier_serial.interact_stats, hier_parallel.interact_stats);

    // Flat vs hierarchical: identical violation sets after canonical sort.
    assert_eq!(
        canonical(&flat_serial.violations),
        canonical(&hier_serial.violations),
        "flat and hierarchical searches disagree on the violation set"
    );
    [flat_serial, flat_parallel, hier_serial, hier_parallel]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The oracle proper: ≥ 64 proptest-generated chips with injected
    /// faults, all four paths agree, and every injected fault is
    /// recalled by every path.
    #[test]
    fn four_way_equivalence_with_fault_recall(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let cells = nx * ny;
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(cells)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let injected = chip.injected();
        let reports = assert_four_way(&chip.cif, &tech);
        for (path, report) in ["flat-serial", "flat-parallel", "hier-serial", "hier-parallel"]
            .iter()
            .zip(&reports)
        {
            let regions = account(&report.violations, &injected, 800);
            prop_assert_eq!(
                regions.unchecked, 0,
                "{}: {} of {} injected faults missed (nx={} ny={} seed={} mask={:#b})",
                path, regions.unchecked, regions.injected, nx, ny, seed, mask
            );
        }
    }

    /// The **sixth leg**: the tiled streaming pipeline (bounded
    /// candidate memory — the default) is byte-identical to the
    /// buffered baseline that materialises the full pair list, under
    /// both search engines, serial and wide — and the buffered peak
    /// actually buffers the whole list while the tiled one is bounded
    /// by a tile. ≥ 32 proptest chips with injected faults.
    #[test]
    fn tiled_streaming_equals_buffered(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let wide = wide_workers();
        for hierarchical in [false, true] {
            for parallelism in [1usize, wide] {
                let opts = CheckOptions {
                    hierarchical,
                    parallelism,
                    ..CheckOptions::default()
                };
                let buffered = check_cif(
                    &chip.cif,
                    &tech,
                    &CheckOptions {
                        tiled_interactions: false,
                        ..opts.clone()
                    },
                )
                .expect("generated chips always parse");
                let tiled = check_cif(
                    &chip.cif,
                    &tech,
                    &CheckOptions {
                        tiled_interactions: true,
                        ..opts
                    },
                )
                .expect("generated chips always parse");
                prop_assert_eq!(
                    &tiled.violations, &buffered.violations,
                    "hier={} workers={}: tiled diverges from buffered \
                     (nx={} ny={} seed={} mask={:#b})",
                    hierarchical, parallelism, nx, ny, seed, mask
                );
                // Identical statistics modulo the peak, which is the
                // point of the refactor: every pair still enumerated
                // and counted exactly once.
                let flatten_peak = |s: &diic::core::InteractStats| diic::core::InteractStats {
                    peak_candidate_buffer: 0,
                    ..*s
                };
                prop_assert_eq!(
                    flatten_peak(&tiled.interact_stats),
                    flatten_peak(&buffered.interact_stats),
                    "hier={} workers={}: stats diverge",
                    hierarchical, parallelism
                );
                prop_assert_eq!(
                    buffered.interact_stats.peak_candidate_buffer,
                    buffered.interact_stats.candidate_pairs,
                    "the buffered run must hold the whole pair list"
                );
                prop_assert!(
                    tiled.interact_stats.peak_candidate_buffer
                        <= buffered.interact_stats.peak_candidate_buffer,
                    "tiled peak above buffered: {} > {}",
                    tiled.interact_stats.peak_candidate_buffer,
                    buffered.interact_stats.peak_candidate_buffer
                );
            }
        }
    }

    /// The **seventh leg**: the tile-sharded connection scan and the
    /// netgen per-scope union phase must be byte-identical to their
    /// serial forms for any worker count — stage outputs compared
    /// directly (violations, merges, pairs examined, the assembled net
    /// list and per-element / per-terminal resolutions), not just the
    /// end-to-end report.
    #[test]
    fn parallel_connections_and_netgen_equal_serial(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let mut view = instantiate_parallel(&layout, &tech, &binding, 1);
        let labels: Vec<_> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();

        let conn_serial = check_connections(&view, &tech);
        let nets_serial = generate_netlist(&mut view, &tech, &conn_serial.merges, &labels);
        let wide = wide_workers();
        for workers in [2usize, 3, wide] {
            let conn = check_connections_parallel(&view, &tech, workers);
            prop_assert_eq!(
                &conn.violations, &conn_serial.violations,
                "connections: {} workers diverge (nx={} ny={} seed={} mask={:#b})",
                workers, nx, ny, seed, mask
            );
            prop_assert_eq!(&conn.merges, &conn_serial.merges, "workers={}", workers);
            prop_assert_eq!(conn.pairs_examined, conn_serial.pairs_examined);

            let nets = generate_netlist_parallel(&mut view, &tech, &conn.merges, &labels, workers);
            prop_assert_eq!(
                &nets.netlist, &nets_serial.netlist,
                "netgen: {} workers diverge (nx={} ny={} seed={} mask={:#b})",
                workers, nx, ny, seed, mask
            );
            prop_assert_eq!(&nets.element_net, &nets_serial.element_net);
            prop_assert_eq!(&nets.device_terminal_nets, &nets_serial.device_terminal_nets);
        }
    }

    /// The interner round-trip oracle: interning `path` / `net_key` /
    /// device-type strings behind `u32` handles must not change a
    /// single rendered string. Every handle resolves back to itself
    /// through a read-only lookup, parallel (sharded) instantiation
    /// renders exactly the serial strings, and elements sharing an
    /// instance share one interned path entry.
    #[test]
    fn interned_strings_round_trip(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        // Faulted chips, like the other legs: injected errors perturb
        // instance geometry and paths, so the oracle sees genuinely
        // distinct string populations, not one clean array per size.
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let serial = instantiate_parallel(&layout, &tech, &binding, 1);
        let wide = instantiate_parallel(&layout, &tech, &binding, wide_workers().max(2));

        let mut distinct = std::collections::HashSet::new();
        for e in &serial.elements {
            // Round trip: the rendered string resolves back to the
            // handle that rendered it (the interner stores one copy).
            prop_assert_eq!(
                serial.strings.lookup(serial.str(e.net_key())),
                Some(e.net_key())
            );
            prop_assert_eq!(serial.strings.lookup(serial.str(e.path())), Some(e.path()));
            distinct.insert(serial.str(e.path()).to_string());
        }
        prop_assert!(
            distinct.len() < serial.elements.len() || serial.elements.len() <= 1,
            "generated chips share instance paths; interning found none shared"
        );
        // Parallel instantiation renders the same strings element for
        // element, device for device.
        prop_assert_eq!(serial.elements.len(), wide.elements.len());
        for (a, b) in serial.elements.iter().zip(&wide.elements) {
            prop_assert_eq!(serial.str(a.net_key()), wide.str(b.net_key()));
            prop_assert_eq!(serial.str(a.path()), wide.str(b.path()));
        }
        for (a, b) in serial.devices.iter().zip(&wide.devices) {
            prop_assert_eq!(serial.str(a.path), wide.str(b.path));
            prop_assert_eq!(serial.str(a.device_type), wide.str(b.device_type));
        }
    }

    /// The **eighth leg**: the columnar element store is a pure layout
    /// decision. For arbitrary generated chips, `ElementColumns`
    /// round-trips through boxed `ChipElement` records back to
    /// identical columns (arenas, ranges, flag bits and all, via the
    /// derived equality), and every `ElementRef` accessor agrees field
    /// for field with the boxed record it materialises — so batch
    /// kernels sweeping contiguous column slices see exactly the data
    /// per-record code saw before the refactor.
    #[test]
    fn columnar_equals_boxed(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let view = instantiate_parallel(&layout, &tech, &binding, 1);

        let boxed = view.elements.to_elements();
        prop_assert_eq!(boxed.len(), view.elements.len());
        for (e, rec) in view.elements.iter().zip(&boxed) {
            // Accessor view vs boxed record, field for field. Ids are
            // implicit column positions in the columnar store.
            prop_assert_eq!(e.id(), rec.id);
            prop_assert_eq!(e.layer(), rec.layer);
            prop_assert_eq!(e.bbox(), rec.bbox);
            prop_assert_eq!(e.rects(), rec.rects.as_slice());
            prop_assert_eq!(e.net_key(), rec.net_key);
            prop_assert_eq!(e.net_declared(), rec.net_declared);
            prop_assert_eq!(e.path(), rec.path);
            prop_assert_eq!(e.device(), rec.device);
            prop_assert_eq!(e.source(), rec.source);
            prop_assert_eq!(e.has_skeleton(), rec.skeleton.is_some());
            let scaled = rec.skeleton.as_ref().map(|s| s.scaled_rects()).unwrap_or(&[]);
            prop_assert_eq!(e.skeleton(), scaled);
            prop_assert_eq!(&e.to_element(), rec);
        }
        // And back: rebuilding the columns from the boxed records
        // reproduces the resident store exactly.
        let rebuilt = ElementColumns::from_elements(boxed);
        prop_assert_eq!(&rebuilt, &view.elements);
    }

    /// The **tenth leg**: the deck-compiled NMOS technology is
    /// indistinguishable from the hardcoded one — equal as a value, and
    /// byte-identical in every report over the faulted corpus, flat and
    /// hierarchical, serial and wide.
    #[test]
    fn deck_compiled_nmos_equals_hardcoded(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let hard = nmos_technology();
        let deck = diic::deck::compile_str(diic::deck::NMOS_DECK)
            .expect("the checked-in NMOS deck compiles");
        prop_assert_eq!(&deck, &hard, "decks/nmos.deck drifted from nmos_technology()");

        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let wide = wide_workers();
        for hierarchical in [false, true] {
            for parallelism in [1usize, wide] {
                let under_hard = run(&chip.cif, &hard, hierarchical, parallelism);
                let under_deck = run(&chip.cif, &deck, hierarchical, parallelism);
                prop_assert_eq!(
                    &under_deck.violations, &under_hard.violations,
                    "hier={} workers={}: deck-compiled tech diverges \
                     (nx={} ny={} seed={} mask={:#b})",
                    hierarchical, parallelism, nx, ny, seed, mask
                );
                prop_assert_eq!(under_deck.interact_stats, under_hard.interact_stats);
                prop_assert_eq!(&under_deck.netlist, &under_hard.netlist);
            }
        }
    }

    /// Generated rule decks (tightened spacings, sometimes a
    /// `same_mask` rule) keep the four-way contract **and** full fault
    /// recall: a deck that only tightens rules can add violations but
    /// never lose an injected fault.
    #[test]
    fn random_decks_preserve_fault_recall(
        nx in 2usize..4,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
        deck_seed in 0u64..1_000,
    ) {
        let tech = diic::deck::compile_str(&diic::gen::random_deck(deck_seed))
            .expect("generated decks always compile");
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let injected = chip.injected();
        let reports = assert_four_way(&chip.cif, &tech);
        for (path, report) in ["flat-serial", "flat-parallel", "hier-serial", "hier-parallel"]
            .iter()
            .zip(&reports)
        {
            let regions = account(&report.violations, &injected, 800);
            prop_assert_eq!(
                regions.unchecked, 0,
                "{}: deck {} lost {} of {} injected faults \
                 (nx={} ny={} seed={} mask={:#b})",
                path, deck_seed, regions.unchecked, regions.injected, nx, ny, seed, mask
            );
        }
    }

    /// The mask-level baseline's parallel per-layer Boolean work,
    /// under the same oracle regime: serial and wide runs of
    /// `flat_check` must be byte-identical on every generated chip.
    #[test]
    fn flat_baseline_parallel_is_byte_identical(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");
        let serial = flat_check(&layout, &tech, &FlatOptions::default());
        let parallel = flat_check(
            &layout,
            &tech,
            &FlatOptions {
                parallelism: wide_workers(),
                ..FlatOptions::default()
            },
        );
        prop_assert_eq!(
            serial, parallel,
            "flat baseline: parallel run diverges (nx={} ny={} seed={} mask={:#b})",
            nx, ny, seed, mask
        );
    }
}

/// A clean chip must stay clean on all four paths (no false errors
/// introduced by parallelism or the candidate cache).
#[test]
fn clean_chip_is_clean_on_all_paths() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(4, 2));
    for report in assert_four_way(&chip.cif, &tech) {
        assert!(report.is_clean(), "{:#?}", report.violations);
    }
}

/// The hierarchical cache must actually engage on the arrays the oracle
/// generates — otherwise the differential test compares the flat search
/// against itself.
#[test]
fn oracle_workload_exercises_the_cache() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        4,
        2,
        vec![ErrorKind::NarrowWire, ErrorKind::CloseSpacing],
        7,
    ));
    let [_, _, hier, _] = assert_four_way(&chip.cif, &tech);
    assert!(hier.interact_stats.cache_hits > 0, "cache unused");
    assert!(hier.interact_stats.cache_misses > 0);
}
