//! The **twelfth differential leg**: the service == the session.
//!
//! Everything the check-as-a-service API returns must be
//! byte-identical to driving the underlying [`CheckSession`] /
//! [`check_library_in`] locally — the HTTP layer (wire codecs, the
//! registry's locking and eviction, streamed bodies) must add exactly
//! zero semantics. Each proptest case generates a faulted chip, opens
//! it twice through the in-process router (a serial session and one at
//! the `CHECK_PARALLELISM` wide worker count, like every other leg),
//! and drives both with [`random_edit_set`] batches round-tripped
//! through the JSON codec, holding the service to three identities at
//! every step:
//!
//! * the per-edit **delta** (added/removed violation lines) equals the
//!   one computed from a local oracle session's [`CheckSession::apply`];
//! * the streamed `GET /report` bytes — buffered, chunked small, and
//!   spilled with `?spill_budget=1` — equal the canonical report
//!   rendered locally;
//! * `POST /library` per-cell report lines equal standalone
//!   [`canonical_check`] runs of each cell.
//!
//! On top of the leg: a concurrency soak (hot writers on one session
//! plus writers on distinct sessions, under a registry squeezed hard
//! enough that sweeps compact and evict continuously — no lost
//! updates, no torn reports, nothing evicted mid-request) and the
//! error-path contract (malformed JSON / CIF / deck / edits are 4xx
//! with rendered diagnostics, never a panic; the id space answers
//! 404 vs 410; a client hanging up mid-stream latches the sink error
//! without poisoning the registry).
//!
//! [`check_library_in`]: diic::core::check_library_in

use axum::{Body, Method, Request, Response, Router, StatusCode};
use diic::api::wire;
use diic::api::{router, App, RegistryConfig};
use diic::core::incremental::CheckSession;
use diic::core::{canonical_check, env_parallelism, CheckOptions, Violation};
use diic::gen::{cell_library, generate, random_edit_set, ChipSpec, ErrorKind};
use diic::geom::Rect;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;
use std::sync::Arc;
use std::time::Duration;

/// The parallel worker count exercised against serial runs.
fn wide_workers() -> usize {
    env_parallelism().unwrap_or(0) // 0 = all available cores
}

fn service() -> Arc<Router> {
    Arc::new(router(App::new(RegistryConfig::default())))
}

fn get(app: &Router, path: &str) -> Response {
    app.oneshot(Request::new(Method::Get, path))
}

fn post(app: &Router, path: &str, body: String) -> Response {
    app.oneshot(Request::new(Method::Post, path).with_body(body))
}

fn json_body(resp: Response) -> Value {
    let bytes = resp.into_bytes().expect("in-process bodies collect");
    serde_json::from_str(std::str::from_utf8(&bytes).expect("utf-8 body"))
        .expect("response bodies are JSON")
}

/// Opens a session over `cif`, asserting success; returns its id.
fn open_session(app: &Router, cif: &str, options: &str) -> u64 {
    let body = format!(
        r#"{{"cif": {}, "options": {options}}}"#,
        Value::from(cif) // escapes the CIF text as a JSON string
    );
    let resp = post(app, "/sessions", body);
    assert_eq!(resp.status, StatusCode::CREATED, "open failed");
    json_body(resp).get("id").and_then(Value::as_i64).unwrap() as u64
}

/// The canonical report rendered exactly as the streamed body renders
/// it: one `Debug` line per violation, canonical order.
fn render_canonical(violations: &[Violation]) -> String {
    violations.iter().map(|v| format!("{v:?}\n")).collect()
}

fn string_vec(v: &Value, key: &str) -> Vec<String> {
    v.get(key)
        .and_then(Value::as_array)
        .expect("delta arrays present")
        .iter()
        .map(|s| s.as_str().expect("delta lines are strings").to_string())
        .collect()
}

/// Asserts the three streamed `GET /report` variants (buffered-size
/// chunks, chunk=1, spill_budget=1) all return exactly `expected`.
fn assert_report_streams(app: &Router, id: u64, expected: &str, ctx: &str) {
    for query in ["", "?chunk=1", "?spill_budget=1"] {
        let resp = get(app, &format!("/sessions/{id}/report{query}"));
        assert_eq!(resp.status, StatusCode::OK, "{ctx}: report {query}");
        let bytes = resp.into_bytes().unwrap();
        assert_eq!(
            std::str::from_utf8(&bytes).unwrap(),
            expected,
            "{ctx}: streamed report bytes diverge ({query})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The leg proper: faulted chips, serial + wide service sessions,
    /// every edit round-tripped through the wire codec, deltas and
    /// streamed reports equal to the local oracle at every step.
    #[test]
    fn service_matches_session_oracle(
        nx in 2usize..4,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = diic::tech::nmos::nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");

        let app = service();
        let serial_id = open_session(&app, &chip.cif, "{}");
        let wide_id = open_session(
            &app,
            &chip.cif,
            &format!(r#"{{"parallelism": {}}}"#, wide_workers()),
        );
        // The local oracle: the session the fifth leg already pins to
        // from-scratch checks. The service must mirror it byte for byte.
        let mut oracle = CheckSession::new(layout, &tech, &CheckOptions::default());
        assert_report_streams(
            &app,
            serial_id,
            &render_canonical(&oracle.report().violations),
            "step 0",
        );

        let bounds = Rect::new(-2500, -6000, nx as i64 * 6750 + 2500, ny as i64 * 10000 + 2500);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA41);
        for step in 0..6 {
            let edits = random_edit_set(oracle.layout(), bounds, step, &mut rng);
            // Encode against the pre-edit layout — the state the
            // service's sessions are in when the request arrives.
            let body = wire::edit_set_to_json(&edits, oracle.layout()).to_string();
            let old = oracle.report().violations.clone();
            oracle.apply(&edits).expect("generated edits are valid");
            let (want_added, want_removed) =
                wire::violation_delta(&old, &oracle.report().violations);

            let ctx = format!("step {} (nx={nx} ny={ny} seed={seed} mask={mask:#b})", step + 1);
            for id in [serial_id, wide_id] {
                let resp = post(&app, &format!("/sessions/{id}/edits"), body.clone());
                prop_assert_eq!(resp.status, StatusCode::OK, "{}: edit rejected", &ctx);
                let delta = json_body(resp);
                prop_assert_eq!(
                    string_vec(&delta, "added"),
                    want_added.clone(),
                    "{}: added delta diverges (session {})", &ctx, id
                );
                prop_assert_eq!(
                    string_vec(&delta, "removed"),
                    want_removed.clone(),
                    "{}: removed delta diverges (session {})", &ctx, id
                );
                prop_assert_eq!(
                    delta.get("report").and_then(|r| r.get("violations")).and_then(Value::as_i64),
                    Some(oracle.report().violations.len() as i64),
                    "{}: summary count diverges (session {})", &ctx, id
                );
            }
            // Stream identity every other step (each stream is three
            // full renders; every step would double the leg's cost).
            if step % 2 == 1 {
                let expected = render_canonical(&oracle.report().violations);
                assert_report_streams(&app, serial_id, &expected, &ctx);
                assert_report_streams(&app, wide_id, &expected, &ctx);
            }
        }
        let expected = render_canonical(&oracle.report().violations);
        assert_report_streams(&app, serial_id, &expected, "final");
        assert_report_streams(&app, wide_id, &expected, "final");
    }

    /// `POST /library` per-cell report lines equal standalone
    /// [`canonical_check`] runs, serial and wide, and repeated batches
    /// through the same deck accumulate shared-cache hits.
    #[test]
    fn library_endpoint_matches_standalone_checks(seed in 0u64..1_000_000) {
        let lib = cell_library(8, seed);
        let tech = diic::deck::compile_str(diic::deck::NMOS_DECK).unwrap();
        let options = diic::core::LibraryOptions::default();
        let want: Vec<Vec<String>> = lib
            .cells
            .iter()
            .map(|c| {
                let layout = diic::cif::parse(&c.cif).unwrap();
                canonical_check(&layout, &tech, &options.cell)
                    .violations
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect()
            })
            .collect();

        let app = service();
        let cells_json = Value::array(lib.cells.iter().map(|c| Value::from(c.cif.as_str())));
        for parallelism in [1, wide_workers()] {
            let body = format!(
                r#"{{"cells": {cells_json}, "options": {{"parallelism": {parallelism}}}}}"#
            );
            let resp = post(&app, "/library", body);
            prop_assert_eq!(resp.status, StatusCode::OK);
            let reply = json_body(resp);
            let cells = reply.get("cells").and_then(Value::as_array).unwrap();
            prop_assert_eq!(cells.len(), want.len());
            for (i, (cell, want_lines)) in cells.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    string_vec(cell, "report"),
                    want_lines.clone(),
                    "cell {} diverges at parallelism {}", i, parallelism
                );
            }
        }
        // Same deck, same cells, same registry: the second batch ran
        // against the warm shared cache.
        let stats = json_body(get(&app, "/stats"));
        let libraries = stats.get("libraries").and_then(Value::as_array).unwrap();
        prop_assert_eq!(libraries.len(), 1, "one deck, one shared library session");
        let hits = libraries[0].get("cache_hits").and_then(Value::as_i64).unwrap();
        prop_assert!(hits > 0, "the repeat batch must hit the shared cache");
    }
}

// ---------------------------------------------------------------------
// Concurrency / soak.

/// Hot concurrent writers: N threads hammer one session while M
/// threads each churn private sessions (every open runs a sweep). The
/// registry has headroom, so nothing is evicted — no lost updates
/// (element counts add up exactly), no torn responses, no deadlock.
#[test]
fn soak_concurrent_edits_no_lost_updates() {
    let hot_threads = 4usize;
    let cold_threads = 3usize;
    let iters = 12usize;

    // Headroom: at most 1 hot + `cold_threads` sessions are ever open
    // at once, under the cap and the budget — every cold open still
    // runs a sweep concurrently with the hot writers.
    let app = Arc::new(router(App::new(RegistryConfig {
        max_sessions: 8,
        idle_ttl: Duration::from_secs(3600),
        ..RegistryConfig::default()
    })));

    let chip = generate(&ChipSpec::clean(2, 1));
    let hot_id = open_session(&app, &chip.cif, r#"{"erc": false}"#);
    let base_elements = {
        let resp = get(&app, &format!("/sessions/{hot_id}/report"));
        assert_eq!(resp.status, StatusCode::OK);
        let layout = diic::cif::parse(&chip.cif).unwrap();
        let tech = diic::tech::nmos::nmos_technology();
        let options = CheckOptions {
            erc: false,
            ..CheckOptions::default()
        };
        canonical_check(&layout, &tech, &options).element_count
    };

    std::thread::scope(|s| {
        // Hot: all threads append clean far-apart metal boxes to ONE
        // session. Adds commute, so any interleaving is fine — but a
        // lost update would show up as a missing element at the end.
        for t in 0..hot_threads {
            let app = Arc::clone(&app);
            s.spawn(move || {
                for i in 0..iters {
                    let y = 100_000 + (t * iters + i) as i64 * 3000;
                    let body = format!(
                        r#"{{"edits": [{{"op": "add_element", "layer": "NM",
                            "shape": {{"box": [-20000, {y}, -18000, {}]}},
                            "net": "IO_T{t}I{i}"}}]}}"#,
                        y + 750
                    );
                    let resp = app.oneshot(
                        Request::new(Method::Post, &format!("/sessions/{hot_id}/edits"))
                            .with_body(body),
                    );
                    // Nothing sheds here: the thread count stays under
                    // the queue bound and the registry has headroom.
                    assert_eq!(resp.status, StatusCode::OK, "hot edit failed");
                    json_body(resp); // must always parse — no torn bodies
                }
            });
        }
        // Cold: each thread repeatedly opens its own session (every
        // open runs a sweep concurrently with the hot edits), streams
        // its report — which must be exactly the canonical bytes —
        // and closes it.
        for t in 0..cold_threads {
            let app = Arc::clone(&app);
            let cif = chip.cif.clone();
            s.spawn(move || {
                let layout = diic::cif::parse(&cif).unwrap();
                let tech = diic::tech::nmos::nmos_technology();
                let options = CheckOptions {
                    erc: false,
                    ..CheckOptions::default()
                };
                let clean = render_canonical(&canonical_check(&layout, &tech, &options).violations);
                for i in 0..iters {
                    let id = open_session(&app, &cif, r#"{"erc": false}"#);
                    let resp = get(&app, &format!("/sessions/{id}/report"));
                    assert_eq!(resp.status, StatusCode::OK, "cold thread {t} iter {i}");
                    let bytes = resp.into_bytes().unwrap();
                    assert_eq!(
                        std::str::from_utf8(&bytes).unwrap(),
                        clean,
                        "cold thread {t} iter {i}: torn report"
                    );
                    let resp =
                        app.oneshot(Request::new(Method::Delete, &format!("/sessions/{id}")));
                    assert_eq!(resp.status, StatusCode::OK, "close {t}/{i}");
                }
            });
        }
    });

    // No lost updates: every hot add landed exactly once.
    let body = r#"{"edits": [{"op": "move", "index": 0, "by": [0, 0]}]}"#.to_string();
    let resp = post(&app, &format!("/sessions/{hot_id}/edits"), body);
    assert_eq!(resp.status, StatusCode::OK);
    let elements = json_body(resp)
        .get("report")
        .and_then(|r| r.get("elements"))
        .and_then(Value::as_i64)
        .unwrap();
    assert_eq!(
        elements as usize,
        base_elements + hot_threads * iters,
        "lost update: element count does not add up"
    );

    // With headroom, none of those concurrent sweeps evicted anything.
    let stats = json_body(get(&app, "/stats"));
    assert_eq!(
        stats.get("evicted_pressure").and_then(Value::as_i64),
        Some(0),
        "nothing should be evicted under headroom: {stats}"
    );
    assert_eq!(
        stats.get("evicted_idle").and_then(Value::as_i64),
        Some(0),
        "nothing idled past a 1h TTL: {stats}"
    );
}

/// Open-churn under a registry squeezed to a 1-byte memory budget and
/// a 2-session cap: every sweep compacts survivors and evicts LRU.
/// Concurrent owners racing those sweeps see `200` (with exactly
/// canonical bytes — eviction never tears an in-flight request, pins
/// forbid it) or `410` (evicted between requests) — never a `5xx`,
/// never a panic, never a torn body.
#[test]
fn soak_open_churn_under_eviction_pressure() {
    let threads = 4usize;
    let iters = 10usize;
    let app = Arc::new(router(App::new(RegistryConfig {
        max_sessions: 2,
        memory_budget_bytes: 1,
        idle_ttl: Duration::from_secs(3600),
        ..RegistryConfig::default()
    })));

    let chip = generate(&ChipSpec::clean(2, 1));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let tech = diic::tech::nmos::nmos_technology();
    let options = CheckOptions {
        erc: false,
        ..CheckOptions::default()
    };
    let clean = render_canonical(&canonical_check(&layout, &tech, &options).violations);

    std::thread::scope(|s| {
        for t in 0..threads {
            let app = Arc::clone(&app);
            let cif = chip.cif.clone();
            let clean = clean.clone();
            s.spawn(move || {
                for i in 0..iters {
                    let id = open_session(&app, &cif, r#"{"erc": false}"#);
                    // Report: 200 with full canonical bytes, or 410 if a
                    // racing sweep evicted us between the two requests.
                    let resp = get(&app, &format!("/sessions/{id}/report"));
                    match resp.status {
                        StatusCode::OK => {
                            let bytes = resp.into_bytes().unwrap();
                            assert_eq!(
                                std::str::from_utf8(&bytes).unwrap(),
                                clean,
                                "thread {t} iter {i}: torn report"
                            );
                        }
                        StatusCode::GONE => {}
                        other => panic!("thread {t} iter {i}: report {other:?}"),
                    }
                    // An edit against a maybe-evicted session: 200 or 410.
                    let body = format!(
                        r#"{{"edits": [{{"op": "add_element", "layer": "NM",
                            "shape": {{"box": [-20000, {0}, -18000, {1}]}}}}]}}"#,
                        100_000 + (t * iters + i) as i64 * 3000,
                        100_750 + (t * iters + i) as i64 * 3000,
                    );
                    let resp = app.oneshot(
                        Request::new(Method::Post, &format!("/sessions/{id}/edits"))
                            .with_body(body),
                    );
                    assert!(
                        resp.status == StatusCode::OK || resp.status == StatusCode::GONE,
                        "thread {t} iter {i}: edit {:?}",
                        resp.status
                    );
                    json_body(resp); // bodies always parse
                    let resp =
                        app.oneshot(Request::new(Method::Delete, &format!("/sessions/{id}")));
                    assert!(
                        resp.status == StatusCode::OK || resp.status == StatusCode::GONE,
                        "thread {t} iter {i}: close {:?}",
                        resp.status
                    );
                }
            });
        }
    });

    // Deterministic coda: with the registry quiet, opening A then B
    // makes B's sweep find A idle and over-budget — compact, still
    // over, evict. The pressure path provably ran.
    let a = open_session(&app, &chip.cif, r#"{"erc": false}"#);
    let _b = open_session(&app, &chip.cif, r#"{"erc": false}"#);
    assert_eq!(
        get(&app, &format!("/sessions/{a}/report")).status,
        StatusCode::GONE,
        "the 1-byte budget must evict the idle LRU session"
    );
    let stats = json_body(get(&app, "/stats"));
    let compactions = stats.get("compactions").and_then(Value::as_i64).unwrap();
    let evicted = stats
        .get("evicted_pressure")
        .and_then(Value::as_i64)
        .unwrap();
    assert!(compactions > 0, "no sweep ever compacted: {stats}");
    assert!(evicted > 0, "no sweep ever evicted: {stats}");
}

/// Sessions keep answering canonically after the sweep's
/// [`CheckSession::compact_memory`] ran on them (the doc-promised
/// service-level compaction test: interner eviction + handle remap
/// must be invisible on the wire).
#[test]
fn service_sessions_survive_compaction() {
    // A 1-byte budget makes every sweep compact (and want to evict)
    // everything. Holding a pin across the sweep — exactly what an
    // in-flight request does — lets compaction run on the session
    // while forbidding its eviction.
    let state = App::new(RegistryConfig {
        memory_budget_bytes: 1,
        ..RegistryConfig::default()
    });
    let app = router(Arc::clone(&state));
    let chip = generate(&ChipSpec::clean(3, 1));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let tech = diic::tech::nmos::nmos_technology();
    let mut oracle = CheckSession::new(layout, &tech, &CheckOptions::default());
    let id = open_session(&app, &chip.cif, "{}");

    let bounds = Rect::new(-2500, -6000, 3 * 6750 + 2500, 10000 + 2500);
    let mut rng = StdRng::seed_from_u64(7);
    for step in 0..5 {
        // Sweep with the session pinned: compact_memory runs on it
        // (the sweep takes the session mutex, not the pin), eviction
        // is forbidden by the pin.
        let pin = state.registry.pin(id).expect("session stays live");
        state.registry.sweep();
        drop(pin);

        let edits = random_edit_set(oracle.layout(), bounds, step, &mut rng);
        let body = wire::edit_set_to_json(&edits, oracle.layout()).to_string();
        oracle.apply(&edits).expect("generated edits are valid");
        let resp = post(&app, &format!("/sessions/{id}/edits"), body);
        assert_eq!(resp.status, StatusCode::OK, "step {step}");
        assert_report_streams(
            &app,
            id,
            &render_canonical(&oracle.report().violations),
            &format!("post-compaction step {step}"),
        );
    }
    let stats = json_body(get(&app, "/stats"));
    let compactions = stats.get("compactions").and_then(Value::as_i64).unwrap();
    assert!(compactions >= 5, "every sweep must have compacted: {stats}");
    assert_eq!(
        stats.get("open_sessions").and_then(Value::as_i64),
        Some(1),
        "the pinned session must never be evicted: {stats}"
    );
}

// ---------------------------------------------------------------------
// Error paths.

#[test]
fn malformed_bodies_are_4xx_never_panics() {
    let app = service();

    // Not JSON at all.
    let resp = post(&app, "/sessions", "{not json".to_string());
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    let body = json_body(resp);
    assert_eq!(body.get("error").and_then(Value::as_str), Some("bad-json"));

    // JSON of the wrong shape.
    let resp = post(&app, "/sessions", r#"{"cif": 42}"#.to_string());
    assert_eq!(resp.status, StatusCode::UNPROCESSABLE_ENTITY);

    // Malformed CIF: a rendered parse diagnostic, not a panic.
    let resp = post(
        &app,
        "/sessions",
        r#"{"cif": "L NM; B oops; E"}"#.to_string(),
    );
    assert_eq!(resp.status, StatusCode::UNPROCESSABLE_ENTITY);
    let body = json_body(resp);
    assert_eq!(body.get("error").and_then(Value::as_str), Some("bad-cif"));

    // Malformed deck: the body carries the caret-rendered DeckError.
    let resp = post(
        &app,
        "/sessions",
        r#"{"cif": "L NM; B 2000 750 1000 375; E", "deck": "layer NM metal {\n  width 750\n"}"#
            .to_string(),
    );
    assert_eq!(resp.status, StatusCode::UNPROCESSABLE_ENTITY);
    let body = json_body(resp);
    assert_eq!(body.get("error").and_then(Value::as_str), Some("bad-deck"));
    let detail = body.get("detail").and_then(Value::as_str).unwrap();
    assert!(
        detail.contains("deck") && detail.contains('^'),
        "expected a caret-rendered deck diagnostic, got: {detail}"
    );

    // Unknown option key.
    let resp = post(
        &app,
        "/sessions",
        r#"{"cif": "E", "options": {"paralellism": 2}}"#.to_string(),
    );
    assert_eq!(resp.status, StatusCode::UNPROCESSABLE_ENTITY);

    // Bad edit bodies against a real session.
    let id = open_session(&app, "L NM; B 2000 750 1000 375; E", "{}");
    for (body, want) in [
        ("{", StatusCode::BAD_REQUEST),
        (r#"{"edits": 7}"#, StatusCode::UNPROCESSABLE_ENTITY),
        (
            r#"{"edits": [{"op": "transmogrify"}]}"#,
            StatusCode::UNPROCESSABLE_ENTITY,
        ),
        (
            // Valid shape, out-of-bounds index: rejected by apply(),
            // session untouched.
            r#"{"edits": [{"op": "remove", "index": 99}]}"#,
            StatusCode::UNPROCESSABLE_ENTITY,
        ),
    ] {
        let resp = post(&app, &format!("/sessions/{id}/edits"), body.to_string());
        assert_eq!(resp.status, want, "body {body:?}");
        json_body(resp); // always a JSON error body
    }
    // The rejected edits left the session serving.
    assert_eq!(
        get(&app, &format!("/sessions/{id}/report")).status,
        StatusCode::OK
    );
}

#[test]
fn session_id_space_discriminates_404_from_410() {
    let app = service();
    // Never issued.
    assert_eq!(
        get(&app, "/sessions/999/report").status,
        StatusCode::NOT_FOUND
    );
    assert_eq!(
        get(&app, "/sessions/banana/report").status,
        StatusCode::NOT_FOUND
    );
    // Issued, then deleted → 410 everywhere.
    let id = open_session(&app, "L NM; B 2000 750 1000 375; E", "{}");
    let resp = app.oneshot(Request::new(Method::Delete, &format!("/sessions/{id}")));
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(
        get(&app, &format!("/sessions/{id}/report")).status,
        StatusCode::GONE
    );
    let resp = post(
        &app,
        &format!("/sessions/{id}/edits"),
        r#"{"edits": []}"#.to_string(),
    );
    assert_eq!(resp.status, StatusCode::GONE);
    let resp = app.oneshot(Request::new(Method::Delete, &format!("/sessions/{id}")));
    assert_eq!(resp.status, StatusCode::GONE, "double delete");

    // Evicted (capacity pressure) → same 410.
    let app = router(App::new(RegistryConfig {
        max_sessions: 1,
        ..RegistryConfig::default()
    }));
    let first = open_session(&app, "L NM; B 2000 750 1000 375; E", "{}");
    let _second = open_session(&app, "L NM; B 2000 750 1000 375; E", "{}");
    let _third = open_session(&app, "L NM; B 2000 750 1000 375; E", "{}");
    assert_eq!(
        get(&app, &format!("/sessions/{first}/report")).status,
        StatusCode::GONE,
        "the LRU session must have been evicted"
    );
}

/// A client hanging up mid-stream: the body writer hits the I/O error
/// (the sink latches it), the pin drops, and the session keeps
/// serving canonical bytes — the registry is not poisoned.
#[test]
fn client_disconnect_mid_stream_does_not_poison_the_session() {
    /// A connection that dies after a few bytes.
    struct Hangup {
        left: usize,
    }
    impl std::io::Write for Hangup {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.left == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client hung up",
                ));
            }
            let n = buf.len().min(self.left);
            self.left -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let app = service();
    // A chip with real violations so the report has bytes to truncate.
    let chip = generate(&ChipSpec::with_errors(
        2,
        1,
        vec![ErrorKind::CloseSpacing, ErrorKind::NarrowWire],
        11,
    ));
    let id = open_session(&app, &chip.cif, "{}");

    let expected = {
        let resp = get(&app, &format!("/sessions/{id}/report"));
        String::from_utf8(resp.into_bytes().unwrap()).unwrap()
    };
    assert!(!expected.is_empty(), "need a non-empty report to truncate");

    for query in ["", "?spill_budget=1"] {
        let resp = get(&app, &format!("/sessions/{id}/report{query}"));
        assert_eq!(resp.status, StatusCode::OK);
        let Body::Writer(writer) = resp.body else {
            panic!("report bodies stream");
        };
        let err = writer(&mut Hangup { left: 8 });
        assert!(err.is_err(), "the latched sink error must surface");
    }

    // The session still answers, bytes still canonical.
    let resp = get(&app, &format!("/sessions/{id}/report"));
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(
        String::from_utf8(resp.into_bytes().unwrap()).unwrap(),
        expected,
        "a hung-up stream must not corrupt later ones"
    );
    // And the registry still takes edits for it.
    let resp = post(
        &app,
        &format!("/sessions/{id}/edits"),
        r#"{"edits": [{"op": "move", "index": 0, "by": [0, 40]}]}"#.to_string(),
    );
    assert_eq!(resp.status, StatusCode::OK);
}

/// The service-wide admission bound sheds with 503 — while the
/// diagnostic endpoints stay reachable — and a released permit admits
/// the next request.
#[test]
fn overload_sheds_with_503_and_recovers() {
    let app = router(App::new(RegistryConfig {
        max_concurrent_requests: 0,
        ..RegistryConfig::default()
    }));
    let resp = post(
        &app,
        "/sessions",
        r#"{"cif": "L NM; B 2000 750 1000 375; E"}"#.to_string(),
    );
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    let body = json_body(resp);
    assert_eq!(
        body.get("error").and_then(Value::as_str),
        Some("overloaded")
    );
    // Liveness and stats never shed: an operator can always see why.
    assert_eq!(get(&app, "/healthz").status, StatusCode::OK);
    assert_eq!(get(&app, "/stats").status, StatusCode::OK);

    // A budget of one serves any number of *sequential* requests: the
    // permit drops with each response (shedding would mean a leak).
    let app = router(App::new(RegistryConfig {
        max_concurrent_requests: 1,
        ..RegistryConfig::default()
    }));
    let id = open_session(&app, "L NM; B 2000 750 1000 375; E", "{}");
    for _ in 0..3 {
        let resp = get(&app, &format!("/sessions/{id}/report"));
        assert_eq!(resp.status, StatusCode::OK, "permit leaked");
        resp.into_bytes().unwrap(); // the streamed body carries the permit
    }
}
