//! The **eleventh differential leg**: library-mode batch verification
//! against standalone checks.
//!
//! `check_library` hoists three per-run rebuilds into shared state —
//! the bound technology constants, a cross-cell content-keyed
//! candidate cache, and per-worker session string interners with
//! epoch compaction. The contract that makes all three safe is
//! **per-cell byte-identity**: every cell's report out of a batch must
//! equal a standalone `check()` of that cell — violations, net list,
//! interaction statistics, element/device counts — for any outer
//! worker count (the "wide" count honours `CHECK_PARALLELISM`, like
//! the other legs), with and without interner compaction, on faulted
//! variant libraries as well as clean ones.
//!
//! On top of identity, the leg pins the *point* of the mode: a library
//! whose cells share definition content must produce cross-cell cache
//! hits (and a fully unique library must not produce spurious ones —
//! the content keys are discriminating, not just permissive).

use diic::cif::Layout;
use diic::core::{
    check, check_library_buffered, env_parallelism, CheckReport, LibraryOptions, LibraryReport,
};
use diic::gen::library::LibrarySpec;
use diic::gen::{cell_library, cell_library_with};
use diic::tech::nmos::nmos_technology;
use proptest::prelude::*;

/// The parallel worker count exercised against serial runs.
fn wide_workers() -> usize {
    env_parallelism().unwrap_or(0) // 0 = all available cores
}

fn parse_all(cells: &[diic::gen::GeneratedChip]) -> Vec<Layout> {
    cells
        .iter()
        .map(|c| diic::cif::parse(&c.cif).expect("generated cells always parse"))
        .collect()
}

/// Asserts one batch run is per-cell byte-identical to standalone
/// checks of the same layouts under the batch's per-cell options.
fn assert_batch_matches_standalone(
    layouts: &[Layout],
    options: &LibraryOptions,
) -> LibraryReport<diic::core::DiagnosticSink> {
    let tech = nmos_technology();
    let standalone: Vec<CheckReport> = layouts
        .iter()
        .map(|l| check(l, &tech, &options.cell))
        .collect();
    let batch = check_library_buffered(layouts, &tech, options);
    assert_eq!(batch.reports.len(), standalone.len());
    assert_eq!(batch.stats.cells, layouts.len());
    for (i, (b, s)) in batch.reports.iter().zip(&standalone).enumerate() {
        assert_eq!(b.violations, s.violations, "cell {i}: violations diverge");
        assert_eq!(b.netlist, s.netlist, "cell {i}: net list diverges");
        assert_eq!(
            b.interact_stats, s.interact_stats,
            "cell {i}: interaction statistics diverge"
        );
        assert_eq!(b.waived_devices, s.waived_devices, "cell {i}");
        assert_eq!(b.element_count, s.element_count, "cell {i}");
        assert_eq!(b.device_count, s.device_count, "cell {i}");
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Faulted variant libraries: batch reports are byte-identical to
    /// per-cell standalone checks, serial and wide, with and without
    /// the shared interner, under default and forced compaction.
    #[test]
    fn batch_equals_standalone(
        cells in 1usize..8,
        shared_pct in 0u32..101,
        error_pct in 0u32..101,
        seed in 0u64..1000,
    ) {
        let lib = cell_library_with(&LibrarySpec {
            shared_fraction: shared_pct as f64 / 100.0,
            error_rate: error_pct as f64 / 100.0,
            ..LibrarySpec::new(cells, seed)
        });
        let layouts = parse_all(&lib.cells);
        let wide = wide_workers();
        for parallelism in [1usize, wide] {
            // Default: shared interner, generous budget.
            assert_batch_matches_standalone(&layouts, &LibraryOptions {
                parallelism,
                ..LibraryOptions::default()
            });
            // Zero budget: compaction fires after every cell.
            let forced = assert_batch_matches_standalone(&layouts, &LibraryOptions {
                parallelism,
                interner_budget_bytes: 0,
                interner_keep_epochs: 0,
                ..LibraryOptions::default()
            });
            prop_assert!(
                forced.stats.interner_compactions >= 1,
                "zero budget must compact at least once"
            );
            // Cold interners: every cell starts like standalone check().
            assert_batch_matches_standalone(&layouts, &LibraryOptions {
                parallelism,
                shared_interner: false,
                ..LibraryOptions::default()
            });
        }
    }
}

/// A library of content-shared cells produces cross-cell cache hits —
/// the throughput mechanism exists, not just the identity contract.
#[test]
fn shared_definitions_hit_the_cross_cell_cache() {
    let lib = cell_library_with(&LibrarySpec {
        shared_fraction: 1.0,
        error_rate: 0.0,
        ..LibrarySpec::new(8, 21)
    });
    let layouts = parse_all(&lib.cells);
    let batch = assert_batch_matches_standalone(&layouts, &LibraryOptions::default());
    assert!(
        batch.stats.shared_cache_hits > 0,
        "8 content-identical cells produced no cross-cell cache hits: {:?}",
        batch.stats
    );
    // Every cell past the first should be served mostly from the cache:
    // distinct fills are bounded by one cell's worth of jobs, not the
    // batch's.
    assert!(
        batch.stats.shared_cache_hits > batch.stats.shared_cache_misses,
        "sharing should dominate on an all-shared library: {:?}",
        batch.stats
    );
    // All cells are clean by construction.
    for (i, report) in batch.reports.iter().enumerate() {
        assert!(
            report.violations.is_empty(),
            "shared clean cell {i} reported {:?}",
            report.violations
        );
    }
}

/// Content keys discriminate: a fully unique library (distinct tag
/// geometry in every cell) gets no intra-definition sharing windfall
/// from sibling cells with different array widths — hits can only come
/// from *within*-library coincidences (same nx ⇒ identical loose-free
/// scope pair layouts never arise; the tag boxes differ), so the hit
/// rate stays far below the all-shared case.
#[test]
fn unique_definitions_mostly_miss() {
    let spec = |shared| LibrarySpec {
        shared_fraction: shared,
        error_rate: 0.0,
        ..LibrarySpec::new(8, 33)
    };
    let tech = nmos_technology();
    let unique = check_library_buffered(
        &parse_all(&cell_library_with(&spec(0.0)).cells),
        &tech,
        &LibraryOptions::default(),
    );
    let shared = check_library_buffered(
        &parse_all(&cell_library_with(&spec(1.0)).cells),
        &tech,
        &LibraryOptions::default(),
    );
    let rate = |r: &LibraryReport<_>| {
        let (h, m) = (r.stats.shared_cache_hits, r.stats.shared_cache_misses);
        h as f64 / (h + m).max(1) as f64
    };
    assert!(
        rate(&unique) < rate(&shared),
        "unique library hit rate {:.2} not below shared {:.2}",
        rate(&unique),
        rate(&shared)
    );
}

/// The aggregating profile and stats cover the batch: one wall-clock
/// sample per cell, stage totals for the whole pipeline, and the
/// summed interaction stats equal the fold of the per-cell reports.
#[test]
fn batch_profile_and_stats_aggregate() {
    let lib = cell_library(6, 5);
    let layouts = parse_all(&lib.cells);
    let tech = nmos_technology();
    let batch = check_library_buffered(&layouts, &tech, &LibraryOptions::default());
    assert_eq!(batch.profile.cell_wall.len(), 6);
    assert!(batch.profile.p50() <= batch.profile.p99());
    let stage_names: Vec<&str> = batch
        .profile
        .stage_totals
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(
        stage_names,
        [
            "instantiate",
            "elements",
            "primitives",
            "connections",
            "netlist",
            "interactions",
            "composition"
        ]
    );
    let mut folded = diic::core::InteractStats::default();
    for r in &batch.reports {
        folded.absorb(&r.interact_stats);
    }
    assert_eq!(batch.stats.interact, folded);
}

/// `check_library` honours a caller sink factory: per-cell sinks see
/// exactly their cell's violations, in canonical per-cell order.
#[test]
fn sink_factory_receives_per_cell_violations() {
    let lib = cell_library_with(&LibrarySpec {
        error_rate: 1.0,
        ..LibrarySpec::new(4, 9)
    });
    let layouts = parse_all(&lib.cells);
    let tech = nmos_technology();
    let options = LibraryOptions::default();
    let batch = diic::core::check_library(&layouts, &tech, &options, |_| {
        diic::core::CountingSink::default()
    });
    for (i, (sink, layout)) in batch.sinks.iter().zip(&layouts).enumerate() {
        let standalone = check(layout, &tech, &options.cell);
        assert_eq!(
            sink.total(),
            standalone.violations.len(),
            "cell {i}: counting sink disagrees with standalone violation count"
        );
    }
}
