//! The multi-patterning check, end to end: a `same_mask` rule declared
//! in a **rule deck** (not hardcoded Rust) must flag odd same-mask
//! conflict cycles — and only odd ones — identically through every
//! report path: the buffered report, bounded streaming chunks, the
//! disk-spilling k-way merge, the counting sink, and the incremental
//! edit loop.
//!
//! The fixtures are the same triangle / ring geometries the unit tests
//! pin, but here the technology comes in through `diic::deck`
//! compilation, so the test covers the whole chain
//! `deck text → Technology → conflict graph → odd-cycle violation →
//! sink`.

use diic::core::incremental::CheckSession;
use diic::core::{
    canonical_sort, check_cif, check_with_engine, check_with_sink, CheckOptions, CheckStage,
    CountingSink, SpillingSink, StageEngine, StreamingSink, ViolationKind,
};
use diic::tech::Technology;

/// A one-metal rule deck: spacing 3λ (750), same-mask distance 5λ
/// (1250) — gaps in (750, 1250) are spacing-clean but mask-conflicting.
const MP_DECK: &str = r#"
tech "mp" {
    lambda 250;
    layer metal { cif "NM"; kind metal; min_width 3 lambda; }
    space metal metal 3 lambda;
    same_mask metal 5 lambda;
}
"#;

/// Triangle of metal boxes with pairwise gaps 950 / 1000 / 1000: every
/// gap clears the 750 spacing rule but conflicts under the 1250
/// same-mask distance — an odd (3-)cycle, not two-mask decomposable.
const ODD_TRIANGLE: &str = "L NM; B 2000 750 1000 375; B 2000 750 3950 375; \
                            B 2950 750 2475 2125; E";

/// Four metal boxes in a ring: adjacent gaps 1000 (conflict), diagonals
/// ≈ 1414 (clear under the Euclidean metric) — an even cycle,
/// 2-colourable, so decomposable onto two masks.
const EVEN_RING: &str = "L NM; B 2000 750 1000 2125; B 2000 750 4000 2125; \
                         B 2000 750 1000 375; B 2000 750 4000 375; E";

fn mp_tech() -> Technology {
    diic::deck::compile_str(MP_DECK).expect("the mp deck compiles")
}

fn options(hierarchical: bool) -> CheckOptions {
    CheckOptions {
        erc: false,
        hierarchical,
        ..CheckOptions::default()
    }
}

/// The deck-compiled technology carries the `same_mask` rule through to
/// the check: the odd triangle yields exactly one `MaskOddCycle` (and
/// nothing else), the even ring none, under both search engines.
#[test]
fn deck_driven_odd_cycle_detection() {
    let tech = mp_tech();
    for hierarchical in [false, true] {
        let report = check_cif(ODD_TRIANGLE, &tech, &options(hierarchical)).unwrap();
        assert_eq!(
            report.violations.len(),
            1,
            "hier={hierarchical}: {:#?}",
            report.violations
        );
        let v = &report.violations[0];
        assert_eq!(v.stage, CheckStage::Interactions);
        assert!(
            matches!(
                &v.kind,
                ViolationKind::MaskOddCycle {
                    layer,
                    measured: 1000,
                    required: 1250,
                    cycle: 3,
                } if layer == "metal"
            ),
            "hier={hierarchical}: {:?}",
            v.kind
        );
        assert!(v.location.is_some(), "the witness edge carries a location");

        let clean = check_cif(EVEN_RING, &tech, &options(hierarchical)).unwrap();
        assert!(
            clean.is_clean(),
            "hier={hierarchical}: an even ring is two-colourable: {:#?}",
            clean.violations
        );
    }
}

/// Every sink observes the same odd-cycle violation: streamed chunks
/// and the spilled merge reproduce the buffered canonical report byte
/// for byte, and the counting sink files it under the Interactions
/// stage (category "multi-patterning").
#[test]
fn every_sink_reports_the_odd_cycle() {
    let tech = mp_tech();
    let layout = diic::cif::parse(ODD_TRIANGLE).unwrap();
    let engine = StageEngine::diic_pipeline();
    for hierarchical in [false, true] {
        let opts = options(hierarchical);
        let buffered = check_with_engine(&engine, &layout, &tech, &opts);
        let mut canonical = buffered.violations.clone();
        canonical_sort(&mut canonical);
        let want: String = canonical.iter().map(|v| format!("{v:?}\n")).collect();
        assert_eq!(canonical.len(), 1);

        for chunk in [1usize, 4] {
            let mut sink = StreamingSink::new(Vec::new(), chunk);
            let streamed = check_with_sink(&engine, &layout, &tech, &opts, &mut sink);
            assert!(streamed.violations.is_empty());
            let text = String::from_utf8(sink.finish().unwrap()).unwrap();
            assert_eq!(text, want, "hier={hierarchical} chunk={chunk}");
        }

        for budget in [1usize, 4] {
            let mut sink = SpillingSink::new(Vec::new(), budget);
            let spilled = check_with_sink(&engine, &layout, &tech, &opts, &mut sink);
            assert!(spilled.violations.is_empty());
            let (out, stats) = sink.finish().unwrap();
            assert_eq!(stats.written, 1);
            assert_eq!(
                String::from_utf8(out).unwrap(),
                want,
                "hier={hierarchical} budget={budget}: the spill codec must \
                 round-trip the MaskOddCycle record"
            );
        }

        let mut counting = CountingSink::new();
        check_with_sink(&engine, &layout, &tech, &opts, &mut counting);
        assert_eq!(counting.total(), 1);
        assert_eq!(counting.count(CheckStage::Interactions), 1);
    }
}

/// The incremental edit loop tracks the conflict graph's *global*
/// bipartiteness: moving one triangle corner away dissolves the odd
/// cycle, moving it back restores it, and after every edit the patched
/// report equals a from-scratch check.
#[test]
fn incremental_edits_track_the_conflict_graph() {
    use diic::core::incremental::EditSet;

    let tech = mp_tech();
    let layout = diic::cif::parse(ODD_TRIANGLE).unwrap();
    let mut session = CheckSession::new(layout, &tech, &options(true));
    let is_mask = |v: &diic::core::Violation| matches!(v.kind, ViolationKind::MaskOddCycle { .. });

    assert_eq!(
        session
            .report()
            .violations
            .iter()
            .filter(|v| is_mask(v))
            .count(),
        1,
        "the session opens on the odd cycle: {:#?}",
        session.report().violations
    );

    // Move the apex bar (top item 2) far away: the two edges it anchors
    // vanish, the remaining single edge is trivially bipartite.
    let mut away = EditSet::new();
    away.translate(2, 0, 40_000);
    session.apply(&away).unwrap();
    assert!(
        session.report().violations.iter().all(|v| !is_mask(v)),
        "breaking the cycle clears the violation: {:#?}",
        session.report().violations
    );
    let full = session.full_check();
    assert_eq!(
        session.report().violations,
        full.violations,
        "after move-away"
    );

    // Move it back: the odd cycle — a property of edges the edit's halo
    // never touched pairwise — must return.
    let mut back = EditSet::new();
    back.translate(2, 0, -40_000);
    session.apply(&back).unwrap();
    let mask: Vec<_> = session
        .report()
        .violations
        .iter()
        .filter(|v| is_mask(v))
        .collect();
    assert_eq!(mask.len(), 1, "{:#?}", session.report().violations);
    assert!(matches!(
        &mask[0].kind,
        ViolationKind::MaskOddCycle {
            measured: 1000,
            required: 1250,
            cycle: 3,
            ..
        }
    ));
    let full = session.full_check();
    assert_eq!(
        session.report().violations,
        full.violations,
        "after move-back"
    );
    assert_eq!(session.report().netlist, full.netlist);
}

/// A technology without `same_mask` rules (the NMOS baseline) never
/// produces `MaskOddCycle` violations, even on the conflict fixture:
/// the check family is strictly deck-opt-in.
#[test]
fn no_same_mask_rule_means_no_mask_violations() {
    let tech = diic::deck::compile_str(diic::deck::NMOS_DECK).unwrap();
    assert!(!tech.rules().has_same_mask());
    let report = check_cif(ODD_TRIANGLE, &tech, &options(true)).unwrap();
    assert!(
        report
            .violations
            .iter()
            .all(|v| !matches!(v.kind, ViolationKind::MaskOddCycle { .. })),
        "{:#?}",
        report.violations
    );
}
