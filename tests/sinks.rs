//! Sink-equivalence oracle: every [`Sink`] implementation must observe
//! the same violations from the same run.
//!
//! Proptest-generated chips with injected faults are driven through
//! both stage sets (the DIIC pipeline and the flat baseline), serial
//! and wide, with the report emitted three ways: buffered
//! ([`DiagnosticSink`]), streamed in bounded chunks of several sizes —
//! including 1, the degenerate everything-flushes-immediately case —
//! ([`StreamingSink`]), and counted ([`CountingSink`]). The streamed
//! lines, canonicalised, must equal the canonicalised buffered report;
//! the counts must match per stage and in total.

use diic::core::{
    canonical_sort, check_with_engine, check_with_sink, env_parallelism, CheckOptions,
    CountingSink, FlatOptions, SpillingSink, StageEngine, StreamingSink,
};
use diic::gen::{generate, ChipSpec, ErrorKind};
use diic::tech::nmos::nmos_technology;
use proptest::prelude::*;

/// The parallel worker count exercised against serial runs.
fn wide_workers() -> usize {
    env_parallelism().unwrap_or(0) // 0 = all available cores
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streaming_and_counting_sinks_match_buffered(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");

        for (engine_name, engine) in [
            ("diic", StageEngine::diic_pipeline()),
            ("flat", StageEngine::flat_baseline(FlatOptions::default())),
        ] {
            for parallelism in [1usize, wide_workers()] {
                let options = CheckOptions {
                    erc: false,
                    parallelism,
                    ..CheckOptions::default()
                };
                let buffered = check_with_engine(&engine, &layout, &tech, &options);
                // The buffered report in canonical form is the oracle
                // the streamed chunks must reassemble to.
                let mut canonical = buffered.violations.clone();
                canonical_sort(&mut canonical);
                let expect: Vec<String> =
                    canonical.iter().map(|v| format!("{v:?}")).collect();

                for chunk in [1usize, 3, 64] {
                    let mut sink = StreamingSink::new(Vec::new(), chunk);
                    let streamed =
                        check_with_sink(&engine, &layout, &tech, &options, &mut sink);
                    prop_assert!(
                        streamed.violations.is_empty(),
                        "{engine_name}: a streaming run must buffer nothing"
                    );
                    let text = String::from_utf8(sink.finish().expect("vec write")).unwrap();
                    let mut got: Vec<String> =
                        text.lines().map(str::to_string).collect();
                    got.sort_unstable();
                    let mut want = expect.clone();
                    want.sort_unstable();
                    prop_assert_eq!(
                        got, want,
                        "{}: chunk={} workers={}: streamed report diverges \
                         (nx={} ny={} seed={} mask={:#b})",
                        engine_name, chunk, parallelism, nx, ny, seed, mask
                    );
                }

                let mut counting = CountingSink::new();
                check_with_sink(&engine, &layout, &tech, &options, &mut counting);
                prop_assert_eq!(
                    counting.total(),
                    buffered.violations.len(),
                    "{}: workers={}: counting sink disagrees on the total",
                    engine_name, parallelism
                );
                for stage in [
                    diic::core::CheckStage::Elements,
                    diic::core::CheckStage::PrimitiveSymbols,
                    diic::core::CheckStage::Connections,
                    diic::core::CheckStage::NetList,
                    diic::core::CheckStage::Interactions,
                    diic::core::CheckStage::Composition,
                ] {
                    prop_assert_eq!(
                        counting.count(stage),
                        buffered.violations.iter().filter(|v| v.stage == stage).count(),
                        "{}: per-stage count diverges for {:?}",
                        engine_name, stage
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ninth differential leg: the spilled report is **byte-identical**
    /// to the buffered one brought into canonical order — not merely
    /// set-equal. The k-way merge must reproduce the canonical total
    /// order exactly, at budgets down to 1 (every violation its own
    /// on-disk run), serial and wide.
    #[test]
    fn spilled_equals_buffered(
        nx in 2usize..5,
        ny in 1usize..3,
        seed in 0u64..1_000_000,
        mask in 1u16..512,
    ) {
        let tech = nmos_technology();
        let errors: Vec<ErrorKind> = ErrorKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .take(nx * ny)
            .collect();
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, seed));
        let layout = diic::cif::parse(&chip.cif).expect("generated chips always parse");

        for (engine_name, engine) in [
            ("diic", StageEngine::diic_pipeline()),
            ("flat", StageEngine::flat_baseline(FlatOptions::default())),
        ] {
            for parallelism in [1usize, wide_workers()] {
                let options = CheckOptions {
                    erc: false,
                    parallelism,
                    ..CheckOptions::default()
                };
                let buffered = check_with_engine(&engine, &layout, &tech, &options);
                let mut canonical = buffered.violations.clone();
                canonical_sort(&mut canonical);
                let mut want = String::new();
                for v in &canonical {
                    want.push_str(&format!("{v:?}"));
                    want.push('\n');
                }

                for budget in [1usize, 3, 64] {
                    let mut sink = SpillingSink::new(Vec::new(), budget);
                    let spilled =
                        check_with_sink(&engine, &layout, &tech, &options, &mut sink);
                    prop_assert!(
                        spilled.violations.is_empty(),
                        "{engine_name}: a spilling run must buffer nothing in the report"
                    );
                    prop_assert!(!sink.errored(), "Vec writes cannot fail");
                    let (out, stats) = sink.finish().expect("vec-backed spill");
                    if budget == 1 && canonical.len() > 1 {
                        prop_assert!(
                            stats.runs > 1,
                            "{}: budget 1 with {} violations must force a multi-run \
                             merge, got {} runs",
                            engine_name, canonical.len(), stats.runs
                        );
                    }
                    prop_assert_eq!(stats.written, canonical.len());
                    let got = String::from_utf8(out).unwrap();
                    prop_assert_eq!(
                        &got, &want,
                        "{}: budget={} workers={}: spilled report is not \
                         byte-identical to the buffered canonical report \
                         (nx={} ny={} seed={} mask={:#b})",
                        engine_name, budget, parallelism, nx, ny, seed, mask
                    );
                }
            }
        }
    }
}

/// An edit session exports its canonical report through any sink.
#[test]
fn session_emits_its_report_through_the_trait() {
    use diic::core::incremental::{CheckSession, EditSet};
    use diic::geom::Rect;

    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(3, 2));
    let layout = diic::cif::parse(&chip.cif).unwrap();
    let mut session = CheckSession::new(
        layout,
        &tech,
        &CheckOptions {
            erc: false,
            ..CheckOptions::default()
        },
    );
    let mut fault = EditSet::new();
    fault.add_box("NM", Rect::new(0, -10000, 2000, -9300), None); // 700 < 750 wide
    session.apply(&fault).unwrap();
    assert!(!session.report().violations.is_empty());

    let mut sink = StreamingSink::new(Vec::new(), 2);
    session.emit_report(&mut sink);
    let text = String::from_utf8(sink.finish().unwrap()).unwrap();
    let mut got: Vec<String> = text.lines().map(str::to_string).collect();
    got.sort_unstable();
    let mut want: Vec<String> = session
        .report()
        .violations
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    want.sort_unstable();
    assert_eq!(got, want);

    let mut counting = CountingSink::new();
    session.emit_report(&mut counting);
    assert_eq!(counting.total(), session.report().violations.len());

    // The spilling sink plugs into the same export path: budget 1 forces
    // every violation through the on-disk merge, and the output equals
    // the session's report in canonical order, byte for byte.
    let mut spilling = SpillingSink::new(Vec::new(), 1);
    session.emit_report(&mut spilling);
    let (out, stats) = spilling.finish().unwrap();
    assert_eq!(stats.written, session.report().violations.len());
    let mut canonical = session.report().violations.clone();
    canonical_sort(&mut canonical);
    let want: String = canonical.iter().map(|v| format!("{v:?}\n")).collect();
    assert_eq!(String::from_utf8(out).unwrap(), want);
}
