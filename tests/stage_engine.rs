//! Integration tests for the trait-based stage engine: parallel
//! determinism on generated chips and custom-stage registration.

use diic::core::{
    check_cif, check_with_engine, CheckContext, CheckOptions, PipelineStage, StageEngine,
};
use diic::gen::{generate, ChipSpec, ErrorKind};
use diic::tech::nmos::nmos_technology;

/// The headline engine guarantee: with `parallelism > 1` the interaction
/// stage produces a byte-identical ordered violation list (and identical
/// pruning statistics) to the serial run — on a generated chip with
/// injected errors, under both search engines.
#[test]
fn parallel_and_serial_runs_are_identical() {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        5,
        3,
        vec![
            ErrorKind::NarrowWire,
            ErrorKind::CloseSpacing,
            ErrorKind::AccidentalTransistor,
            ErrorKind::ButtedBoxes,
        ],
        42,
    ));
    for hierarchical in [true, false] {
        let serial = check_cif(
            &chip.cif,
            &tech,
            &CheckOptions {
                hierarchical,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert!(
            !serial.violations.is_empty(),
            "injected errors must produce violations"
        );
        for parallelism in [2usize, 4, 0] {
            let parallel = check_cif(
                &chip.cif,
                &tech,
                &CheckOptions {
                    hierarchical,
                    parallelism,
                    ..CheckOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                serial.violations, parallel.violations,
                "hier={hierarchical} workers={parallelism}: ordered violation lists diverge"
            );
            assert_eq!(
                serial.interact_stats, parallel.interact_stats,
                "hier={hierarchical} workers={parallelism}: stats diverge"
            );
        }
    }
}

/// A custom no-op stage can be registered on the standard pipeline and
/// shows up in the generic per-stage timing profile.
#[test]
fn custom_noop_stage_is_registered_and_timed() {
    struct NoopStage;
    impl PipelineStage for NoopStage {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn run(&self, _ctx: &mut CheckContext<'_>) {}
    }

    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(2, 1));
    let layout = diic::cif::parse(&chip.cif).unwrap();

    let mut engine = StageEngine::diic_pipeline();
    engine.register(Box::new(NoopStage));
    assert!(engine.stage_names().contains(&"noop"));

    let report = check_with_engine(&engine, &layout, &tech, &CheckOptions::default());
    let noop = report
        .stage_profile
        .iter()
        .find(|s| s.name == "noop")
        .expect("registered no-op stage must appear in the stage profile");
    assert_eq!(noop.violations, 0);

    // The extra stage must not change the verdict of the standard run.
    let baseline = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    assert_eq!(report.violations, baseline.violations);
    assert_eq!(report.stage_profile.len(), baseline.stage_profile.len() + 1);
}

/// The clip hook: running a stage set with `CheckContext::clip` scopes
/// the stages that support it — the interaction stage in the DIIC
/// pipeline, and the width/spacing/gate phases of the flat baseline —
/// to exactly the full run's violations anchored inside the clip.
/// Stages without clip support (they are cheap and global) still run in
/// full.
#[test]
fn clipped_runs_report_the_full_runs_in_clip_violations() {
    use diic::core::{CheckStage, FlatOptions, StageEngine};
    use diic::geom::{Rect, Region};

    let tech = nmos_technology();
    // Two widely separated spacing-fault clusters (500 gaps, rule 750),
    // plus one narrow wire in the left cluster.
    let cif = "L NM; B 2000 700 1000 350;
         L NM; B 2000 750 1000 2000; B 2000 750 1000 3250;
         L NM; B 2000 750 90000 2000; B 2000 750 90000 3250;
         E";
    let layout = diic::cif::parse(cif).unwrap();
    let options = CheckOptions {
        erc: false,
        ..CheckOptions::default()
    };
    let clip = Region::from_rect(Rect::new(-5000, -5000, 10000, 10000)); // left cluster only

    for (scopes_all, engine) in [
        (false, StageEngine::diic_pipeline()), // interactions scoped, rest global
        (true, StageEngine::flat_baseline(FlatOptions::default())), // every phase scoped
    ] {
        let full = check_with_engine(&engine, &layout, &tech, &options);
        let expected: Vec<_> = full
            .violations
            .iter()
            .filter(|v| {
                (!scopes_all && v.stage != CheckStage::Interactions)
                    || v.location.is_none_or(|l| clip.touches_rect(&l))
            })
            .cloned()
            .collect();
        assert!(
            !expected.is_empty() && expected.len() < full.violations.len(),
            "clip must split the violation set: {expected:?}"
        );

        let mut ctx = CheckContext::new(&layout, &tech, &options).with_clip(clip.clone());
        let profile = engine.run(&mut ctx);
        let clipped = ctx.into_report(profile);
        assert_eq!(
            clipped.violations, expected,
            "clipped run must report exactly the in-clip violations"
        );
    }
}
