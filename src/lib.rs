//! # diic — Design Integrity and Immunity Checking
//!
//! A comprehensive Rust reproduction of McGrath & Whitney, *"Design
//! Integrity and Immunity Checking: A New Look at Layout Verification and
//! Design Rule Checking"*, Proc. 17th Design Automation Conference (DAC),
//! 1980.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geom`] — integer geometry kernel (Boolean sweep, sizing, width /
//!   spacing algorithms, skeletal connectivity, rasters, spatial index);
//! * [`cif`] — extended CIF parser/writer (net identifiers `9N`, device
//!   types `9D`, immunity `9C`, terminals `9T`, labels `9L`), hierarchy
//!   tools and the flattener;
//! * [`tech`] — technologies: layers, the Fig. 12 interaction matrix,
//!   device archetypes, rule-file DSL, default NMOS and bipolar processes;
//! * [`deck`] — the rule-deck language: lexer, parser, spanned
//!   diagnostics, canonical printer, and compilation to a [`tech`]
//!   `Technology` (the built-in NMOS process ships as a checked-in
//!   `.deck` file proven byte-equivalent to the hardcoded recipe);
//! * [`netlist`] — hierarchical net lists, consistency comparison, and the
//!   four non-geometric construction rules;
//! * [`process`] — 2-D process modelling: Gaussian exposure (Eq. 1),
//!   proximity-effect expansion, exposure-based spacing, relational rules;
//! * [`core`] — the six-stage DIIC pipeline and the flat mask-level
//!   baseline checker;
//! * [`gen`] — synthetic NMOS workloads with ground-truth error ledgers;
//! * [`api`] — check-as-a-service: an HTTP session API over the
//!   incremental checker (concurrent edit sessions, streamed canonical
//!   reports, batch library verification; `examples/diic_serve.rs`
//!   binds it to a socket).
//!
//! # Quickstart
//!
//! ```
//! use diic::core::{check_cif, CheckOptions};
//! use diic::tech::nmos::nmos_technology;
//!
//! let tech = nmos_technology();
//! let report = check_cif(
//!     "L NM; 9N VDD; B 4000 750 2000 375; L NM; 9N GND; B 4000 750 2000 2375; E",
//!     &tech,
//!     &CheckOptions { erc: false, ..CheckOptions::default() },
//! )?;
//! assert!(report.is_clean());
//! # Ok::<(), diic::cif::CifError>(())
//! ```

pub use diic_api as api;
pub use diic_cif as cif;
pub use diic_core as core;
pub use diic_deck as deck;
pub use diic_gen as gen;
pub use diic_geom as geom;
pub use diic_netlist as netlist;
pub use diic_process as process;
pub use diic_tech as tech;
