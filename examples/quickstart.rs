//! Quickstart: build a tiny extended-CIF layout, run the full DIIC
//! pipeline, and read the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use diic::core::{check_cif, format_report, CheckOptions};
use diic::tech::nmos::nmos_technology;

fn main() {
    let tech = nmos_technology();

    // A declared enhancement transistor with its gate, source and drain
    // wired up — plus two deliberate mistakes: a 700-wide metal stub
    // (metal needs 750) and an accidental poly crossing over diffusion.
    let cif = "
        (a declared NMOS transistor symbol with terminals)
        DS 1; 9 pulldown; 9D NMOS_ENH;
        9T G NP -375 0; 9T S ND 250 -1000; 9T D ND 250 1000;
        L NP; B 1500 500 250 0;
        L ND; B 500 2500 250 0;
        DF;

        C 1 T 0 0;
        L NP; 9N IO_IN;  W 500 -375 0 -3000 0;
        L ND; 9N GND;    W 500 250 -1000 250 -4000;
        L ND; 9N IO_OUT; W 500 250 1000 250 4000;

        (mistake 1: an under-width metal stub)
        L NM; 9N IO_STUB; B 2000 700 6000 0;

        (mistake 2: poly accidentally crossing diffusion - an undeclared device)
        L NP; 9N IO_X; W 500 -1000 3000 2000 3000;
        E";

    let report = check_cif(cif, &tech, &CheckOptions::default()).expect("CIF parses");

    println!("== DIIC quickstart ==");
    println!(
        "{} elements, {} device instance(s), {} net(s) extracted",
        report.element_count,
        report.device_count,
        report.netlist.net_count()
    );
    println!();
    println!("{}", format_report(&report.violations));
    println!("extracted nets:");
    for net in report.netlist.nets() {
        println!(
            "  {:<10} ({} terminal(s), aliases: {})",
            net.name,
            net.terminals.len(),
            net.aliases.join(", ")
        );
    }
}
