//! Rule files and device-dependent rules: serialise the built-in NMOS
//! technology to the rule-file DSL, read it back, tighten a rule, and show
//! the Fig. 6 device-dependent verdicts under the bipolar technology.
//!
//! ```text
//! cargo run --example rule_files
//! ```

use diic::core::{check_cif, CheckOptions};
use diic::tech::bipolar::bipolar_technology;
use diic::tech::dsl::{parse_rules, to_rules};
use diic::tech::nmos::nmos_technology;

fn main() {
    // Round-trip the NMOS technology through the rule-file format.
    let nmos = nmos_technology();
    let text = to_rules(&nmos);
    println!("== nmos rule file ({} lines) ==", text.lines().count());
    for line in text.lines().take(14) {
        println!("  {line}");
    }
    println!("  ...");
    let reparsed = parse_rules(&text).expect("round-trip parses");
    assert_eq!(reparsed, nmos);
    println!("  round-trip: identical technology\n");

    // Tighten metal spacing from 3λ to 4λ and watch a pair flip verdict.
    let mut tightened = text.clone();
    tightened = tightened.replace("space metal metal 750", "space metal metal 1000");
    let tight = parse_rules(&tightened).unwrap();
    let pair = "L NM; B 2000 750 1000 375; B 2000 750 1000 2000; E"; // 875 apart
    let relaxed_report = check_cif(
        pair,
        &nmos,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    let tight_report = check_cif(
        pair,
        &tight,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    println!("== metal pair 875 apart ==");
    println!(
        "  under 3λ rule: {} violation(s)",
        relaxed_report.violations.len()
    );
    println!(
        "  under 4λ rule: {} violation(s)\n",
        tight_report.violations.len()
    );

    // Fig. 6 under the bipolar technology.
    let bip = bipolar_technology();
    let npn = "
        DS 1; 9 t; 9D NPN; 9T B BB 0 0; 9T E BE 0 0; 9T C BB 250 250;
        L BB; B 2000 2000 0 0; L BE; B 500 500 0 0; DF;
        C 1 T 0 0;
        L BI; 9N GND; B 2000 2000 2000 0; E";
    let res = "
        DS 2; 9 r; 9D BASE_RESISTOR; 9T A BB 0 -750; 9T B BB 0 750;
        L BB; B 500 2000 0 0; DF;
        C 2 T 0 0;
        L BI; 9N GND; B 2000 2000 1250 0; E";
    let opt = CheckOptions {
        erc: false,
        ..Default::default()
    };
    let r1 = check_cif(npn, &bip, &opt).unwrap();
    let r2 = check_cif(res, &bip, &opt).unwrap();
    println!("== Fig. 6: the same base/isolation contact, two devices ==");
    println!(
        "  NPN transistor base touching isolation: {} violation(s) (device integrity)",
        r1.violations.len()
    );
    println!(
        "  base resistor tied to isolation:        {} violation(s) (legal ground tie)",
        r2.violations.len()
    );
}
