//! `diic-serve` — bind the check-as-a-service API to a TCP socket.
//!
//! ```text
//! cargo run --release --example diic_serve -- 127.0.0.1:8080
//! ```
//!
//! Then, from another shell:
//!
//! ```text
//! curl -s localhost:8080/healthz
//! curl -s -X POST localhost:8080/sessions \
//!      -d '{"cif": "L NM; B 2000 700 1000 350; E"}'
//! curl -s -X POST localhost:8080/sessions/0/edits \
//!      -d '{"edits": [{"op": "move", "index": 0, "by": [0, 500]}]}'
//! curl -s localhost:8080/sessions/0/report
//! ```
//!
//! See `docs/api.md` for the full endpoint reference.

use diic::api::{router, App, RegistryConfig};
use std::net::TcpListener;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let listener = TcpListener::bind(&addr).expect("bind");
    let local = listener.local_addr().expect("local addr");
    let app = App::new(RegistryConfig::default());
    eprintln!("diic-serve listening on http://{local}");
    eprintln!("  GET  /healthz              liveness");
    eprintln!("  GET  /stats                registry counters");
    eprintln!("  POST /sessions             open a check session");
    eprintln!("  POST /sessions/{{id}}/edits  apply an edit batch");
    eprintln!("  GET  /sessions/{{id}}/report stream the canonical report");
    eprintln!("  DEL  /sessions/{{id}}        close a session");
    eprintln!("  POST /library              batch-verify a cell library");
    axum::serve(listener, router(app), axum::ServeOptions::default()).expect("serve");
}
