//! The paper's headline experiment (Fig. 1): generate an NMOS inverter
//! array with injected errors, run both the DIIC pipeline and the
//! traditional flat mask-level checker, and account real / false /
//! unchecked errors against ground truth.
//!
//! ```text
//! cargo run --release --example false_error_study [nx ny]
//! ```

use diic::core::{account, check_cif, flat_check, CheckOptions, FlatOptions};
use diic::gen::{generate, ChipSpec, ErrorKind};
use diic::tech::nmos::nmos_technology;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nx: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(6);
    let ny: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    let tech = nmos_technology();
    let errors = vec![
        ErrorKind::NarrowWire,
        ErrorKind::CloseSpacing,
        ErrorKind::AccidentalTransistor,
        ErrorKind::ButtedBoxes,
        ErrorKind::PowerGroundShort,
        ErrorKind::BadGateOverhang,
        ErrorKind::ContactOverGate,
    ];
    let chip = generate(&ChipSpec::with_errors(nx, ny, errors, 91));
    println!(
        "chip: {}x{} inverters ({} cells), {} injected errors",
        nx,
        ny,
        chip.cell_count,
        chip.ground_truth.len()
    );
    for g in &chip.ground_truth {
        println!("  injected: {}", g.description);
    }
    let injected = chip.injected();

    let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let diic = account(&report.violations, &injected, 800);

    let layout = diic::cif::parse(&chip.cif).unwrap();
    let flat = flat_check(&layout, &tech, &FlatOptions::default());
    let flat_regions = account(&flat, &injected, 800);

    println!();
    println!(
        "{:<8} {:>9} {:>12} {:>13} {:>16} {:>12}",
        "checker", "reported", "real (R2)", "false (R3)", "unchecked (R1)", "false:real"
    );
    for (name, r) in [("DIIC", &diic), ("flat", &flat_regions)] {
        let ratio = if r.false_to_real_ratio().is_finite() {
            format!("{:.1}", r.false_to_real_ratio())
        } else {
            "inf".into()
        };
        println!(
            "{:<8} {:>9} {:>12} {:>13} {:>16} {:>12}",
            name, r.reported, r.real_flagged, r.false_errors, r.unchecked, ratio
        );
    }
    println!();
    println!("paper: \"the ratio of false to real errors can be 10 to 1 or higher\"");
    println!("       (grow the array to watch the flat checker's ratio climb)");
}
