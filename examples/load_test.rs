//! `load_test` — the check-as-a-service load driver (experiment e21).
//!
//! Pure Rust, no sockets: drives the service router in-process through
//! `oneshot` dispatch, so the printed p50/p99 edit latencies and the
//! sessions-per-GB density are the service's own cost. The same
//! numbers are recorded as experiment **e21** in `EXPERIMENTS.md`
//! (regenerate with `cargo run -p diic-bench --bin experiments
//! --release -- e21`).
//!
//! ```text
//! cargo run --release --example load_test             # full sizes
//! cargo run --release --example load_test -- --quick  # CI sizes
//! ```

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        diic_bench::e21_service_load(diic_bench::Scale { quick })
    );
}
