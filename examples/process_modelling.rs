//! 2-D process modelling (paper §"2-D Process Modelling for DRC"):
//! the Gaussian exposure model (Eq. 1), the three expansion flavours of
//! Fig. 13, the exposure-based spacing predicate, and the relational
//! endcap rule of Fig. 14.
//!
//! ```text
//! cargo run --release --example process_modelling
//! ```

use diic::geom::{Rect, Region};
use diic::process::proximity::expand_comparison;
use diic::process::relational::{endcap_retreat, required_overlap};
use diic::process::{exposure_spacing_check, ExposureModel};

fn main() {
    let model = ExposureModel::new(125.0, 0.5); // sigma = λ/2, threshold 0.5

    println!("== exposure field of a 2λ line (Eq. 1 closed form) ==");
    let line = Rect::new(0, 0, 500, 100_000);
    for x in [-250i64, 0, 125, 250, 375, 500, 750] {
        let v = model.exposure(&[line], x as f64, 50_000.0);
        let mark = if v >= model.threshold {
            "prints"
        } else {
            "      "
        };
        println!("  x = {x:>5}: I = {v:.3} {mark}");
    }

    println!();
    println!("== Fig. 13: three expansions of a 6λ square, d = 1λ ==");
    let sq = Region::from_rect(Rect::new(0, 0, 1500, 1500));
    let c = expand_comparison(&sq, 250, 125.0, 10);
    println!("  orthogonal (square corners): {:>10.0}", c.orthogonal_area);
    println!("  Euclidean  (round corners) : {:>10.0}", c.euclidean_area);
    println!("  proximity  (exposure model): {:>10.0}", c.proximity_area);

    println!();
    println!("== spacing by line of closest approach ==");
    let a = [Rect::new(0, 0, 2000, 2000)];
    for gap in [500i64, 300, 200, 125] {
        let b = [Rect::new(2000 + gap, 0, 4000 + gap, 2000)];
        let r = exposure_spacing_check(&a, &b, &model, 0);
        println!(
            "  gap {gap:>4}: bridge exposure {:.3} vs critical {:.2} -> {}",
            r.bridge_exposure,
            r.critical,
            if r.violation { "SHORT" } else { "ok" }
        );
    }
    let b = [Rect::new(2300, 0, 4300, 2000)];
    let aligned = exposure_spacing_check(&a, &b, &model, 0);
    let misaligned = exposure_spacing_check(&a, &b, &model, 250);
    println!(
        "  gap 300 with 1λ misalignment: {:.3} -> {} (aligned was {:.3})",
        misaligned.bridge_exposure,
        if misaligned.violation { "SHORT" } else { "ok" },
        aligned.bridge_exposure
    );

    println!();
    println!("== Fig. 14: relational rule — endcap retreat vs wire width ==");
    println!(
        "  {:>8} {:>10} {:>22}",
        "width", "retreat", "overlap for 1λ margin"
    );
    for w in [250i64, 375, 500, 750, 1000] {
        let r = endcap_retreat(w, &model);
        let need = required_overlap(w, 0, &model, 125, 250.0);
        println!("  {w:>8} {r:>10.0} {need:>22}");
    }
    println!("  (the required gate overlap is a function of the poly width)");
}
