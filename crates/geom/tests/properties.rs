//! Property-based tests for the geometry kernel's core invariants.

use diic_geom::boolean::{boolean_op, BoolOp};
use diic_geom::size::{closing, expand, opening, shrink};
use diic_geom::skeleton::Skeleton;
use diic_geom::width::shrink_expand_compare;
use diic_geom::{GridIndex, Point, Rect, Region};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-200i64..200, -200i64..200, 1i64..150, 1i64..150)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(arb_rect(), 0..max)
}

/// A rectangle guaranteed to satisfy a 20-unit minimum width rule.
fn arb_legal_rect() -> impl Strategy<Value = Rect> {
    (-200i64..200, -200i64..200, 20i64..150, 20i64..150)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn brute_area(rects: &[Rect]) -> i128 {
    // Sample-counting on the integer grid would be too slow; instead use
    // coordinate compression over both sets of edges.
    let mut xs: Vec<i64> = rects.iter().flat_map(|r| [r.x1, r.x2]).collect();
    let mut ys: Vec<i64> = rects.iter().flat_map(|r| [r.y1, r.y2]).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut total: i128 = 0;
    for wx in xs.windows(2) {
        for wy in ys.windows(2) {
            // Coordinate compression guarantees each cell is entirely inside
            // or outside every rect, so interior overlap decides coverage.
            let cell = Rect::new(wx[0], wy[0], wx[1], wy[1]);
            if rects.iter().any(|r| r.overlaps(&cell)) {
                total += cell.area();
            }
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_area_matches_brute_force(rects in arb_rects(8)) {
        let u = boolean_op(&rects, &[], BoolOp::Union);
        let area: i128 = u.iter().map(Rect::area).sum();
        prop_assert_eq!(area, brute_area(&rects));
    }

    #[test]
    fn boolean_outputs_disjoint(a in arb_rects(6), b in arb_rects(6)) {
        for op in [BoolOp::Union, BoolOp::Intersection, BoolOp::Difference, BoolOp::Xor] {
            let out = boolean_op(&a, &b, op);
            for (i, r1) in out.iter().enumerate() {
                for r2 in out.iter().skip(i + 1) {
                    prop_assert!(!r1.overlaps(r2), "{:?} output overlaps: {} vs {}", op, r1, r2);
                }
            }
        }
    }

    #[test]
    fn inclusion_exclusion(a in arb_rects(6), b in arb_rects(6)) {
        let ra = Region::from_rects(a);
        let rb = Region::from_rects(b);
        let union = ra.union(&rb);
        let inter = ra.intersection(&rb);
        prop_assert_eq!(union.area() + inter.area(), ra.area() + rb.area());
        let xor = ra.xor(&rb);
        prop_assert_eq!(xor.area(), union.area() - inter.area());
        let diff = ra.difference(&rb);
        prop_assert_eq!(diff.area(), ra.area() - inter.area());
    }

    #[test]
    fn union_commutative_and_idempotent(a in arb_rects(6), b in arb_rects(6)) {
        let ra = Region::from_rects(a);
        let rb = Region::from_rects(b);
        prop_assert_eq!(ra.union(&rb).area(), rb.union(&ra).area());
        prop_assert_eq!(ra.union(&ra).area(), ra.area());
    }

    #[test]
    fn de_morgan_on_bounded_universe(a in arb_rects(5), b in arb_rects(5)) {
        let ra = Region::from_rects(a);
        let rb = Region::from_rects(b);
        let u = Region::from_rect(Rect::new(-500, -500, 500, 500));
        // U \ (A ∪ B) == (U \ A) ∩ (U \ B)
        let lhs = u.difference(&ra.union(&rb));
        let rhs = u.difference(&ra).intersection(&u.difference(&rb));
        prop_assert_eq!(lhs.area(), rhs.area());
        prop_assert!(lhs.xor(&rhs).is_empty());
    }

    #[test]
    fn opening_shrinks_closing_grows(rects in arb_rects(6), d in 1i64..30) {
        let r = Region::from_rects(rects);
        let opened = opening(&r, d).unwrap();
        let closed = closing(&r, d).unwrap();
        // opening(A) ⊆ A ⊆ closing(A)
        prop_assert!(opened.difference(&r).is_empty());
        prop_assert!(r.difference(&closed).is_empty());
    }

    #[test]
    fn expand_shrink_adjoint(rects in arb_rects(5), d in 1i64..30) {
        let r = Region::from_rects(rects);
        // shrink(expand(A, d), d) ⊇ A and expand(shrink(A, d), d) ⊆ A.
        let es = shrink(&expand(&r, d).unwrap(), d).unwrap();
        prop_assert!(r.difference(&es).is_empty());
        let se = expand(&shrink(&r, d).unwrap(), d).unwrap();
        prop_assert!(se.difference(&r).is_empty());
    }

    #[test]
    fn expand_area_monotone(rects in arb_rects(5), d in 0i64..30) {
        let r = Region::from_rects(rects);
        let e = expand(&r, d).unwrap();
        prop_assert!(e.area() >= r.area());
        prop_assert!(r.difference(&e).is_empty());
    }

    /// The paper's skeletal-connectivity theorem: if two elements are each of
    /// legal width and are skeletally connected, their union is of legal
    /// width (no sub-width area found by the exact orthogonal SEC check).
    #[test]
    fn skeleton_theorem_union_is_legal_width(a in arb_legal_rect(), b in arb_legal_rect()) {
        const MIN_W: i64 = 20;
        let sa = Skeleton::of_rect(&a, MIN_W / 2).unwrap();
        let sb = Skeleton::of_rect(&b, MIN_W / 2).unwrap();
        if sa.connected_to(&sb) {
            let union = Region::from_rects([a, b]);
            let violations = shrink_expand_compare(&union, MIN_W);
            prop_assert!(
                violations.is_empty(),
                "connected legal rects {} and {} produced sub-width union: {:?}",
                a, b, violations
            );
        }
    }

    #[test]
    fn grid_index_matches_brute_force(rects in arb_rects(20), query in arb_rect()) {
        let mut idx = GridIndex::new(50);
        for (i, r) in rects.iter().enumerate() {
            idx.insert(*r, i);
        }
        let mut hits: Vec<usize> = idx.query(&query).into_iter().copied().collect();
        hits.sort_unstable();
        let mut expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.touches(&query))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(hits, expected);
    }

    #[test]
    fn region_components_partition_area(rects in arb_rects(8)) {
        let r = Region::from_rects(rects);
        let comps = r.components();
        let total: i128 = comps.iter().map(Region::area).sum();
        prop_assert_eq!(total, r.area());
    }

    #[test]
    fn rect_distance_symmetry_and_triangle(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
        prop_assert_eq!(a.dist_linf(&b), b.dist_linf(&a));
        // L∞ <= L2 <= L∞·√2 (squared: linf² <= l2² <= 2·linf²).
        let linf = a.dist_linf(&b) as i128;
        let l2 = a.dist_sq(&b);
        prop_assert!(linf * linf <= l2);
        prop_assert!(l2 <= 2 * linf * linf);
    }

    #[test]
    fn point_in_region_consistent_with_rects(rects in arb_rects(6), x in -300i64..300, y in -300i64..300) {
        let p = Point::new(x, y);
        let r = Region::from_rects(rects.clone());
        // Region containment implies some input rect contains it, and
        // strict containment in an input rect implies region containment.
        if rects.iter().any(|rr| rr.contains_point_strict(p)) {
            prop_assert!(r.contains_point(p));
        }
        if r.contains_point(p) {
            prop_assert!(rects.iter().any(|rr| rr.contains_point(p)));
        }
    }
}
