//! Raster geometry: exact Euclidean distance transforms on a pixel grid.
//!
//! Euclidean (disc-kernel) sizing of polygonal data is not representable in
//! the rectilinear [`Region`] algebra, so the Euclidean variant of the
//! *shrink-expand-compare* baseline (paper Fig. 4) is computed on a raster:
//! rasterise, take the exact squared Euclidean distance transform
//! (Felzenszwalb–Huttenlocher), threshold to shrink/expand, and compare.
//! On a legal square this flags a sliver at **every convex corner** — the
//! false-error pathology the paper describes.

use crate::{Coord, Point, Rect, Region};

const INF: i64 = i64::MAX / 4;

/// A binary raster over a rectangular window of the layout plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raster {
    bounds: Rect,
    resolution: Coord,
    width: usize,
    height: usize,
    bits: Vec<bool>,
}

impl Raster {
    /// Rasterises `region` over `bounds` at `resolution` layout units per
    /// pixel (pixel centres are sampled).
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 1` or `bounds` is degenerate.
    pub fn from_region(region: &Region, bounds: Rect, resolution: Coord) -> Self {
        assert!(resolution >= 1, "resolution must be >= 1");
        assert!(!bounds.is_degenerate(), "raster bounds must have area");
        let width = ((bounds.width() + resolution - 1) / resolution) as usize;
        let height = ((bounds.height() + resolution - 1) / resolution) as usize;
        let mut bits = vec![false; width * height];
        for r in region.rects() {
            // Pixel index range whose centres fall inside r.
            let px1 = pixel_floor(r.x1 - bounds.x1, resolution);
            let px2 = pixel_ceil(r.x2 - bounds.x1, resolution);
            let py1 = pixel_floor(r.y1 - bounds.y1, resolution);
            let py2 = pixel_ceil(r.y2 - bounds.y1, resolution);
            for py in py1.max(0)..py2.min(height as i64) {
                for px in px1.max(0)..px2.min(width as i64) {
                    let cx = bounds.x1 + px * resolution + resolution / 2;
                    let cy = bounds.y1 + py * resolution + resolution / 2;
                    if r.contains_point(Point::new(cx, cy)) {
                        bits[py as usize * width + px as usize] = true;
                    }
                }
            }
        }
        Raster {
            bounds,
            resolution,
            width,
            height,
            bits,
        }
    }

    /// Grid width in pixels.
    pub fn pixel_width(&self) -> usize {
        self.width
    }

    /// Grid height in pixels.
    pub fn pixel_height(&self) -> usize {
        self.height
    }

    /// Number of set pixels.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Set-pixel area in layout units².
    pub fn area(&self) -> i128 {
        self.count() as i128 * (self.resolution as i128) * (self.resolution as i128)
    }

    /// Pixel accessor (false outside the grid).
    pub fn get(&self, x: usize, y: usize) -> bool {
        if x < self.width && y < self.height {
            self.bits[y * self.width + x]
        } else {
            false
        }
    }

    /// Exact squared Euclidean distance (in pixels²) from each pixel to the
    /// nearest pixel **not** in the set. Set pixels adjacent to the
    /// background get 1; background pixels get 0.
    pub fn distance_to_background_sq(&self) -> Vec<i64> {
        // Seed: 0 on background, INF on foreground, with a virtual background
        // border outside the grid handled by seeding edges correctly: the
        // transform treats outside-of-grid as background at distance from the
        // border, achieved by clamping during the 1-D passes (we add a ring).
        let w = self.width + 2;
        let h = self.height + 2;
        let mut f = vec![0i64; w * h];
        for y in 0..self.height {
            for x in 0..self.width {
                if self.bits[y * self.width + x] {
                    f[(y + 1) * w + (x + 1)] = INF;
                }
            }
        }
        let mut d = edt_2d(&f, w, h);
        // Strip the ring.
        let mut out = vec![0i64; self.width * self.height];
        for y in 0..self.height {
            for x in 0..self.width {
                out[y * self.width + x] = d[(y + 1) * w + (x + 1)];
            }
        }
        d.clear();
        out
    }

    /// Exact squared Euclidean distance (in pixels²) from each pixel to the
    /// nearest **set** pixel (0 on set pixels).
    pub fn distance_to_foreground_sq(&self) -> Vec<i64> {
        let w = self.width;
        let h = self.height;
        let mut f = vec![INF; w * h];
        for (fi, &bit) in f.iter_mut().zip(&self.bits) {
            if bit {
                *fi = 0;
            }
        }
        edt_2d(&f, w, h)
    }

    /// Euclidean shrink by `d` layout units: keeps pixels whose distance to
    /// the background exceeds `d` (in pixel metric, conservative rounding).
    pub fn euclidean_shrink(&self, d: Coord) -> Raster {
        let dp = d as f64 / self.resolution as f64;
        let thr = (dp * dp).ceil() as i64;
        let dist = self.distance_to_background_sq();
        let mut out = self.clone();
        for (bit, &d2) in out.bits.iter_mut().zip(&dist) {
            *bit = d2 > thr;
        }
        out
    }

    /// Euclidean expand by `d` layout units: sets pixels within `d` of a set
    /// pixel.
    pub fn euclidean_expand(&self, d: Coord) -> Raster {
        let dp = d as f64 / self.resolution as f64;
        let thr = (dp * dp).floor() as i64;
        let dist = self.distance_to_foreground_sq();
        let mut out = self.clone();
        for (bit, &d2) in out.bits.iter_mut().zip(&dist) {
            *bit = d2 <= thr;
        }
        out
    }

    /// Pixels set in `self` but not in `other` (both rasters must share
    /// geometry).
    ///
    /// # Panics
    ///
    /// Panics if the rasters have different bounds or resolution.
    pub fn difference(&self, other: &Raster) -> Raster {
        assert_eq!(self.bounds, other.bounds, "raster bounds mismatch");
        assert_eq!(
            self.resolution, other.resolution,
            "raster resolution mismatch"
        );
        let mut out = self.clone();
        for i in 0..out.bits.len() {
            out.bits[i] = self.bits[i] && !other.bits[i];
        }
        out
    }

    /// Connected components (8-connectivity) of the set pixels, as bounding
    /// boxes in layout coordinates.
    pub fn components(&self) -> Vec<Rect> {
        let mut seen = vec![false; self.bits.len()];
        let mut out = Vec::new();
        for start in 0..self.bits.len() {
            if !self.bits[start] || seen[start] {
                continue;
            }
            let mut stack = vec![start];
            seen[start] = true;
            let (mut minx, mut miny, mut maxx, mut maxy) = (usize::MAX, usize::MAX, 0usize, 0usize);
            while let Some(i) = stack.pop() {
                let (x, y) = (i % self.width, i / self.width);
                minx = minx.min(x);
                maxx = maxx.max(x);
                miny = miny.min(y);
                maxy = maxy.max(y);
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx < 0 || ny < 0 || nx >= self.width as i64 || ny >= self.height as i64 {
                            continue;
                        }
                        let ni = ny as usize * self.width + nx as usize;
                        if self.bits[ni] && !seen[ni] {
                            seen[ni] = true;
                            stack.push(ni);
                        }
                    }
                }
            }
            out.push(Rect::new(
                self.bounds.x1 + minx as Coord * self.resolution,
                self.bounds.y1 + miny as Coord * self.resolution,
                self.bounds.x1 + (maxx as Coord + 1) * self.resolution,
                self.bounds.y1 + (maxy as Coord + 1) * self.resolution,
            ));
        }
        out
    }
}

/// Euclidean shrink-expand-compare on a raster: the Fig. 4 baseline.
/// Returns the bounding boxes of the "lost" areas — for a legal square these
/// are the four corner slivers (false errors); for a genuinely thin feature
/// they cover the feature.
pub fn euclidean_shrink_expand_compare(
    region: &Region,
    min_width: Coord,
    resolution: Coord,
) -> Vec<Rect> {
    let Some(bbox) = region.bbox() else {
        return Vec::new();
    };
    let bounds = bbox
        .inflate(min_width + 2 * resolution)
        .expect("inflating by positive amount cannot fail");
    let raster = Raster::from_region(region, bounds, resolution);
    let opened = raster
        .euclidean_shrink(min_width / 2)
        .euclidean_expand(min_width / 2);
    let lost = raster.difference(&opened);
    lost.components()
}

fn pixel_floor(v: Coord, res: Coord) -> i64 {
    v.div_euclid(res)
}

fn pixel_ceil(v: Coord, res: Coord) -> i64 {
    (v + res - 1).div_euclid(res)
}

/// Exact 2-D squared EDT: column pass then row pass of the 1-D transform.
fn edt_2d(f: &[i64], w: usize, h: usize) -> Vec<i64> {
    let mut tmp = vec![0i64; w * h];
    let mut col = vec![0i64; h];
    let mut out_col = vec![0i64; h];
    for x in 0..w {
        for y in 0..h {
            col[y] = f[y * w + x];
        }
        edt_1d(&col, &mut out_col);
        for y in 0..h {
            tmp[y * w + x] = out_col[y];
        }
    }
    let mut out = vec![0i64; w * h];
    let mut row = vec![0i64; w];
    let mut out_row = vec![0i64; w];
    for y in 0..h {
        row.copy_from_slice(&tmp[y * w..(y + 1) * w]);
        edt_1d(&row, &mut out_row);
        out[y * w..(y + 1) * w].copy_from_slice(&out_row);
    }
    out
}

/// Felzenszwalb–Huttenlocher 1-D squared distance transform:
/// `d(p) = min_q ((p - q)² + f(q))`.
///
/// `INF` seeds are handled by the vanilla algorithm: an `INF` parabola's
/// boundary with any finite one lands astronomically far outside the grid,
/// so f64 rounding there cannot affect verdicts inside the grid.
fn edt_1d(f: &[i64], d: &mut [i64]) {
    let n = f.len();
    let mut v = vec![0usize; n]; // parabola sites
    let mut z = vec![0f64; n + 1]; // boundaries
    let mut k = 0usize;
    v[0] = 0;
    z[0] = f64::NEG_INFINITY;
    z[1] = f64::INFINITY;
    for q in 1..n {
        loop {
            let p = v[k];
            let s = intersect(p, f[p], q, f[q]);
            if s <= z[k] {
                debug_assert!(k > 0, "first parabola can never be displaced below z[0]");
                k -= 1;
            } else {
                k += 1;
                v[k] = q;
                z[k] = s;
                z[k + 1] = f64::INFINITY;
                break;
            }
        }
    }
    let mut k2 = 0usize;
    for (q, dq) in d.iter_mut().enumerate().take(n) {
        while z[k2 + 1] < q as f64 {
            k2 += 1;
        }
        let p = v[k2];
        let diff = q as i64 - p as i64;
        *dq = (diff * diff).saturating_add(f[p]);
    }
}

fn intersect(p: usize, fp: i64, q: usize, fq: i64) -> f64 {
    let (p, q) = (p as f64, q as f64);
    ((fq as f64 + q * q) - (fp as f64 + p * p)) / (2.0 * q - 2.0 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_region(side: Coord) -> Region {
        Region::from_rect(Rect::new(0, 0, side, side))
    }

    #[test]
    fn rasterise_square_area() {
        let r = Raster::from_region(&square_region(100), Rect::new(-10, -10, 110, 110), 1);
        assert_eq!(r.count(), 100 * 100);
    }

    #[test]
    fn distance_transform_center_of_square() {
        let r = Raster::from_region(&square_region(21), Rect::new(0, 0, 21, 21), 1);
        let d = r.distance_to_background_sq();
        // Centre pixel (10,10): 10 pixels to the nearest edge pixel outside…
        // pixel (10,10) centre, edge background just outside the square.
        let centre = d[10 * r.pixel_width() + 10];
        assert!(
            (10 * 10..=12 * 12).contains(&centre),
            "centre dist² = {centre}"
        );
        // A corner pixel is adjacent to background.
        let corner = d[0];
        assert!((1..=2).contains(&corner), "corner dist² = {corner}");
    }

    #[test]
    fn shrink_expand_square_loses_corners_only() {
        // Fig. 4: Euclidean SEC on a LEGAL 100-wide square with min width 40
        // flags the four corners.
        let lost = euclidean_shrink_expand_compare(&square_region(100), 40, 1);
        assert_eq!(lost.len(), 4, "expected 4 corner slivers, got {lost:?}");
        // Each sliver hugs a corner of the square.
        let corners = [
            Point::new(0, 0),
            Point::new(100, 0),
            Point::new(100, 100),
            Point::new(0, 100),
        ];
        for c in corners {
            assert!(
                lost.iter().any(|r| r.inflate(2).unwrap().contains_point(c)),
                "no sliver at corner {c}"
            );
        }
    }

    #[test]
    fn shrink_expand_thin_bar_lost_entirely() {
        let thin = Region::from_rect(Rect::new(0, 0, 100, 10));
        let lost = euclidean_shrink_expand_compare(&thin, 40, 1);
        assert_eq!(lost.len(), 1);
        assert!(lost[0].contains_rect(&Rect::new(0, 0, 100, 10)));
    }

    #[test]
    fn expand_then_compare_no_loss_for_disc_like() {
        // Shrinking then expanding a huge square loses only corner slivers;
        // total lost area ≈ 4 · (1 - π/4) · (w/2)² — check the right order.
        let lost = euclidean_shrink_expand_compare(&square_region(400), 100, 2);
        let lost_area: i128 = lost.iter().map(Rect::area).sum();
        // Bounding boxes over-cover; the true lost area per corner is
        // (1 - π/4)·50² ≈ 536, bbox at most 50x50=2500 each.
        assert!(
            lost_area > 4 * 400 && lost_area < 4 * 3000,
            "lost={lost_area}"
        );
        assert_eq!(lost.len(), 4);
    }

    #[test]
    fn components_merge_diagonal_pixels() {
        let region = Region::from_rects([Rect::new(0, 0, 2, 2), Rect::new(2, 2, 4, 4)]);
        let raster = Raster::from_region(&region, Rect::new(0, 0, 4, 4), 1);
        assert_eq!(raster.components().len(), 1); // 8-connectivity
    }

    #[test]
    fn empty_region_rasterises_empty() {
        let r = Raster::from_region(&Region::empty(), Rect::new(0, 0, 10, 10), 1);
        assert_eq!(r.count(), 0);
        assert!(r.components().is_empty());
        assert!(euclidean_shrink_expand_compare(&Region::empty(), 40, 1).is_empty());
    }

    #[test]
    fn orthogonal_vs_euclidean_expand_area_on_raster() {
        // Euclidean raster expand of a square has area < orthogonal expand.
        let sq = square_region(60);
        let bounds = Rect::new(-40, -40, 100, 100);
        let raster = Raster::from_region(&sq, bounds, 1);
        let expanded = raster.euclidean_expand(20);
        let orth_area = (60 + 40) * (60 + 40);
        let eucl_area = expanded.count() as i64;
        assert!(eucl_area < orth_area);
        // Rounded corners: missing area ≈ (4 - π)·d² ≈ 343.
        let missing = orth_area - eucl_area;
        assert!(missing > 200 && missing < 500, "missing={missing}");
    }
}
