//! Skeletal connectivity (paper Fig. 11).
//!
//! The *skeleton* of an element is the element shrunk by half the minimum
//! width of its layer. Two elements are **legally connected** iff their
//! skeletons touch, overlap, or one encloses the other. The payoff (paper,
//! §"Some Techniques"): if two elements are each of legal width and are
//! skeletally connected, then their union is of legal width — so connected
//! interconnect never needs a general polygon width check.
//!
//! ## Representation
//!
//! A minimum-width element's skeleton is *degenerate* (a line or point), so
//! skeletons cannot live in the measure-semantics [`Region`]. We store the
//! skeleton in a **doubled coordinate grid, inflated by one half-unit**:
//! every skeleton rectangle `[a,b]×[c,d]` (original units, possibly
//! degenerate) becomes `[2a-1, 2b+1]×[2c-1, 2d+1]`. Because all element
//! coordinates are integers, two closed skeletons share a point **iff**
//! their inflated doubled rectangles share interior area — an exact
//! reduction of closed-set touching to positive-measure overlap.

use crate::{Coord, Rect, Region, Wire};

/// The skeleton of a layout element, ready for connectivity tests.
///
/// # Example
///
/// ```
/// use diic_geom::{Rect, skeleton::Skeleton};
/// // Boxes on a layer with min width 20, overlapped by a full min width:
/// let a = Skeleton::of_rect(&Rect::new(0, 0, 100, 20), 10).unwrap();
/// let b = Skeleton::of_rect(&Rect::new(80, 0, 180, 20), 10).unwrap();
/// assert!(a.connected_to(&b)); // skeletons touch at (90, 10)
///
/// // Merely *butted* boxes are NOT skeletally connected — the paper's
/// // Fig. 15 self-sufficiency rule: overlap symbols, don't butt them.
/// let c = Skeleton::of_rect(&Rect::new(100, 0, 200, 20), 10).unwrap();
/// assert!(!a.connected_to(&c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skeleton {
    /// Rectangles in the doubled-and-inflated coordinate system.
    scaled: Vec<Rect>,
}

impl Skeleton {
    /// Skeleton of a box element: the box inset by `half_min_width` on every
    /// side. Returns `None` if the box is narrower than the minimum width
    /// (such a box is a width violation and has no skeleton).
    pub fn of_rect(r: &Rect, half_min_width: Coord) -> Option<Skeleton> {
        let h = half_min_width;
        if r.width() < 2 * h || r.height() < 2 * h {
            return None;
        }
        Some(Skeleton {
            scaled: vec![scale_inflate(&Rect::new(
                r.x1 + h,
                r.y1 + h,
                r.x2 - h,
                r.y2 - h,
            ))],
        })
    }

    /// Skeleton of a Manhattan wire: the wire shrunk by `half_min_width`;
    /// for a minimum-width wire this is the centre line. Returns `None` if
    /// the wire is narrower than the minimum width.
    pub fn of_wire(w: &Wire, half_min_width: Coord) -> Option<Skeleton> {
        let rects = w.skeleton_rects(half_min_width);
        if rects.is_empty() {
            return None;
        }
        Some(Skeleton {
            scaled: rects.iter().map(scale_inflate).collect(),
        })
    }

    /// Skeleton of a polygonal element given as a [`Region`]: the orthogonal
    /// shrink by `half_min_width`, computed in the doubled grid so that
    /// degenerate (exactly-minimum-width) parts are retained. Returns `None`
    /// if the whole polygon is narrower than the minimum width.
    pub fn of_region(region: &Region, half_min_width: Coord) -> Option<Skeleton> {
        if region.is_empty() {
            return None;
        }
        // Work in the doubled grid: scale rects by 2, shrink by 2h - 1.
        // A point at L∞ distance exactly 2h from the complement (the true
        // degenerate skeleton) survives as a width-2 strip; parts strictly
        // narrower than minimum width disappear (distance <= 2h - 2 < 2h-1).
        let doubled = Region::from_rects(
            region
                .rects()
                .iter()
                .map(|r| Rect::new(2 * r.x1, 2 * r.y1, 2 * r.x2, 2 * r.y2)),
        );
        let d = 2 * half_min_width - 1;
        let shrunk =
            crate::size::shrink(&doubled, d.max(0)).expect("non-negative shrink cannot fail");
        if shrunk.is_empty() {
            return None;
        }
        Some(Skeleton {
            scaled: shrunk.rects().to_vec(),
        })
    }

    /// True if the two skeletons touch, overlap, or one encloses the other —
    /// the paper's legal-connection criterion.
    pub fn connected_to(&self, other: &Skeleton) -> bool {
        crate::batch::any_overlap(&self.scaled, &other.scaled)
    }

    /// The raw rectangles in the doubled-and-inflated grid — the packed
    /// form a columnar store keeps in its shared arena. Two scaled runs
    /// are connected iff [`crate::batch::any_overlap`] holds between
    /// them (exactly what [`Skeleton::connected_to`] evaluates).
    pub fn scaled_rects(&self) -> &[Rect] {
        &self.scaled
    }

    /// Consumes the skeleton into its scaled rectangles (never empty —
    /// every constructor returns `None` instead of an empty skeleton,
    /// so a zero-length arena run can encode "no skeleton").
    pub fn into_scaled_rects(self) -> Vec<Rect> {
        self.scaled
    }

    /// Rebuilds a skeleton from scaled rectangles previously obtained
    /// via [`Skeleton::scaled_rects`] / [`Skeleton::into_scaled_rects`].
    /// Returns `None` for an empty run, mirroring the constructors'
    /// "no skeleton" convention.
    pub fn from_scaled_rects(scaled: Vec<Rect>) -> Option<Skeleton> {
        if scaled.is_empty() {
            None
        } else {
            Some(Skeleton { scaled })
        }
    }

    /// The skeleton rectangles, mapped back to original coordinates
    /// (deflated; possibly degenerate). Mainly for diagnostics.
    pub fn rects(&self) -> Vec<Rect> {
        self.scaled
            .iter()
            .map(|r| {
                Rect::new(
                    (r.x1 + 1).div_euclid(2),
                    (r.y1 + 1).div_euclid(2),
                    (r.x2 - 1).div_euclid(2),
                    (r.y2 - 1).div_euclid(2),
                )
            })
            .collect()
    }
}

fn scale_inflate(r: &Rect) -> Rect {
    Rect::new(2 * r.x1 - 1, 2 * r.y1 - 1, 2 * r.x2 + 1, 2 * r.y2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    const H: Coord = 10; // half of a 20-unit minimum width

    #[test]
    fn fig11_touching_skeletons_connected() {
        // Boxes overlapped end-to-end by exactly one minimum width: the
        // skeleton segments meet at a point -> connected.
        let a = Skeleton::of_rect(&Rect::new(0, 0, 100, 20), H).unwrap();
        let b = Skeleton::of_rect(&Rect::new(80, 0, 180, 20), H).unwrap();
        assert!(a.connected_to(&b));
        assert!(b.connected_to(&a));
    }

    #[test]
    fn fig15_butted_boxes_not_connected() {
        // Merely butted boxes: geometry abuts but skeletons are min-width
        // apart -> NOT legally connected. This is what forces the paper's
        // self-sufficiency usage rule (overlap symbols, don't butt them).
        let a = Skeleton::of_rect(&Rect::new(0, 0, 100, 20), H).unwrap();
        let b = Skeleton::of_rect(&Rect::new(100, 0, 200, 20), H).unwrap();
        assert!(!a.connected_to(&b));
    }

    #[test]
    fn fig11_overlapping_skeletons_connected() {
        let a = Skeleton::of_rect(&Rect::new(0, 0, 100, 20), H).unwrap();
        let b = Skeleton::of_rect(&Rect::new(50, 0, 150, 20), H).unwrap();
        assert!(a.connected_to(&b));
    }

    #[test]
    fn fig11_enclosed_skeleton_connected() {
        let big = Skeleton::of_rect(&Rect::new(0, 0, 200, 200), H).unwrap();
        let small = Skeleton::of_rect(&Rect::new(50, 50, 150, 150), H).unwrap();
        assert!(big.connected_to(&small));
    }

    #[test]
    fn fig11_corner_overlap_only_not_connected() {
        // Boxes overlap only at an area smaller than half-min-width in each
        // direction: elements overlap, skeletons do not reach each other.
        let a = Rect::new(0, 0, 100, 20);
        let b = Rect::new(95, 15, 195, 35);
        assert!(a.overlaps(&b)); // geometry overlaps...
        let sa = Skeleton::of_rect(&a, H).unwrap();
        let sb = Skeleton::of_rect(&b, H).unwrap();
        assert!(!sa.connected_to(&sb)); // ...but not skeletally connected
    }

    #[test]
    fn fig11_abutting_sideways_not_connected() {
        // Side-by-side min-width boxes share a long edge; skeleton centre
        // lines are 20 apart -> not skeletally connected (the butted-halves
        // pathology of Fig. 15).
        let a = Skeleton::of_rect(&Rect::new(0, 0, 100, 20), H).unwrap();
        let b = Skeleton::of_rect(&Rect::new(0, 20, 100, 40), H).unwrap();
        assert!(!a.connected_to(&b));
    }

    #[test]
    fn under_width_elements_have_no_skeleton() {
        assert!(Skeleton::of_rect(&Rect::new(0, 0, 100, 19), H).is_none());
        assert!(Skeleton::of_rect(&Rect::new(0, 0, 19, 100), H).is_none());
    }

    #[test]
    fn exact_min_width_box_has_degenerate_skeleton() {
        let s = Skeleton::of_rect(&Rect::new(0, 0, 20, 20), H).unwrap();
        let back = s.rects();
        assert_eq!(back, vec![Rect::new(10, 10, 10, 10)]);
    }

    #[test]
    fn wire_skeletons_connect_through_bends() {
        let w1 = Wire::new(20, vec![Point::new(0, 0), Point::new(100, 0)]).unwrap();
        let w2 = Wire::new(20, vec![Point::new(100, 0), Point::new(100, 100)]).unwrap();
        let s1 = Skeleton::of_wire(&w1, H).unwrap();
        let s2 = Skeleton::of_wire(&w2, H).unwrap();
        assert!(s1.connected_to(&s2));
    }

    #[test]
    fn wire_to_box_connection() {
        // A wire ending inside a contact-sized box.
        let w = Wire::new(20, vec![Point::new(0, 10), Point::new(110, 10)]).unwrap();
        let b = Rect::new(100, 0, 140, 40);
        let sw = Skeleton::of_wire(&w, H).unwrap();
        let sb = Skeleton::of_rect(&b, H).unwrap();
        assert!(sw.connected_to(&sb));
    }

    #[test]
    fn region_skeleton_of_l_shape() {
        // L-shaped min-width path as a region: skeleton must stay connected
        // around the corner.
        let l = Region::from_rects([Rect::new(0, 0, 100, 20), Rect::new(80, 0, 100, 100)]);
        let s = Skeleton::of_region(&l, H).unwrap();
        // Single connected piece: every scaled rect connects transitively.
        // (Weaker check: it is non-empty and connects to itself.)
        assert!(s.connected_to(&s));
        // And it must connect to a wire whose centre line reaches into the
        // arm far enough for the skeletons to meet (y = 80 reaches the arm
        // skeleton, which ends at y = 90).
        let w = Wire::new(20, vec![Point::new(90, 80), Point::new(90, 200)]).unwrap();
        let sw = Skeleton::of_wire(&w, H).unwrap();
        assert!(s.connected_to(&sw));
        // A wire merely abutting the arm's top edge is NOT connected.
        let abut = Wire::new(20, vec![Point::new(90, 110), Point::new(90, 200)]).unwrap();
        let s_abut = Skeleton::of_wire(&abut, H).unwrap();
        assert!(!s.connected_to(&s_abut));
    }

    #[test]
    fn region_skeleton_none_for_underwidth() {
        let thin = Region::from_rect(Rect::new(0, 0, 100, 10));
        assert!(Skeleton::of_region(&thin, H).is_none());
    }

    #[test]
    fn region_and_rect_skeletons_agree() {
        // For a plain box, of_region and of_rect must give the same verdicts.
        let r = Rect::new(0, 0, 60, 20);
        let s_rect = Skeleton::of_rect(&r, H).unwrap();
        let s_region = Skeleton::of_region(&Region::from_rect(r), H).unwrap();
        let probe = Skeleton::of_rect(&Rect::new(50, 0, 160, 20), H).unwrap();
        assert_eq!(s_rect.connected_to(&probe), s_region.connected_to(&probe));
        let far = Skeleton::of_rect(&Rect::new(80, 0, 200, 20), H).unwrap();
        assert_eq!(s_rect.connected_to(&far), s_region.connected_to(&far));
    }

    #[test]
    fn diagonal_skeleton_touch_counts() {
        // Skeleton segments meeting corner-to-corner: closed sets share a
        // point -> connected.
        let a = Skeleton::of_rect(&Rect::new(0, 0, 20, 20), H).unwrap(); // point (10,10)
        let b = Skeleton::of_rect(&Rect::new(10, 10, 30, 30), H).unwrap(); // point (20,20)
        assert!(!a.connected_to(&b));
        let c = Skeleton::of_rect(&Rect::new(0, 0, 20, 20), H).unwrap();
        let d = Skeleton::of_rect(&Rect::new(-10, -10, 10, 10), H).unwrap(); // point (0,0)
        assert!(!c.connected_to(&d));
        // Same point skeletons:
        let e = Skeleton::of_rect(&Rect::new(0, 0, 20, 20), H).unwrap();
        let f = Skeleton::of_rect(&Rect::new(0, 0, 20, 20), H).unwrap();
        assert!(e.connected_to(&f));
    }
}
