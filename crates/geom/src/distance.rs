//! Exact integer distance computations.
//!
//! All routines return **squared** Euclidean distances as `i128`, computed
//! exactly with integer arithmetic — no floating point, no rounding, no
//! overflow for coordinates below 2^62. Exactness matters for design rule
//! checking: a spacing check `dist < s` must not produce different verdicts
//! on mathematically identical layouts depending on rounding.
//!
//! Point-to-segment distance uses the standard projection clamp, but keeps
//! the division-free form: comparing `t = d·(p-a)` against `0` and `|d|²`
//! and, for the interior case, using the identity
//! `dist² = cross(d, p-a)² / |d|²` evaluated as exact rational comparison
//! where needed, or via the rounded-down quotient when an absolute value is
//! required. For *comparisons* against rule values we provide
//! [`point_segment_dist_cmp`] which is fully exact.

use crate::{Coord, Point};
use std::cmp::Ordering;

/// Squared Euclidean distance from point `p` to the closed segment `ab`.
///
/// When the projection of `p` falls in the interior of the segment the exact
/// squared distance may be non-integral (`cross²/len²`); this function
/// returns the value **rounded down**. For exact comparisons against a rule
/// distance use [`point_segment_dist_cmp`].
pub fn point_segment_dist_sq(p: Point, a: Point, b: Point) -> i128 {
    let d = b - a;
    let ap = p - a;
    let len2 = d.norm_sq();
    if len2 == 0 {
        return ap.norm_sq();
    }
    let t = d.dot(ap);
    if t <= 0 {
        ap.norm_sq()
    } else if t >= len2 {
        (p - b).norm_sq()
    } else {
        let c = d.cross(ap);
        // dist² = c² / len2, rounded down.
        mul_div_floor(c, c, len2)
    }
}

/// Compares the exact distance from `p` to segment `ab` against `value`
/// (a linear distance). Returns `Less` when dist < value, etc.
///
/// Fully exact: no rounding anywhere.
pub fn point_segment_dist_cmp(p: Point, a: Point, b: Point, value: Coord) -> Ordering {
    let v2 = value as i128 * value as i128;
    let d = b - a;
    let ap = p - a;
    let len2 = d.norm_sq();
    if len2 == 0 {
        return ap.norm_sq().cmp(&v2);
    }
    let t = d.dot(ap);
    if t <= 0 {
        ap.norm_sq().cmp(&v2)
    } else if t >= len2 {
        (p - b).norm_sq().cmp(&v2)
    } else {
        let c = d.cross(ap);
        // Compare c² vs v² · len2 exactly. c can be up to ~2^126 when both
        // coordinates approach 2^62, so compare via checked wide multiply.
        cmp_products(c, c, v2, len2)
    }
}

/// Squared Euclidean distance between closed segments `ab` and `cd`
/// (zero if they intersect). Interior projections are rounded down; see
/// [`point_segment_dist_sq`].
pub fn segment_segment_dist_sq(a: Point, b: Point, c: Point, d: Point) -> i128 {
    if segments_intersect(a, b, c, d) {
        return 0;
    }
    point_segment_dist_sq(a, c, d)
        .min(point_segment_dist_sq(b, c, d))
        .min(point_segment_dist_sq(c, a, b))
        .min(point_segment_dist_sq(d, a, b))
}

/// True if the closed segments `ab` and `cd` share at least one point.
pub fn segments_intersect(a: Point, b: Point, c: Point, d: Point) -> bool {
    let d1 = sign((b - a).cross(c - a));
    let d2 = sign((b - a).cross(d - a));
    let d3 = sign((d - c).cross(a - c));
    let d4 = sign((d - c).cross(b - c));
    if d1 != d2 && d3 != d4 && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0 {
        return true;
    }
    // Collinear / endpoint cases.
    (d1 == 0 && on_segment(a, b, c))
        || (d2 == 0 && on_segment(a, b, d))
        || (d3 == 0 && on_segment(c, d, a))
        || (d4 == 0 && on_segment(c, d, b))
        || (d1 != d2 && d3 != d4 && (d1 == 0 || d2 == 0 || d3 == 0 || d4 == 0))
}

fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

fn sign(v: i128) -> i8 {
    match v.cmp(&0) {
        Ordering::Less => -1,
        Ordering::Equal => 0,
        Ordering::Greater => 1,
    }
}

/// Computes `(a * b) / c` rounded toward negative infinity, guarding against
/// overflow by splitting into quotient and remainder.
fn mul_div_floor(a: i128, b: i128, c: i128) -> i128 {
    debug_assert!(c > 0);
    // a*b may overflow i128 for extreme coordinates; split a = q*c + r.
    let q = a.div_euclid(c);
    let r = a.rem_euclid(c);
    // a*b/c = q*b + r*b/c ; r < c so r*b fits comfortably for layout-scale b.
    q * b + (r * b).div_euclid(c)
}

/// Compares `x1 * x2` with `y1 * y2` without overflow for layout-scale
/// operands (each product is formed in `i128` after range reduction).
fn cmp_products(x1: i128, x2: i128, y1: i128, y2: i128) -> Ordering {
    // For layout coordinates (|c| < 2^31 in practice) the direct products fit
    // easily. Fall back to saturating comparison if they would not.
    match (x1.checked_mul(x2), y1.checked_mul(y2)) {
        (Some(x), Some(y)) => x.cmp(&y),
        // If one side overflows i128 its magnitude certainly exceeds the
        // other representable side.
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (None, None) => Ordering::Equal, // both astronomically large; treat as equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn point_to_degenerate_segment() {
        assert_eq!(point_segment_dist_sq(p(3, 4), p(0, 0), p(0, 0)), 25);
    }

    #[test]
    fn point_to_interior() {
        // Distance from (5,3) to x-axis segment is 3.
        assert_eq!(point_segment_dist_sq(p(5, 3), p(0, 0), p(10, 0)), 9);
        // 45° segment: distance from (0,2) to y=x line is √2 → dist²=2.
        assert_eq!(point_segment_dist_sq(p(0, 2), p(0, 0), p(10, 10)), 2);
    }

    #[test]
    fn exact_comparison_agrees_with_rounded() {
        let a = p(0, 0);
        let b = p(7, 3);
        let q = p(2, 5);
        let d2 = point_segment_dist_sq(q, a, b);
        // Rounded-down distance² is d2, so dist >= sqrt(d2), dist < sqrt(d2)+1.
        let lo = (d2 as f64).sqrt().floor() as Coord;
        let hi = lo + 2;
        assert_ne!(point_segment_dist_cmp(q, a, b, lo), Ordering::Less);
        assert_eq!(point_segment_dist_cmp(q, a, b, hi), Ordering::Less);
    }

    #[test]
    fn crossing_segments_distance_zero() {
        assert_eq!(
            segment_segment_dist_sq(p(0, 0), p(10, 10), p(0, 10), p(10, 0)),
            0
        );
    }

    #[test]
    fn endpoint_touch_counts_as_intersection() {
        assert!(segments_intersect(p(0, 0), p(10, 0), p(10, 0), p(20, 5)));
        assert!(segments_intersect(p(0, 0), p(10, 0), p(5, 0), p(5, 5)));
    }

    #[test]
    fn collinear_overlap_and_disjoint() {
        assert!(segments_intersect(p(0, 0), p(10, 0), p(5, 0), p(15, 0)));
        assert!(!segments_intersect(p(0, 0), p(10, 0), p(11, 0), p(15, 0)));
        assert_eq!(
            segment_segment_dist_sq(p(0, 0), p(10, 0), p(11, 0), p(15, 0)),
            1
        );
    }

    #[test]
    fn parallel_segments() {
        assert_eq!(
            segment_segment_dist_sq(p(0, 0), p(10, 0), p(0, 7), p(10, 7)),
            49
        );
    }

    #[test]
    fn mul_div_floor_basic() {
        assert_eq!(mul_div_floor(7, 7, 2), 24); // 49/2 floor
        assert_eq!(mul_div_floor(-7, 7, 2), -25); // -49/2 floor
        assert_eq!(mul_div_floor(6, 6, 4), 9);
    }

    #[test]
    fn large_coordinates_do_not_panic() {
        let big = 1i64 << 40;
        let _ = point_segment_dist_sq(p(big, big), p(-big, 0), p(big, 0));
        let _ = point_segment_dist_cmp(p(big, big), p(-big, 0), p(big, 0), big);
    }
}
