//! Simple polygons: validity, area, orientation, containment, decomposition.

use crate::{Coord, GeomError, Point, Rect, Segment};

/// A simple polygon given by its vertex ring (implicitly closed).
///
/// Construction via [`Polygon::new`] normalises the ring to counter-clockwise
/// winding and removes repeated/collinear vertices, so every edge's interior
/// lies to its left — the convention required by the width- and
/// spacing-checking algorithms.
///
/// # Example
///
/// ```
/// use diic_geom::{Point, Polygon};
/// let square = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(10, 0),
///     Point::new(10, 10),
///     Point::new(0, 10),
/// ]).unwrap();
/// assert_eq!(square.area2(), 200); // twice the signed area
/// assert!(square.is_rectilinear());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    points: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon, normalising winding to counter-clockwise and
    /// dropping duplicate and collinear vertices.
    ///
    /// # Errors
    ///
    /// [`GeomError::TooFewVertices`] if fewer than three distinct vertices
    /// remain; [`GeomError::DegeneratePolygon`] if the ring has zero area.
    pub fn new(points: Vec<Point>) -> Result<Self, GeomError> {
        let cleaned = clean_ring(points);
        if cleaned.len() < 3 {
            return Err(GeomError::TooFewVertices(cleaned.len()));
        }
        let mut poly = Polygon { points: cleaned };
        let a2 = poly.signed_area2();
        if a2 == 0 {
            return Err(GeomError::DegeneratePolygon);
        }
        if a2 < 0 {
            poly.points.reverse();
        }
        Ok(poly)
    }

    /// Creates a polygon without cleaning or validation. The caller must
    /// guarantee a simple, counter-clockwise ring. Used internally by
    /// transforms (which may reverse winding — callers re-normalise).
    pub fn new_unchecked(points: Vec<Point>) -> Self {
        let mut poly = Polygon { points };
        if poly.signed_area2() < 0 {
            poly.points.reverse();
        }
        poly
    }

    /// Creates the polygon of a rectangle.
    pub fn from_rect(r: &Rect) -> Self {
        Polygon {
            points: r.corners().to_vec(),
        }
    }

    /// The vertex ring (counter-clockwise).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the polygon has no vertices (never true for validated
    /// polygons).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterator over the directed edges, interior to the left.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.points.len();
        (0..n).map(move |i| Segment::new(self.points[i], self.points[(i + 1) % n]))
    }

    /// Twice the signed area (positive: counter-clockwise).
    pub fn signed_area2(&self) -> i128 {
        let n = self.points.len();
        if n < 3 {
            return 0;
        }
        let mut sum: i128 = 0;
        for i in 0..n {
            let p = self.points[i];
            let q = self.points[(i + 1) % n];
            sum += p.x as i128 * q.y as i128 - q.x as i128 * p.y as i128;
        }
        sum
    }

    /// Twice the absolute area.
    pub fn area2(&self) -> i128 {
        self.signed_area2().abs()
    }

    /// Axis-aligned bounding rectangle.
    ///
    /// # Panics
    ///
    /// Panics if the polygon has no vertices.
    pub fn bbox(&self) -> Rect {
        let first = self.points[0];
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in &self.points[1..] {
            r.x1 = r.x1.min(p.x);
            r.y1 = r.y1.min(p.y);
            r.x2 = r.x2.max(p.x);
            r.y2 = r.y2.max(p.y);
        }
        r
    }

    /// True if every edge is horizontal or vertical.
    pub fn is_rectilinear(&self) -> bool {
        self.edges().all(|e| e.is_axis_parallel())
    }

    /// True if every edge is horizontal, vertical, or at 45°.
    pub fn is_45(&self) -> bool {
        self.edges().all(|e| {
            let d = e.dir();
            d.x == 0 || d.y == 0 || d.x.abs() == d.y.abs()
        })
    }

    /// Point-in-polygon test (boundary counts as inside), by ray crossing.
    pub fn contains_point(&self, p: Point) -> bool {
        // Boundary check first.
        for e in self.edges() {
            if e.contains_point(p) {
                return true;
            }
        }
        let mut inside = false;
        let n = self.points.len();
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            // Ray to +x; half-open rule on y avoids double counting vertices.
            if (a.y > p.y) != (b.y > p.y) {
                // x coordinate of edge at height p.y, compared exactly:
                // p.x < a.x + (p.y-a.y)*(b.x-a.x)/(b.y-a.y)
                let lhs = (p.x - a.x) as i128 * (b.y - a.y) as i128;
                let rhs = (p.y - a.y) as i128 * (b.x - a.x) as i128;
                let crossed = if b.y > a.y { lhs < rhs } else { lhs > rhs };
                if crossed {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// True if the ring is simple (no two non-adjacent edges intersect and
    /// adjacent edges meet only at their shared vertex).
    pub fn is_simple(&self) -> bool {
        let edges: Vec<Segment> = self.edges().collect();
        let n = edges.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    // Adjacent edges share exactly one endpoint; any further
                    // contact means a degenerate spike.
                    let shared = if j == i + 1 { edges[i].b } else { edges[i].a };
                    let e1 = edges[i];
                    let e2 = edges[j];
                    // Check the non-shared endpoints do not lie on the other edge.
                    let other1 = if e1.a == shared { e1.b } else { e1.a };
                    let other2 = if e2.a == shared { e2.b } else { e2.a };
                    if e2.contains_point(other1) || e1.contains_point(other2) {
                        return false;
                    }
                } else if edges[i].intersects(&edges[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Decomposes a **rectilinear** polygon into disjoint rectangles by
    /// horizontal slab cutting.
    ///
    /// # Errors
    ///
    /// [`GeomError::NotRectilinear`] if any edge is not axis-parallel.
    pub fn to_rects(&self) -> Result<Vec<Rect>, GeomError> {
        if !self.is_rectilinear() {
            return Err(GeomError::NotRectilinear);
        }
        // Collect vertical edges; sweep horizontal slabs between distinct y
        // coordinates; inside-ness along x toggles at vertical edges crossing
        // the slab.
        let mut ys: Vec<Coord> = self.points.iter().map(|p| p.y).collect();
        ys.sort_unstable();
        ys.dedup();
        let mut vedges: Vec<(Coord, Coord, Coord)> = Vec::new(); // (x, ylo, yhi)
        for e in self.edges() {
            if e.a.x == e.b.x && e.a.y != e.b.y {
                vedges.push((e.a.x, e.a.y.min(e.b.y), e.a.y.max(e.b.y)));
            }
        }
        vedges.sort_unstable();
        let mut rects = Vec::new();
        for w in ys.windows(2) {
            let (ylo, yhi) = (w[0], w[1]);
            // Vertical edges spanning this slab, in x order.
            let xs: Vec<Coord> = vedges
                .iter()
                .filter(|&&(_, e_lo, e_hi)| e_lo <= ylo && yhi <= e_hi)
                .map(|&(x, _, _)| x)
                .collect();
            // Inside between alternating pairs.
            for pair in xs.chunks(2) {
                if let [x1, x2] = pair {
                    rects.push(Rect::new(*x1, ylo, *x2, yhi));
                }
            }
        }
        Ok(rects)
    }
}

/// Removes consecutive duplicate points and collinear intermediate vertices.
fn clean_ring(points: Vec<Point>) -> Vec<Point> {
    // Drop consecutive duplicates (including wraparound).
    let mut pts: Vec<Point> = Vec::with_capacity(points.len());
    for p in points {
        if pts.last() != Some(&p) {
            pts.push(p);
        }
    }
    while pts.len() > 1 && pts.first() == pts.last() {
        pts.pop();
    }
    // Drop collinear vertices, repeating until stable (removing one vertex
    // can make its neighbours collinear).
    loop {
        let n = pts.len();
        if n < 3 {
            return pts;
        }
        let mut out: Vec<Point> = Vec::with_capacity(n);
        for i in 0..n {
            let prev = pts[(i + n - 1) % n];
            let cur = pts[i];
            let next = pts[(i + 1) % n];
            if (cur - prev).cross(next - cur) != 0 {
                out.push(cur);
            }
        }
        if out.len() == n {
            return pts;
        }
        pts = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    fn square() -> Polygon {
        Polygon::new(vec![p(0, 0), p(10, 0), p(10, 10), p(0, 10)]).unwrap()
    }

    fn ell() -> Polygon {
        // L-shape: 20 wide arms, outer 60x60.
        Polygon::new(vec![
            p(0, 0),
            p(60, 0),
            p(60, 20),
            p(20, 20),
            p(20, 60),
            p(0, 60),
        ])
        .unwrap()
    }

    #[test]
    fn construction_normalises_winding() {
        let cw = Polygon::new(vec![p(0, 10), p(10, 10), p(10, 0), p(0, 0)]).unwrap();
        assert!(cw.signed_area2() > 0);
        assert_eq!(cw.area2(), 200);
    }

    #[test]
    fn construction_rejects_degenerate() {
        assert!(matches!(
            Polygon::new(vec![p(0, 0), p(1, 1)]),
            Err(GeomError::TooFewVertices(_))
        ));
        assert!(matches!(
            Polygon::new(vec![p(0, 0), p(5, 0), p(10, 0)]),
            Err(GeomError::DegeneratePolygon) | Err(GeomError::TooFewVertices(_))
        ));
    }

    #[test]
    fn collinear_vertices_removed() {
        let poly = Polygon::new(vec![p(0, 0), p(5, 0), p(10, 0), p(10, 10), p(0, 10)]).unwrap();
        assert_eq!(poly.len(), 4);
    }

    #[test]
    fn duplicate_vertices_removed() {
        let poly = Polygon::new(vec![
            p(0, 0),
            p(0, 0),
            p(10, 0),
            p(10, 10),
            p(10, 10),
            p(0, 10),
            p(0, 0),
        ])
        .unwrap();
        assert_eq!(poly.len(), 4);
    }

    #[test]
    fn bbox_and_rectilinear() {
        let l = ell();
        assert_eq!(l.bbox(), Rect::new(0, 0, 60, 60));
        assert!(l.is_rectilinear());
        assert!(l.is_45());
        let tri = Polygon::new(vec![p(0, 0), p(10, 0), p(0, 10)]).unwrap();
        assert!(!tri.is_rectilinear());
        assert!(tri.is_45());
        let odd = Polygon::new(vec![p(0, 0), p(10, 3), p(0, 10)]).unwrap();
        assert!(!odd.is_45());
    }

    #[test]
    fn contains_point_square() {
        let s = square();
        assert!(s.contains_point(p(5, 5)));
        assert!(s.contains_point(p(0, 0))); // corner on boundary
        assert!(s.contains_point(p(10, 5))); // edge on boundary
        assert!(!s.contains_point(p(11, 5)));
        assert!(!s.contains_point(p(-1, -1)));
    }

    #[test]
    fn contains_point_concave() {
        let l = ell();
        assert!(l.contains_point(p(10, 40))); // in vertical arm
        assert!(l.contains_point(p(40, 10))); // in horizontal arm
        assert!(!l.contains_point(p(40, 40))); // in the notch
    }

    #[test]
    fn simplicity() {
        assert!(square().is_simple());
        assert!(ell().is_simple());
        // Bow-tie: self-intersecting (zero net signed area, so it can only
        // be built unchecked — `new` rejects it as degenerate).
        let bow = Polygon::new_unchecked(vec![p(0, 0), p(10, 10), p(10, 0), p(0, 10)]);
        assert!(!bow.is_simple());
        // An asymmetric self-intersecting ring passes `new` (non-zero net
        // area) but must still fail `is_simple`.
        let skew = Polygon::new(vec![p(0, 0), p(20, 20), p(20, 0), p(0, 10)]).unwrap();
        assert!(!skew.is_simple());
    }

    #[test]
    fn rect_decomposition_of_square() {
        let rects = square().to_rects().unwrap();
        assert_eq!(rects, vec![Rect::new(0, 0, 10, 10)]);
    }

    #[test]
    fn rect_decomposition_of_ell() {
        let rects = ell().to_rects().unwrap();
        let total: i128 = rects.iter().map(Rect::area).sum();
        assert_eq!(total * 2, ell().area2());
        // Disjoint interiors:
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn rect_decomposition_rejects_triangle() {
        let tri = Polygon::new(vec![p(0, 0), p(10, 0), p(0, 10)]).unwrap();
        assert!(matches!(tri.to_rects(), Err(GeomError::NotRectilinear)));
    }

    #[test]
    fn edges_interior_left() {
        // CCW square: walking the edges, interior (5,5) is on the left.
        for e in square().edges() {
            assert!(e.side_of(p(5, 5)) > 0, "interior not left of {e}");
        }
    }
}
