//! Manhattan transforms: the eight axis orientations plus translation.
//!
//! CIF calls compose translations (`T`), mirrors (`MX`, `MY`) and rotations
//! (`R` with a direction vector). The DIIC design style is Manhattan, so
//! rotations are restricted to the four axis directions; together with the
//! mirrors this yields the eight-element dihedral group `D4` represented by
//! [`Orientation`].

use crate::{Coord, Point, Polygon, Rect, Vector};
use std::fmt;

/// One of the eight Manhattan orientations (the dihedral group of the
/// square). `R0` is the identity; `Rn` rotates counter-clockwise by `n`
/// degrees; the `M*` variants mirror first (about the y-axis, i.e. negate x)
/// and then rotate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Identity.
    #[default]
    R0,
    /// Rotate 90° counter-clockwise.
    R90,
    /// Rotate 180°.
    R180,
    /// Rotate 270° counter-clockwise.
    R270,
    /// Mirror x (negate x), no rotation — CIF `MX`.
    MR0,
    /// Mirror x then rotate 90°.
    MR90,
    /// Mirror x then rotate 180° (equals CIF `MY`).
    MR180,
    /// Mirror x then rotate 270°.
    MR270,
}

impl Orientation {
    /// All eight orientations, in enum order.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MR0,
        Orientation::MR90,
        Orientation::MR180,
        Orientation::MR270,
    ];

    /// True if this orientation includes a mirror (reverses polygon
    /// winding direction).
    pub fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orientation::MR0 | Orientation::MR90 | Orientation::MR180 | Orientation::MR270
        )
    }

    /// Applies the orientation to a vector.
    pub fn apply_vector(self, v: Vector) -> Vector {
        let (x, y) = if self.is_mirrored() {
            (-v.x, v.y)
        } else {
            (v.x, v.y)
        };
        match self {
            Orientation::R0 | Orientation::MR0 => Vector::new(x, y),
            Orientation::R90 | Orientation::MR90 => Vector::new(-y, x),
            Orientation::R180 | Orientation::MR180 => Vector::new(-x, -y),
            Orientation::R270 | Orientation::MR270 => Vector::new(y, -x),
        }
    }

    /// Composition: applies `self` *after* `first`.
    pub fn after(self, first: Orientation) -> Orientation {
        // Compose by tracking the images of the two basis vectors.
        let e1 = self.apply_vector(first.apply_vector(Vector::new(1, 0)));
        let e2 = self.apply_vector(first.apply_vector(Vector::new(0, 1)));
        Orientation::from_basis(e1, e2).expect("composition of orientations is an orientation")
    }

    /// Inverse orientation.
    pub fn inverse(self) -> Orientation {
        for o in Orientation::ALL {
            if o.after(self) == Orientation::R0 {
                return o;
            }
        }
        unreachable!("every orientation has an inverse")
    }

    fn from_basis(e1: Vector, e2: Vector) -> Option<Orientation> {
        Orientation::ALL.into_iter().find(|o| {
            o.apply_vector(Vector::new(1, 0)) == e1 && o.apply_vector(Vector::new(0, 1)) == e2
        })
    }

    /// Maps a CIF `R a b` rotation direction to an orientation, if the
    /// direction is one of the four axis directions.
    pub fn from_cif_direction(a: Coord, b: Coord) -> Option<Orientation> {
        match (a.signum(), b.signum()) {
            (1, 0) => Some(Orientation::R0),
            (0, 1) => Some(Orientation::R90),
            (-1, 0) => Some(Orientation::R180),
            (0, -1) => Some(Orientation::R270),
            _ => None,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MR0 => "MR0",
            Orientation::MR90 => "MR90",
            Orientation::MR180 => "MR180",
            Orientation::MR270 => "MR270",
        };
        f.write_str(s)
    }
}

/// An orientation followed by a translation: `p ↦ orient(p) + offset`.
///
/// # Example
///
/// ```
/// use diic_geom::{Orientation, Point, Transform, Vector};
/// let t = Transform::new(Orientation::R90, Vector::new(100, 0));
/// assert_eq!(t.apply_point(Point::new(10, 0)), Point::new(100, 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    /// The linear part.
    pub orient: Orientation,
    /// The translation applied after the linear part.
    pub offset: Vector,
}

impl Transform {
    /// Creates a transform from its parts.
    pub const fn new(orient: Orientation, offset: Vector) -> Self {
        Transform { orient, offset }
    }

    /// The identity transform.
    pub const IDENTITY: Transform = Transform::new(Orientation::R0, Vector::ZERO);

    /// A pure translation.
    pub const fn translate(offset: Vector) -> Self {
        Transform::new(Orientation::R0, offset)
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        *self == Transform::IDENTITY
    }

    /// Applies the transform to a point.
    pub fn apply_point(&self, p: Point) -> Point {
        Point::ORIGIN + self.orient.apply_vector(Vector::new(p.x, p.y)) + self.offset
    }

    /// Applies the transform to a vector (translation does not apply).
    pub fn apply_vector(&self, v: Vector) -> Vector {
        self.orient.apply_vector(v)
    }

    /// Applies the transform to a rectangle (always yields a rectangle,
    /// since orientations are Manhattan).
    pub fn apply_rect(&self, r: &Rect) -> Rect {
        Rect::from_points(
            self.apply_point(r.lower_left()),
            self.apply_point(r.upper_right()),
        )
    }

    /// Applies the transform to every vertex of a polygon.
    pub fn apply_polygon(&self, poly: &Polygon) -> Polygon {
        Polygon::new_unchecked(poly.points().iter().map(|&p| self.apply_point(p)).collect())
    }

    /// Composition: the transform that applies `first`, then `self`.
    pub fn after(&self, first: &Transform) -> Transform {
        Transform {
            orient: self.orient.after(first.orient),
            offset: self.orient.apply_vector(first.offset) + self.offset,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Transform {
        let inv = self.orient.inverse();
        Transform {
            orient: inv,
            offset: -inv.apply_vector(self.offset),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}", self.orient, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_group_closure_and_inverse() {
        for a in Orientation::ALL {
            assert_eq!(a.after(Orientation::R0), a);
            assert_eq!(Orientation::R0.after(a), a);
            let inv = a.inverse();
            assert_eq!(inv.after(a), Orientation::R0);
            assert_eq!(a.after(inv), Orientation::R0);
            for b in Orientation::ALL {
                // Closure: composition must be one of the eight.
                let _ = a.after(b);
            }
        }
    }

    #[test]
    fn rotation_of_unit_vectors() {
        let e = Vector::new(1, 0);
        assert_eq!(Orientation::R90.apply_vector(e), Vector::new(0, 1));
        assert_eq!(Orientation::R180.apply_vector(e), Vector::new(-1, 0));
        assert_eq!(Orientation::R270.apply_vector(e), Vector::new(0, -1));
        assert_eq!(Orientation::MR0.apply_vector(e), Vector::new(-1, 0));
    }

    #[test]
    fn mirror_reverses_winding() {
        for o in Orientation::ALL {
            let e1 = o.apply_vector(Vector::new(1, 0));
            let e2 = o.apply_vector(Vector::new(0, 1));
            let det = e1.cross(e2);
            if o.is_mirrored() {
                assert_eq!(det, -1);
            } else {
                assert_eq!(det, 1);
            }
        }
    }

    #[test]
    fn transform_point_and_rect() {
        let t = Transform::new(Orientation::R90, Vector::new(5, 7));
        let p = Point::new(2, 3);
        assert_eq!(t.apply_point(p), Point::new(5 - 3, 7 + 2));
        let r = Rect::new(0, 0, 4, 2);
        let tr = t.apply_rect(&r);
        assert_eq!(tr, Rect::new(3, 7, 5, 11));
    }

    #[test]
    fn transform_composition_matches_sequential_application() {
        let t1 = Transform::new(Orientation::R90, Vector::new(10, 0));
        let t2 = Transform::new(Orientation::MR0, Vector::new(0, 5));
        let comp = t2.after(&t1);
        for p in [Point::new(0, 0), Point::new(3, 4), Point::new(-7, 2)] {
            assert_eq!(comp.apply_point(p), t2.apply_point(t1.apply_point(p)));
        }
    }

    #[test]
    fn transform_inverse_roundtrip() {
        for o in Orientation::ALL {
            let t = Transform::new(o, Vector::new(13, -4));
            let inv = t.inverse();
            for p in [Point::new(0, 0), Point::new(5, 9), Point::new(-2, 11)] {
                assert_eq!(inv.apply_point(t.apply_point(p)), p);
                assert_eq!(t.apply_point(inv.apply_point(p)), p);
            }
        }
    }

    #[test]
    fn cif_direction_mapping() {
        assert_eq!(Orientation::from_cif_direction(1, 0), Some(Orientation::R0));
        assert_eq!(
            Orientation::from_cif_direction(0, 30),
            Some(Orientation::R90)
        );
        assert_eq!(
            Orientation::from_cif_direction(-5, 0),
            Some(Orientation::R180)
        );
        assert_eq!(
            Orientation::from_cif_direction(0, -1),
            Some(Orientation::R270)
        );
        assert_eq!(Orientation::from_cif_direction(1, 1), None);
        assert_eq!(Orientation::from_cif_direction(0, 0), None);
    }
}
