//! Line segments (polygon edges) and their geometric predicates.

use crate::distance::{point_segment_dist_sq, segment_segment_dist_sq};
use crate::{Point, Rect, Vector};
use std::fmt;

/// A directed line segment between two points.
///
/// Polygon edges are directed so that (for a counter-clockwise outer
/// boundary) the polygon interior lies to the **left** of the edge; this is
/// what width- and spacing-checking algorithms use to decide whether two
/// edges *face* each other across interior or across exterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Direction vector `b - a`.
    pub fn dir(&self) -> Vector {
        self.b - self.a
    }

    /// Squared length in `i128`.
    pub fn len_sq(&self) -> i128 {
        self.dir().norm_sq()
    }

    /// True if the segment is horizontal or vertical.
    pub fn is_axis_parallel(&self) -> bool {
        self.dir().is_axis_parallel()
    }

    /// True if the segment has zero length.
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// The segment with direction reversed.
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Axis-aligned bounding rectangle.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.a, self.b)
    }

    /// Midpoint (coordinates rounded toward negative infinity).
    pub fn midpoint(&self) -> Point {
        Point::new(
            self.a.x + (self.b.x - self.a.x) / 2,
            self.a.y + (self.b.y - self.a.y) / 2,
        )
    }

    /// Twice the signed area of triangle `(a, b, p)`.
    ///
    /// Positive when `p` is strictly to the left of the directed segment.
    pub fn side_of(&self, p: Point) -> i128 {
        self.dir().cross(p - self.a)
    }

    /// True if `p` lies on the closed segment.
    pub fn contains_point(&self, p: Point) -> bool {
        if self.side_of(p) != 0 {
            return false;
        }
        self.bbox().contains_point(p)
    }

    /// Squared Euclidean distance from `p` to the closed segment.
    pub fn dist_sq_point(&self, p: Point) -> i128 {
        point_segment_dist_sq(p, self.a, self.b)
    }

    /// Squared Euclidean distance between two closed segments
    /// (zero if they intersect).
    pub fn dist_sq(&self, other: &Segment) -> i128 {
        segment_segment_dist_sq(self.a, self.b, other.a, other.b)
    }

    /// True if the two closed segments share at least one point.
    pub fn intersects(&self, other: &Segment) -> bool {
        self.dist_sq(other) == 0
    }

    /// True if the segments are parallel (or either is degenerate).
    pub fn is_parallel_to(&self, other: &Segment) -> bool {
        self.dir().cross(other.dir()) == 0
    }

    /// True if the segments point in opposite directions
    /// (anti-parallel, both non-degenerate).
    pub fn is_antiparallel_to(&self, other: &Segment) -> bool {
        !self.is_degenerate()
            && !other.is_degenerate()
            && self.is_parallel_to(other)
            && self.dir().dot(other.dir()) < 0
    }

    /// Length of the overlap of the two segments' projections onto `self`'s
    /// direction, scaled by `self`'s length (i.e. `overlap · |self|`).
    ///
    /// Positive iff the projections properly overlap. Used by width/spacing
    /// checks: two anti-parallel edges only constrain each other where their
    /// projections overlap.
    pub fn projection_overlap(&self, other: &Segment) -> i128 {
        let d = self.dir();
        let t0 = 0i128;
        let t1 = d.norm_sq();
        let ta = d.dot(other.a - self.a);
        let tb = d.dot(other.b - self.a);
        let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
        let start = lo.max(t0);
        let end = hi.min(t1);
        end - start
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;

    fn seg(ax: Coord, ay: Coord, bx: Coord, by: Coord) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn side_of_convention() {
        let s = seg(0, 0, 10, 0);
        assert!(s.side_of(Point::new(5, 3)) > 0); // left = above for eastward
        assert!(s.side_of(Point::new(5, -3)) < 0);
        assert_eq!(s.side_of(Point::new(5, 0)), 0);
    }

    #[test]
    fn contains_point_on_segment() {
        let s = seg(0, 0, 10, 10);
        assert!(s.contains_point(Point::new(5, 5)));
        assert!(s.contains_point(Point::new(0, 0)));
        assert!(!s.contains_point(Point::new(11, 11)));
        assert!(!s.contains_point(Point::new(5, 6)));
    }

    #[test]
    fn point_distance() {
        let s = seg(0, 0, 10, 0);
        assert_eq!(s.dist_sq_point(Point::new(5, 3)), 9);
        assert_eq!(s.dist_sq_point(Point::new(-3, 4)), 25); // to endpoint a
        assert_eq!(s.dist_sq_point(Point::new(13, 4)), 25); // to endpoint b
        assert_eq!(s.dist_sq_point(Point::new(7, 0)), 0);
    }

    #[test]
    fn segment_distance_and_intersection() {
        let s1 = seg(0, 0, 10, 0);
        let s2 = seg(0, 5, 10, 5);
        assert_eq!(s1.dist_sq(&s2), 25);
        assert!(!s1.intersects(&s2));
        let crossing = seg(5, -5, 5, 5);
        assert!(s1.intersects(&crossing));
        let touching = seg(10, 0, 20, 0);
        assert!(s1.intersects(&touching));
        // Collinear but disjoint:
        let apart = seg(11, 0, 20, 0);
        assert!(!s1.intersects(&apart));
        assert_eq!(s1.dist_sq(&apart), 1);
    }

    #[test]
    fn antiparallel_detection() {
        let east = seg(0, 0, 10, 0);
        let west = seg(10, 5, 0, 5);
        let north = seg(0, 0, 0, 10);
        assert!(east.is_antiparallel_to(&west));
        assert!(!east.is_antiparallel_to(&east));
        assert!(!east.is_antiparallel_to(&north));
    }

    #[test]
    fn projection_overlap_cases() {
        let base = seg(0, 0, 10, 0);
        // Fully overlapping projection, |base| = 10 → overlap·len = 10·10.
        let above = seg(10, 5, 0, 5);
        assert_eq!(base.projection_overlap(&above), 100);
        // Half overlap.
        let half = seg(15, 5, 5, 5);
        assert_eq!(base.projection_overlap(&half), 50);
        // Touching projections → zero.
        let touch = seg(20, 5, 10, 5);
        assert_eq!(base.projection_overlap(&touch), 0);
        // Disjoint projections → negative.
        let apart = seg(30, 5, 20, 5);
        assert!(base.projection_overlap(&apart) < 0);
    }

    #[test]
    fn diagonal_segments() {
        let d1 = seg(0, 0, 10, 10);
        let d2 = seg(0, 4, 10, 14);
        assert!(d1.is_parallel_to(&d2));
        // Distance between parallel 45° lines offset by 4 vertically: 4/√2 → dist² = 8.
        assert_eq!(d1.dist_sq(&d2), 8);
    }
}
