//! Minimum-spacing checking.
//!
//! The DIIC pipeline checks spacing as an exact distance predicate between
//! elements (L2 — the physical intent — or L∞). The traditional technique,
//! *expand-check-overlap* (expand both shapes by half the rule and test for
//! overlap), is provided as the baseline: with orthogonal expansion it is
//! equivalent to an L∞ predicate, which over-flags diagonally adjacent
//! corners at true (Euclidean) distance up to `s·√2` — one of the Fig. 4
//! pathologies.

use crate::size::SizingMode;
use crate::width::isqrt;
use crate::{Coord, GridIndex, Polygon, Rect, Region};

/// A minimum-spacing violation marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpacingViolation {
    /// Bounding box of the two offending features' gap neighbourhood.
    pub location: Rect,
    /// Measured distance (rounded down for non-integral Euclidean values).
    pub measured: Coord,
    /// The required minimum spacing.
    pub required: Coord,
}

impl std::fmt::Display for SpacingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spacing {} < required {} at {}",
            self.measured, self.required, self.location
        )
    }
}

/// Exact spacing check between two rectangles.
///
/// Touching or overlapping rectangles are **not** spacing violations — they
/// are either connections (same layer, same net) or handled by connection /
/// short checks; spacing applies to disjoint features.
pub fn check_rect_spacing(
    a: &Rect,
    b: &Rect,
    min_spacing: Coord,
    mode: SizingMode,
) -> Option<SpacingViolation> {
    if a.touches(b) {
        return None;
    }
    let (measured, violated) = match mode {
        SizingMode::Euclidean => {
            let d2 = a.dist_sq(b);
            let s2 = min_spacing as i128 * min_spacing as i128;
            (isqrt(d2), d2 < s2)
        }
        SizingMode::Orthogonal => {
            let d = a.dist_linf(b);
            (d, d < min_spacing)
        }
    };
    if violated {
        Some(SpacingViolation {
            location: gap_box(a, b),
            measured,
            required: min_spacing,
        })
    } else {
        None
    }
}

/// Spacing check between two regions (rect sets), using a grid index to
/// avoid the quadratic pair scan. Returns one violation per offending rect
/// pair.
pub fn check_region_spacing(
    a: &Region,
    b: &Region,
    min_spacing: Coord,
    mode: SizingMode,
) -> Vec<SpacingViolation> {
    let mut out = Vec::new();
    if a.is_empty() || b.is_empty() {
        return out;
    }
    let mut index = GridIndex::new(min_spacing.max(1) * 4);
    for (i, r) in b.rects().iter().enumerate() {
        index.insert(*r, i);
    }
    for ra in a.rects() {
        let query = ra
            .inflate(min_spacing)
            .expect("inflating by positive amount cannot fail");
        for &&ib in index.query(&query).iter() {
            let rb = b.rects()[ib];
            if let Some(v) = check_rect_spacing(ra, &rb, min_spacing, mode) {
                out.push(v);
            }
        }
    }
    out
}

/// Exact polygon-to-polygon spacing via edge-pair distances.
pub fn check_polygon_spacing(
    a: &Polygon,
    b: &Polygon,
    min_spacing: Coord,
    mode: SizingMode,
) -> Option<SpacingViolation> {
    let s2 = min_spacing as i128 * min_spacing as i128;
    let mut best: Option<i128> = None;
    let mut loc = None;
    for ea in a.edges() {
        for eb in b.edges() {
            let d2 = match mode {
                SizingMode::Euclidean => ea.dist_sq(&eb),
                SizingMode::Orthogonal => {
                    // L∞ distance between segments: approximate via the
                    // bounding boxes' L∞ gap, exact for axis-parallel edges.
                    let d = ea.bbox().dist_linf(&eb.bbox());
                    d as i128 * d as i128
                }
            };
            if best.is_none_or(|bst| d2 < bst) {
                best = Some(d2);
                loc = Some(ea.bbox().bounding_union(&eb.bbox()));
            }
        }
    }
    let d2 = best?;
    if d2 > 0 && d2 < s2 {
        Some(SpacingViolation {
            location: loc.expect("location recorded with best distance"),
            measured: isqrt(d2),
            required: min_spacing,
        })
    } else {
        None
    }
}

/// The *expand-check-overlap* baseline: expand both regions by
/// `min_spacing / 2` and report any overlap of the expansions. With
/// [`SizingMode::Orthogonal`] this equals an L∞ distance predicate; the
/// Euclidean variant equals the exact L2 predicate (for regions made of
/// rectangles).
pub fn expand_check_overlap(
    a: &Region,
    b: &Region,
    min_spacing: Coord,
    mode: SizingMode,
) -> Vec<SpacingViolation> {
    // Equivalent distance predicate — materialising the expansion and
    // Boolean-intersecting gives the same verdicts but loses the measured
    // distance, so we evaluate the predicate directly.
    check_region_spacing(a, b, min_spacing, mode)
}

/// The bounding box of the closest-approach zone between two rectangles:
/// the bounding union clipped to the gap (or to the overlap band when the
/// rectangles intersect). Every point of the marker lies within the pair's
/// L∞ gap distance of **both** rectangles — the tightness the incremental
/// checker's dirty-halo anchoring relies on (a marker can only touch a
/// halo if both offending features are within rule reach of it).
pub fn gap_box(a: &Rect, b: &Rect) -> Rect {
    let union = a.bounding_union(b);
    let x1 = a.x2.min(b.x2).min(union.x2).max(union.x1);
    let x2 = a.x1.max(b.x1).max(union.x1).min(union.x2);
    let y1 = a.y2.min(b.y2).min(union.y2).max(union.y1);
    let y2 = a.y1.max(b.y1).max(union.y1).min(union.y2);
    Rect::new(x1.min(x2), y1.min(y2), x1.max(x2), y1.max(y2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    const S: Coord = 20;

    #[test]
    fn far_apart_passes() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(40, 0, 50, 10);
        assert!(check_rect_spacing(&a, &b, S, SizingMode::Euclidean).is_none());
        assert!(check_rect_spacing(&a, &b, S, SizingMode::Orthogonal).is_none());
    }

    #[test]
    fn too_close_fails_both_modes() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(25, 0, 35, 10);
        let v = check_rect_spacing(&a, &b, S, SizingMode::Euclidean).unwrap();
        assert_eq!(v.measured, 15);
        assert!(check_rect_spacing(&a, &b, S, SizingMode::Orthogonal).is_some());
    }

    #[test]
    fn touching_is_not_a_spacing_violation() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(check_rect_spacing(&a, &b, S, SizingMode::Euclidean).is_none());
        let c = Rect::new(5, 5, 15, 15);
        assert!(check_rect_spacing(&a, &c, S, SizingMode::Euclidean).is_none());
    }

    #[test]
    fn fig4_corner_pathology_orthogonal_overflags() {
        // Diagonal corners: dx = dy = 15, true L2 distance = 15√2 ≈ 21.2 > 20
        // (legal), but L∞ = 15 < 20 — the orthogonal expand-check-overlap
        // baseline reports a false error here.
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(25, 25, 35, 35);
        assert!(check_rect_spacing(&a, &b, S, SizingMode::Euclidean).is_none());
        let false_err = check_rect_spacing(&a, &b, S, SizingMode::Orthogonal);
        assert!(false_err.is_some());
        assert_eq!(false_err.unwrap().measured, 15);
    }

    #[test]
    fn corner_distance_exact_boundary() {
        // dx=dy=s/√2 rounded: dist² = 2·14² = 392 < 400 → violation;
        // dx=dy=15: 450 >= 400 → pass.
        let a = Rect::new(0, 0, 10, 10);
        let close = Rect::new(24, 24, 30, 30);
        assert!(check_rect_spacing(&a, &close, S, SizingMode::Euclidean).is_some());
        let edge = Rect::new(25, 25, 30, 30);
        assert!(check_rect_spacing(&a, &edge, S, SizingMode::Euclidean).is_none());
    }

    #[test]
    fn region_spacing_finds_all_pairs() {
        let a = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(0, 50, 10, 60)]);
        let b = Region::from_rects([Rect::new(15, 0, 25, 10), Rect::new(15, 50, 25, 60)]);
        let v = check_region_spacing(&a, &b, S, SizingMode::Euclidean);
        assert_eq!(v.len(), 2);
        for violation in &v {
            assert_eq!(violation.measured, 5);
        }
    }

    #[test]
    fn region_spacing_empty_inputs() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        assert!(check_region_spacing(&a, &Region::empty(), S, SizingMode::Euclidean).is_empty());
        assert!(check_region_spacing(&Region::empty(), &a, S, SizingMode::Euclidean).is_empty());
    }

    #[test]
    fn polygon_spacing_diagonal_edges() {
        let a = Polygon::new(vec![Point::new(0, 0), Point::new(30, 0), Point::new(0, 30)]).unwrap();
        let b = Polygon::new(vec![
            Point::new(40, 40),
            Point::new(70, 40),
            Point::new(70, 70),
        ])
        .unwrap();
        // Hypotenuse of a faces corner of b: distance from (40,40) to line
        // x+y=30 is 50/√2 ≈ 35.4 — passes at 20, fails at 40.
        assert!(check_polygon_spacing(&a, &b, 20, SizingMode::Euclidean).is_none());
        let v = check_polygon_spacing(&a, &b, 40, SizingMode::Euclidean).unwrap();
        assert_eq!(v.measured, 35);
    }

    #[test]
    fn expand_check_overlap_matches_distance_predicate() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rect(Rect::new(25, 25, 35, 35));
        assert!(expand_check_overlap(&a, &b, S, SizingMode::Euclidean).is_empty());
        assert_eq!(
            expand_check_overlap(&a, &b, S, SizingMode::Orthogonal).len(),
            1
        );
    }
}
