//! Minimum-width checking.
//!
//! Two families of algorithms, deliberately:
//!
//! * **Element-based checks** ([`check_rect_width`], [`check_wire_width`],
//!   [`check_polygon_width`]) — what the DIIC pipeline uses. Boxes and wires
//!   are trivial; polygons use an exact edge-pair algorithm. No corner
//!   artefacts.
//! * **Shrink-expand-compare** ([`shrink_expand_compare`]) — the traditional
//!   technique the paper critiques (Fig. 4): `region − opening(region, w/2)`.
//!   With orthogonal sizing it is exact for rectilinear data; with Euclidean
//!   sizing (see [`crate::raster`]) it flags *every convex corner*, the
//!   classic false-error source.

use crate::{Coord, Point, Polygon, Rect, Region, Segment, Wire};

/// A minimum-width violation marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthViolation {
    /// Where the violation was detected.
    pub location: Rect,
    /// The measured width (for edge-pair checks, the distance between the
    /// offending edges, rounded down).
    pub measured: Coord,
    /// The required minimum width.
    pub required: Coord,
}

impl std::fmt::Display for WidthViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "width {} < required {} at {}",
            self.measured, self.required, self.location
        )
    }
}

/// Checks a box element: its smaller side must be at least `min_width`.
pub fn check_rect_width(r: &Rect, min_width: Coord) -> Option<WidthViolation> {
    if r.min_side() < min_width {
        Some(WidthViolation {
            location: *r,
            measured: r.min_side(),
            required: min_width,
        })
    } else {
        None
    }
}

/// Checks a wire element: its declared width must be at least `min_width`.
pub fn check_wire_width(w: &Wire, min_width: Coord) -> Option<WidthViolation> {
    if w.width() < min_width {
        Some(WidthViolation {
            location: w.bbox(),
            measured: w.width(),
            required: min_width,
        })
    } else {
        None
    }
}

/// Checks a polygon with the exact edge-pair algorithm.
///
/// Two non-adjacent, anti-parallel edges whose projections overlap and that
/// *face each other across the interior* must be at least `min_width` apart.
/// Additionally, pairs of reflex (concave) vertices closer than `min_width`
/// whose connecting midpoint is interior are flagged (diagonal necks).
///
/// Works for any simple polygon; exact for rectilinear and 45° data.
pub fn check_polygon_width(poly: &Polygon, min_width: Coord) -> Vec<WidthViolation> {
    let mut out = Vec::new();
    let edges: Vec<Segment> = poly.edges().collect();
    let n = edges.len();
    let w2 = min_width as i128 * min_width as i128;

    for i in 0..n {
        for j in (i + 1)..n {
            if j == i + 1 || (i == 0 && j == n - 1) {
                continue; // adjacent edges meet at a vertex; no width there
            }
            let (e1, e2) = (edges[i], edges[j]);
            if !e1.is_antiparallel_to(&e2) {
                continue;
            }
            // Facing across the interior: each edge's points weakly on the
            // left (interior) side of the other.
            let facing = e2_weakly_left_of(&e1, &e2) && e2_weakly_left_of(&e2, &e1);
            if !facing {
                continue;
            }
            if e1.projection_overlap(&e2) <= 0 {
                continue;
            }
            let d2 = e1.dist_sq(&e2);
            if d2 < w2 {
                out.push(WidthViolation {
                    location: e1.bbox().bounding_union(&e2.bbox()),
                    measured: isqrt(d2),
                    required: min_width,
                });
            }
        }
    }

    // Diagonal necks between reflex vertices. Adjacent vertices are skipped
    // (their connector is a polygon edge) and the connector's midpoint must
    // be strictly interior — a connector along the boundary (e.g. the bottom
    // of a notch) is an exterior matter, not a width violation.
    let pts = poly.points();
    let m = pts.len();
    for i in 0..m {
        if !is_reflex(pts, i) {
            continue;
        }
        for j in (i + 1)..m {
            if !is_reflex(pts, j) {
                continue;
            }
            if j == i + 1 || (i == 0 && j == m - 1) {
                continue;
            }
            let (a, b) = (pts[i], pts[j]);
            let d2 = a.dist_sq(b);
            if d2 == 0 || d2 >= w2 {
                continue;
            }
            let mid = Segment::new(a, b).midpoint();
            let on_boundary = edges.iter().any(|e| e.contains_point(mid));
            if !on_boundary && poly.contains_point(mid) {
                out.push(WidthViolation {
                    location: Rect::from_points(a, b),
                    measured: isqrt(d2),
                    required: min_width,
                });
            }
        }
    }
    out
}

fn e2_weakly_left_of(base: &Segment, other: &Segment) -> bool {
    base.side_of(other.a) >= 0 && base.side_of(other.b) >= 0
}

fn is_reflex(pts: &[Point], i: usize) -> bool {
    let n = pts.len();
    let prev = pts[(i + n - 1) % n];
    let cur = pts[i];
    let next = pts[(i + 1) % n];
    // CCW ring: interior angle > 180° iff right turn.
    (cur - prev).cross(next - cur) < 0
}

/// Integer square root (floor) of a non-negative `i128` — exact.
pub fn isqrt(v: i128) -> Coord {
    if v < 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as i128;
    while x * x > v {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= v {
        x += 1;
    }
    x as Coord
}

/// The traditional *shrink-expand-compare* width check (orthogonal sizing):
/// returns the sub-width area `region − opening(region, w/2)` as violation
/// markers. Exact for rectilinear regions at any parity: computed in a
/// doubled coordinate grid with a shrink of `w − 1`, so a feature of width
/// exactly `min_width` survives while `min_width − 1` does not. For the
/// Euclidean variant (which also flags corners — the Fig. 4 pathology) see
/// [`crate::raster::euclidean_shrink_expand_compare`].
pub fn shrink_expand_compare(region: &Region, min_width: Coord) -> Vec<WidthViolation> {
    if min_width <= 1 {
        return Vec::new();
    }
    let doubled = Region::from_rects(
        region
            .rects()
            .iter()
            .map(|r| crate::Rect::new(2 * r.x1, 2 * r.y1, 2 * r.x2, 2 * r.y2)),
    );
    let opened =
        crate::size::opening(&doubled, min_width - 1).expect("non-negative opening cannot fail");
    let lost = doubled.difference(&opened);
    lost.components()
        .into_iter()
        .filter_map(|comp| {
            comp.bbox().map(|b| {
                let halved = crate::Rect::new(
                    b.x1.div_euclid(2),
                    b.y1.div_euclid(2),
                    (b.x2 + 1).div_euclid(2),
                    (b.y2 + 1).div_euclid(2),
                );
                WidthViolation {
                    location: halved,
                    measured: halved.min_side().min(min_width - 1),
                    required: min_width,
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    const W: Coord = 20;

    #[test]
    fn rect_width_check() {
        assert!(check_rect_width(&Rect::new(0, 0, 100, 20), W).is_none());
        let v = check_rect_width(&Rect::new(0, 0, 100, 19), W).unwrap();
        assert_eq!(v.measured, 19);
        assert_eq!(v.required, 20);
    }

    #[test]
    fn wire_width_check() {
        let ok = Wire::new(20, vec![p(0, 0), p(100, 0)]).unwrap();
        assert!(check_wire_width(&ok, W).is_none());
        let thin = Wire::new(10, vec![p(0, 0), p(100, 0)]).unwrap();
        assert!(check_wire_width(&thin, W).is_some());
    }

    #[test]
    fn polygon_legal_square_passes() {
        let sq = Polygon::from_rect(&Rect::new(0, 0, 100, 100));
        assert!(check_polygon_width(&sq, W).is_empty());
    }

    #[test]
    fn polygon_thin_strip_fails() {
        let strip = Polygon::from_rect(&Rect::new(0, 0, 100, 10));
        let v = check_polygon_width(&strip, W);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].measured, 10);
    }

    #[test]
    fn polygon_neck_detected() {
        // Dumbbell: two 40x40 squares joined by a 10-wide neck.
        let poly = Polygon::new(vec![
            p(0, 0),
            p(40, 0),
            p(40, 15),
            p(80, 15),
            p(80, 0),
            p(120, 0),
            p(120, 40),
            p(80, 40),
            p(80, 25),
            p(40, 25),
            p(40, 40),
            p(0, 40),
        ])
        .unwrap();
        let v = check_polygon_width(&poly, W);
        assert!(!v.is_empty());
        assert!(v.iter().any(|x| x.measured == 10));
        // But the squares themselves are fine at min width 15:
        let v15 = check_polygon_width(&poly, 10);
        assert!(v15.is_empty());
    }

    #[test]
    fn polygon_l_shape_no_false_corner_errors() {
        // Fig. 4: the DIIC edge-pair check must NOT flag corners of a legal
        // L-shape (unlike Euclidean shrink-expand-compare).
        let l = Polygon::new(vec![
            p(0, 0),
            p(100, 0),
            p(100, 30),
            p(30, 30),
            p(30, 100),
            p(0, 100),
        ])
        .unwrap();
        assert!(check_polygon_width(&l, W).is_empty());
    }

    #[test]
    fn polygon_notch_is_not_width_violation() {
        // A notch (exterior slot) narrower than min width is a *spacing*
        // issue, not a width issue; the width check must not flag it.
        let notched = Polygon::new(vec![
            p(0, 0),
            p(100, 0),
            p(100, 40),
            p(55, 40),
            p(55, 25),
            p(45, 25),
            p(45, 40),
            p(0, 40),
        ])
        .unwrap();
        // Width from notch bottom (y=25) to polygon bottom (y=0) is 25 >= 20:
        assert!(check_polygon_width(&notched, W).is_empty());
        // With min width 30 the strip under the notch violates:
        assert!(!check_polygon_width(&notched, 30).is_empty());
    }

    #[test]
    fn diagonal_neck_between_reflex_corners() {
        // Staircase with a diagonal neck: two reflex corners 10·√2 apart.
        let z = Polygon::new(vec![
            p(0, 0),
            p(50, 0),
            p(50, 30),
            p(90, 30),
            p(90, 70),
            p(40, 70),
            p(40, 40),
            p(0, 40),
        ])
        .unwrap();
        // Reflex corners at (50,30) and (40,40): dist² = 200 < 400.
        let v = check_polygon_width(&z, W);
        assert!(!v.is_empty());
        assert!(v.iter().any(|x| x.measured == 14)); // floor(√200)
    }

    #[test]
    fn sec_orthogonal_flags_thin_neck_only() {
        let shape = Region::from_rects([
            Rect::new(0, 0, 40, 40),
            Rect::new(40, 15, 80, 25),
            Rect::new(80, 0, 120, 40),
        ]);
        let v = shrink_expand_compare(&shape, W);
        assert_eq!(v.len(), 1);
        assert!(v[0].location.touches(&Rect::new(40, 15, 80, 25)));
        // A legal square produces nothing — orthogonal SEC has no corner
        // pathology on rectilinear data.
        let ok = shrink_expand_compare(&Region::from_rect(Rect::new(0, 0, 100, 100)), W);
        assert!(ok.is_empty());
    }

    #[test]
    fn isqrt_exactness() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(2), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(200), 14);
        assert_eq!(isqrt(10_000_000_001), 100_000);
    }

    #[test]
    fn polygon_45_degree_taper() {
        // A 45° taper narrowing below min width.
        let taper = Polygon::new(vec![
            p(0, 0),
            p(100, 0),
            p(140, 40),
            p(140, 100),
            p(120, 100),
            p(120, 48),
            p(92, 20),
            p(0, 20),
        ])
        .unwrap();
        let v = check_polygon_width(&taper, 25);
        assert!(!v.is_empty());
    }
}
