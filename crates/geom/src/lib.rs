//! # diic-geom — integer geometry kernel for layout verification
//!
//! This crate is the geometric substrate of the DIIC (Design Integrity and
//! Immunity Checking) system, a reproduction of McGrath & Whitney,
//! *"Design Integrity and Immunity Checking"*, DAC 1980.
//!
//! All coordinates are `i64` database units (1 unit = 1 centimicron, the CIF
//! convention). Squared distances are computed in `i128`, so no practical
//! layout can overflow.
//!
//! The kernel provides:
//!
//! * primitive types: [`Point`], [`Vector`], [`Rect`], [`Segment`],
//!   [`Polygon`], [`Wire`], [`Transform`];
//! * [`Region`]: a canonical set of disjoint axis-aligned rectangles with
//!   Boolean operations (union / intersection / difference / xor) computed by
//!   a sweep-line algorithm (see [`boolean`]);
//! * sizing (expand / shrink) in both *orthogonal* (L∞, square-corner) and
//!   *Euclidean* (L2, round-corner) flavours (see [`size`] and [`raster`]) —
//!   the two techniques whose corner pathologies the paper's Figs. 3–4
//!   illustrate;
//! * width checking: the exact edge-pair algorithm used by the DIIC pipeline
//!   and the *shrink-expand-compare* baseline the paper critiques
//!   (see [`width`]);
//! * spacing checking: distance predicates in L2 and L∞ metrics and the
//!   *expand-check-overlap* baseline (see [`spacing`]);
//! * skeletal connectivity (paper Fig. 11): an element's *skeleton* is the
//!   element shrunk by half the minimum width of its layer; two elements are
//!   legally connected iff their skeletons touch, overlap, or enclose one
//!   another (see [`skeleton`]);
//! * a uniform-grid spatial index for interaction searches (see [`index`]);
//! * batch kernels over rectangle column slices — pair sweeps, closest
//!   approach, branch-free run filters — for columnar element stores
//!   (see [`batch`]).
//!
//! # Example
//!
//! ```
//! use diic_geom::{Rect, Region};
//!
//! let a = Rect::new(0, 0, 100, 100);
//! let b = Rect::new(50, 50, 150, 150);
//! let union = Region::from_rect(a).union(&Region::from_rect(b));
//! assert_eq!(union.area(), 100 * 100 + 100 * 100 - 50 * 50);
//! ```

pub mod batch;
pub mod boolean;
pub mod distance;
pub mod edge;
pub mod index;
pub mod point;
pub mod polygon;
pub mod raster;
pub mod rect;
pub mod region;
pub mod size;
pub mod skeleton;
pub mod spacing;
pub mod transform;
pub mod width;
pub mod wire;

pub use edge::Segment;
pub use index::GridIndex;
pub use point::{Point, Vector};
pub use polygon::Polygon;
pub use raster::Raster;
pub use rect::Rect;
pub use region::Region;
pub use size::SizingMode;
pub use transform::{Orientation, Transform};
pub use wire::Wire;

/// Database-unit coordinate type (1 unit = 1 centimicron, as in CIF).
pub type Coord = i64;

/// Errors produced by geometric constructors and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A polygon had fewer than three vertices.
    TooFewVertices(usize),
    /// A polygon has zero area (all vertices collinear).
    DegeneratePolygon,
    /// A polygon is not rectilinear where a rectilinear one is required.
    NotRectilinear,
    /// A wire had no points or a non-positive width.
    InvalidWire,
    /// A sizing amount was negative.
    NegativeSize(Coord),
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::TooFewVertices(n) => {
                write!(f, "polygon has {n} vertices, need at least 3")
            }
            GeomError::DegeneratePolygon => write!(f, "polygon has zero area"),
            GeomError::NotRectilinear => {
                write!(
                    f,
                    "polygon is not rectilinear (axis-parallel edges required)"
                )
            }
            GeomError::InvalidWire => write!(f, "wire needs at least one point and positive width"),
            GeomError::NegativeSize(d) => write!(f, "sizing amount {d} is negative"),
        }
    }
}

impl std::error::Error for GeomError {}
