//! Points and vectors in the integer layout plane.

use crate::Coord;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A point in the layout plane, in database units.
///
/// # Example
///
/// ```
/// use diic_geom::Point;
/// let p = Point::new(100, 200);
/// assert_eq!(p + diic_geom::Vector::new(10, -20), Point::new(110, 180));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

/// A displacement between two [`Point`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: Coord,
    /// Vertical component.
    pub y: Coord,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Vector from `self` to `other`.
    pub fn to(self, other: Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }

    /// Squared Euclidean distance to `other`, in `i128` (never overflows).
    pub fn dist_sq(self, other: Point) -> i128 {
        let dx = (self.x - other.x) as i128;
        let dy = (self.y - other.y) as i128;
        dx * dx + dy * dy
    }

    /// Chebyshev (L∞) distance to `other`.
    pub fn dist_linf(self, other: Point) -> Coord {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Manhattan (L1) distance to `other`.
    pub fn dist_l1(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Vector {
    /// Creates a vector from its components.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Vector { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vector = Vector::new(0, 0);

    /// 2-D cross product (z-component of the 3-D cross product), in `i128`.
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    pub fn cross(self, other: Vector) -> i128 {
        self.x as i128 * other.y as i128 - self.y as i128 * other.x as i128
    }

    /// Dot product, in `i128`.
    pub fn dot(self, other: Vector) -> i128 {
        self.x as i128 * other.x as i128 + self.y as i128 * other.y as i128
    }

    /// Squared Euclidean length, in `i128`.
    pub fn norm_sq(self) -> i128 {
        self.dot(self)
    }

    /// True if the vector is axis-parallel (including zero).
    pub fn is_axis_parallel(self) -> bool {
        self.x == 0 || self.y == 0
    }

    /// Rotates the vector 90° counter-clockwise.
    pub fn rot90(self) -> Vector {
        Vector::new(-self.y, self.x)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, v: Vector) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, v: Vector) {
        self.x -= v.x;
        self.y -= v.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<Coord> for Vector {
    type Output = Vector;
    fn mul(self, k: Coord) -> Vector {
        Vector::new(self.x * k, self.y * k)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl From<(Coord, Coord)> for Vector {
    fn from((x, y): (Coord, Coord)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = Point::new(3, 4);
        let q = Point::new(1, 1);
        assert_eq!(p - q, Vector::new(2, 3));
        assert_eq!(q + Vector::new(2, 3), p);
        assert_eq!(p - Vector::new(3, 4), Point::ORIGIN);
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.dist_sq(b), 25);
        assert_eq!(a.dist_linf(b), 4);
        assert_eq!(a.dist_l1(b), 7);
    }

    #[test]
    fn cross_sign_convention() {
        let east = Vector::new(1, 0);
        let north = Vector::new(0, 1);
        assert_eq!(east.cross(north), 1);
        assert_eq!(north.cross(east), -1);
        assert_eq!(east.rot90(), north);
    }

    #[test]
    fn dot_and_norm() {
        let v = Vector::new(3, 4);
        assert_eq!(v.norm_sq(), 25);
        assert_eq!(v.dot(Vector::new(-4, 3)), 0);
    }

    #[test]
    fn no_overflow_at_extremes() {
        let a = Point::new(i64::MAX / 4, i64::MAX / 4);
        let b = Point::new(-(i64::MAX / 4), -(i64::MAX / 4));
        // Must not panic in debug builds.
        let _ = a.dist_sq(b);
        let v = a - b;
        let _ = v.norm_sq();
    }

    #[test]
    fn axis_parallel() {
        assert!(Vector::new(5, 0).is_axis_parallel());
        assert!(Vector::new(0, -2).is_axis_parallel());
        assert!(!Vector::new(1, 1).is_axis_parallel());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
        assert_eq!(Vector::new(1, -2).to_string(), "<1, -2>");
    }
}
