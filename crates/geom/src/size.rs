//! Sizing (expand / shrink) of regions.
//!
//! The paper's Fig. 3 contrasts **orthogonal** expansion (Minkowski sum with
//! a square — preserves square corners) with **Euclidean** expansion
//! (Minkowski sum with a disc — rounds corners). Orthogonal sizing of a
//! rectilinear region is exact here; Euclidean sizing is inherently
//! non-rectilinear, so we provide (a) analytic results for simple shapes
//! (all that Fig. 3 needs) and a polygonal arc approximation for convex
//! shapes, and (b) an exact-on-grid raster implementation in
//! [`crate::raster`] used by the shrink-expand-compare baseline.

use crate::{Coord, GeomError, Point, Polygon, Rect, Region};

/// Which metric ball a sizing operation (or distance predicate) uses.
///
/// * `Orthogonal`: L∞ ball (a square). Expansion preserves square corners.
/// * `Euclidean`: L2 ball (a disc). Expansion rounds convex corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizingMode {
    /// Square structuring element (L∞).
    #[default]
    Orthogonal,
    /// Disc structuring element (L2).
    Euclidean,
}

impl std::fmt::Display for SizingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizingMode::Orthogonal => f.write_str("orthogonal"),
            SizingMode::Euclidean => f.write_str("euclidean"),
        }
    }
}

/// Orthogonal expansion: Minkowski sum of the region with the square
/// `[-d, d]²`. Exact.
///
/// # Errors
///
/// [`GeomError::NegativeSize`] when `d < 0` (use [`shrink`]).
pub fn expand(region: &Region, d: Coord) -> Result<Region, GeomError> {
    if d < 0 {
        return Err(GeomError::NegativeSize(d));
    }
    if d == 0 {
        return Ok(region.clone());
    }
    Ok(Region::from_rects(region.rects().iter().map(|r| {
        Rect::new(r.x1 - d, r.y1 - d, r.x2 + d, r.y2 + d)
    })))
}

/// Orthogonal shrink: the set of points whose L∞-ball of radius `d` lies
/// inside the (closed) region. Exact, computed via the complement identity
/// `shrink(A, d) = A \ expand(Aᶜ, d)`.
///
/// Features narrower than `2d` vanish entirely (measure semantics: a
/// min-width feature shrunk by half its width has zero area). For skeleton
/// computations that must *keep* such degenerate remainders, see
/// [`crate::skeleton`].
///
/// # Errors
///
/// [`GeomError::NegativeSize`] when `d < 0`.
pub fn shrink(region: &Region, d: Coord) -> Result<Region, GeomError> {
    if d < 0 {
        return Err(GeomError::NegativeSize(d));
    }
    if d == 0 || region.is_empty() {
        return Ok(region.clone());
    }
    let bbox = region.bbox().expect("non-empty region has bbox");
    let universe = Region::from_rect(
        bbox.inflate(2 * d + 2)
            .expect("inflating by positive amount cannot fail"),
    );
    let complement = universe.difference(region);
    let grown = expand(&complement, d)?;
    Ok(region.difference(&grown))
}

/// Morphological opening: shrink then expand by `d` (orthogonal). This is
/// the *shrink-expand-compare* primitive: `region − opening(region, w/2)` is
/// what a traditional checker reports as sub-width area.
///
/// # Errors
///
/// [`GeomError::NegativeSize`] when `d < 0`.
pub fn opening(region: &Region, d: Coord) -> Result<Region, GeomError> {
    expand(&shrink(region, d)?, d)
}

/// Morphological closing: expand then shrink by `d` (orthogonal). Fills
/// gaps and notches narrower than `2d`.
///
/// # Errors
///
/// [`GeomError::NegativeSize`] when `d < 0`.
pub fn closing(region: &Region, d: Coord) -> Result<Region, GeomError> {
    shrink(&expand(region, d)?, d)
}

/// Exact area of the Euclidean expansion of a single rectangle by `d`:
/// `A + P·d + π·d²` (rounded corners). Returned as `f64` since π is
/// irrational. Used by the Fig. 3 experiment to compare against the
/// orthogonal expansion area `A + P·d + 4·d²`.
pub fn euclidean_expand_area_rect(r: &Rect, d: Coord) -> f64 {
    let a = r.area() as f64;
    let p = 2.0 * (r.width() + r.height()) as f64;
    a + p * d as f64 + std::f64::consts::PI * (d as f64) * (d as f64)
}

/// Orthogonal expansion area of a single rectangle (exact).
pub fn orthogonal_expand_area_rect(r: &Rect, d: Coord) -> i128 {
    let e = Rect::new(r.x1 - d, r.y1 - d, r.x2 + d, r.y2 + d);
    e.area()
}

/// Euclidean expansion of a **convex** polygon as a polygon approximation:
/// each edge is offset outward by `d`; each convex corner is replaced by
/// `segments` chords approximating the arc. The approximation is inscribed
/// in the true expansion (vertices lie exactly on the offset circle, up to
/// integer rounding).
///
/// # Errors
///
/// [`GeomError::NotRectilinear`] is *not* required — any convex polygon
/// works; returns [`GeomError::DegeneratePolygon`] if the input is not
/// convex (reflex corner found) since concave offsetting needs arc/arc
/// trimming this kernel does not provide.
pub fn euclidean_expand_convex(
    poly: &Polygon,
    d: Coord,
    segments: usize,
) -> Result<Polygon, GeomError> {
    if d < 0 {
        return Err(GeomError::NegativeSize(d));
    }
    let pts = poly.points();
    let n = pts.len();
    // Convexity check (CCW ring: all turns must be left turns).
    for i in 0..n {
        let a = pts[i];
        let b = pts[(i + 1) % n];
        let c = pts[(i + 2) % n];
        if (b - a).cross(c - b) < 0 {
            return Err(GeomError::DegeneratePolygon);
        }
    }
    let segs = segments.max(1);
    let mut out: Vec<Point> = Vec::with_capacity(n * (segs + 1));
    for i in 0..n {
        let prev = pts[(i + n - 1) % n];
        let cur = pts[i];
        let next = pts[(i + 1) % n];
        let din = cur - prev;
        let dout = next - cur;
        // Outward normals (interior is left for CCW, so outward = right =
        // direction rotated -90°).
        let nin = angle_of(-din.rot90());
        let nout = angle_of(-dout.rot90());
        // Sweep the arc from nin to nout (counter-clockwise, convex corner).
        let mut sweep = nout - nin;
        while sweep < 0.0 {
            sweep += std::f64::consts::TAU;
        }
        for k in 0..=segs {
            let ang = nin + sweep * (k as f64) / (segs as f64);
            let px = cur.x as f64 + d as f64 * ang.cos();
            let py = cur.y as f64 + d as f64 * ang.sin();
            out.push(Point::new(px.round() as Coord, py.round() as Coord));
        }
    }
    Polygon::new(out)
}

fn angle_of(v: crate::Vector) -> f64 {
    (v.y as f64).atan2(v.x as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(side: Coord) -> Region {
        Region::from_rect(Rect::new(0, 0, side, side))
    }

    #[test]
    fn expand_square() {
        let r = expand(&square(10), 5).unwrap();
        assert_eq!(r, Region::from_rect(Rect::new(-5, -5, 15, 15)));
    }

    #[test]
    fn shrink_square() {
        let r = shrink(&square(10), 3).unwrap();
        assert_eq!(r, Region::from_rect(Rect::new(3, 3, 7, 7)));
    }

    #[test]
    fn shrink_to_nothing() {
        // Fig. 3: orthogonal shrink of a square yields a square — and at
        // half the side, nothing (measure semantics).
        assert!(shrink(&square(10), 5).unwrap().is_empty());
        assert!(shrink(&square(10), 7).unwrap().is_empty());
    }

    #[test]
    fn expand_then_shrink_roundtrip_on_square() {
        let s = square(10);
        let back = shrink(&expand(&s, 4).unwrap(), 4).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shrink_l_shape_keeps_wide_parts() {
        // L with 20-wide arms; shrinking by 5 keeps 10-wide arms.
        let l = Region::from_rects([Rect::new(0, 0, 60, 20), Rect::new(0, 0, 20, 60)]);
        let s = shrink(&l, 5).unwrap();
        assert_eq!(s.area(), {
            // Shrunk L: horizontal arm [5,55]x[5,15], vertical [5,15]x[5,55],
            // overlapping in [5,15]x[5,15].
            (50 * 10 + 50 * 10 - 10 * 10) as i128
        });
    }

    #[test]
    fn opening_removes_thin_neck() {
        // Two 20x20 squares joined by a 4-wide neck; opening by 5 removes
        // the neck but keeps the squares.
        let shape = Region::from_rects([
            Rect::new(0, 0, 20, 20),
            Rect::new(20, 8, 40, 12),
            Rect::new(40, 0, 60, 20),
        ]);
        let opened = opening(&shape, 5).unwrap();
        assert_eq!(opened.area(), 2 * 400);
        let lost = shape.difference(&opened);
        assert_eq!(lost.area(), 20 * 4);
    }

    #[test]
    fn closing_fills_narrow_gap() {
        let gap = Region::from_rects([Rect::new(0, 0, 10, 20), Rect::new(14, 0, 24, 20)]);
        let closed = closing(&gap, 3).unwrap();
        // The 4-wide slot between the bars is filled.
        assert_eq!(closed.area(), 24 * 20);
    }

    #[test]
    fn negative_size_rejected() {
        assert!(expand(&square(10), -1).is_err());
        assert!(shrink(&square(10), -1).is_err());
    }

    #[test]
    fn euclidean_vs_orthogonal_area_fig3() {
        // Fig. 3: expanding a square, orthogonal keeps square corners
        // (larger area), Euclidean rounds them.
        let r = Rect::new(0, 0, 100, 100);
        let orth = orthogonal_expand_area_rect(&r, 10) as f64;
        let eucl = euclidean_expand_area_rect(&r, 10);
        assert!(eucl < orth);
        // The difference is exactly (4 - π)·d².
        let diff = orth - eucl;
        let expected = (4.0 - std::f64::consts::PI) * 100.0;
        assert!((diff - expected).abs() < 1e-6);
    }

    #[test]
    fn euclidean_expand_convex_square() {
        let sq = Polygon::from_rect(&Rect::new(0, 0, 1000, 1000));
        let exp = euclidean_expand_convex(&sq, 100, 8).unwrap();
        // More vertices than the square: arcs at each corner.
        assert!(exp.len() > 4 + 4 * 4);
        // Area between the inscribed approximation and the true value.
        let approx_area = exp.area2() as f64 / 2.0;
        let true_area = euclidean_expand_area_rect(&Rect::new(0, 0, 1000, 1000), 100);
        assert!(approx_area <= true_area + 1e4);
        assert!(approx_area > true_area * 0.99);
        // And well above the unexpanded area.
        assert!(approx_area > 1_000_000.0);
    }

    #[test]
    fn euclidean_expand_rejects_concave() {
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(60, 0),
            Point::new(60, 20),
            Point::new(20, 20),
            Point::new(20, 60),
            Point::new(0, 60),
        ])
        .unwrap();
        assert!(euclidean_expand_convex(&l, 5, 4).is_err());
    }

    #[test]
    fn shrink_of_empty_is_empty() {
        assert!(shrink(&Region::empty(), 5).unwrap().is_empty());
        assert!(expand(&Region::empty(), 5).unwrap().is_empty());
    }
}
