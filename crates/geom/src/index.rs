//! Uniform-grid spatial index for interaction searches.
//!
//! The "check interactions" stage of the pipeline must find, for every
//! element, the nearby elements it could interact with. A uniform grid over
//! bucketed bounding boxes is simple, fast for layout data (bounded local
//! density), and needs no balancing.
//!
//! Queries take `&self` and allocate only per-result scratch, so a
//! populated index can be **shared across threads** (`GridIndex<T>` is
//! `Sync` whenever `T` is) — the parallel interaction search builds the
//! index once and fans queries out over a scoped thread pool.

use crate::{Coord, Rect};
use std::collections::HashMap;

/// A uniform-grid spatial index mapping rectangles to payload values.
///
/// # Example
///
/// ```
/// use diic_geom::{GridIndex, Rect};
/// let mut idx = GridIndex::new(100);
/// idx.insert(Rect::new(0, 0, 50, 50), "a");
/// idx.insert(Rect::new(500, 500, 550, 550), "b");
/// let near_origin = idx.query(&Rect::new(0, 0, 60, 60));
/// assert_eq!(near_origin, vec![&"a"]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: Coord,
    items: Vec<(Rect, T)>,
    cells: HashMap<(Coord, Coord), Vec<u32>>,
}

impl<T> GridIndex<T> {
    /// Creates an index with the given cell size (clamped to ≥ 1).
    /// A good cell size is a few times the typical feature pitch.
    pub fn new(cell_size: Coord) -> Self {
        GridIndex {
            cell: cell_size.max(1),
            items: Vec::new(),
            cells: HashMap::new(),
        }
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> Coord {
        self.cell
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items have been inserted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts a rectangle with its payload.
    pub fn insert(&mut self, rect: Rect, value: T) {
        let id = self.items.len() as u32;
        for key in self.cover_keys(&rect) {
            self.cells.entry(key).or_default().push(id);
        }
        self.items.push((rect, value));
    }

    /// Returns payload references for all items whose rectangle **touches**
    /// the query rectangle (closed-sense). Each item is returned once, in
    /// insertion order.
    pub fn query(&self, query: &Rect) -> Vec<&T> {
        self.matching_ids(query)
            .into_iter()
            .map(|id| &self.items[id as usize].1)
            .collect()
    }

    /// Like [`GridIndex::query`] but returns `(rect, payload)` pairs.
    pub fn query_pairs(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        self.matching_ids(query)
            .into_iter()
            .map(|id| {
                let (rect, value) = &self.items[id as usize];
                (rect, value)
            })
            .collect()
    }

    /// Item ids (ascending, deduplicated) whose rectangles touch the
    /// query. Work is proportional to the covered cells' occupancy, not
    /// to the total item count, so hot query loops stay cheap on large
    /// indexes.
    fn matching_ids(&self, query: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for key in self.cover_keys(query) {
            if let Some(cell) = self.cells.get(&key) {
                ids.extend_from_slice(cell);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids.retain(|&id| self.items[id as usize].0.touches(query));
        ids
    }

    /// Iterates over all `(rect, payload)` items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        self.items.iter().map(|(r, t)| (r, t))
    }

    fn cover_keys(&self, r: &Rect) -> impl Iterator<Item = (Coord, Coord)> {
        let c = self.cell;
        let kx1 = r.x1.div_euclid(c);
        let kx2 = r.x2.div_euclid(c);
        let ky1 = r.y1.div_euclid(c);
        let ky2 = r.y2.div_euclid(c);
        (kx1..=kx2).flat_map(move |kx| (ky1..=ky2).map(move |ky| (kx, ky)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index() {
        let idx: GridIndex<u32> = GridIndex::new(100);
        assert!(idx.is_empty());
        assert!(idx.query(&Rect::new(0, 0, 10, 10)).is_empty());
    }

    #[test]
    fn query_returns_touching_items_once() {
        let mut idx = GridIndex::new(10);
        // Spans many cells; must still be returned exactly once.
        idx.insert(Rect::new(0, 0, 100, 100), 1u32);
        idx.insert(Rect::new(200, 200, 210, 210), 2);
        let hits = idx.query(&Rect::new(50, 50, 60, 60));
        assert_eq!(hits, vec![&1]);
    }

    #[test]
    fn closed_touch_semantics() {
        let mut idx = GridIndex::new(64);
        idx.insert(Rect::new(0, 0, 10, 10), "a");
        // Query sharing only the corner point (10,10).
        let hits = idx.query(&Rect::new(10, 10, 20, 20));
        assert_eq!(hits, vec![&"a"]);
        // Query 1 unit away: no hit.
        let miss = idx.query(&Rect::new(11, 11, 20, 20));
        assert!(miss.is_empty());
    }

    #[test]
    fn negative_coordinates() {
        let mut idx = GridIndex::new(50);
        idx.insert(Rect::new(-100, -100, -50, -50), 7u8);
        assert_eq!(idx.query(&Rect::new(-60, -60, -55, -55)), vec![&7]);
        assert!(idx.query(&Rect::new(0, 0, 10, 10)).is_empty());
    }

    #[test]
    fn dense_grid_all_found() {
        let mut idx = GridIndex::new(25);
        let mut expected = 0;
        for i in 0..20 {
            for j in 0..20 {
                idx.insert(Rect::new(i * 40, j * 40, i * 40 + 20, j * 40 + 20), (i, j));
                if i < 10 && j < 10 {
                    expected += 1;
                }
            }
        }
        let hits = idx.query(&Rect::new(0, 0, 10 * 40 - 21, 10 * 40 - 21));
        assert_eq!(hits.len(), expected);
    }

    #[test]
    fn query_pairs_exposes_rects() {
        let mut idx = GridIndex::new(100);
        let r = Rect::new(5, 5, 15, 15);
        idx.insert(r, 42u32);
        let pairs = idx.query_pairs(&Rect::new(0, 0, 10, 10));
        assert_eq!(pairs.len(), 1);
        assert_eq!(*pairs[0].0, r);
        assert_eq!(*pairs[0].1, 42);
    }

    #[test]
    fn len_and_iter() {
        let mut idx = GridIndex::new(10);
        idx.insert(Rect::new(0, 0, 5, 5), 'x');
        idx.insert(Rect::new(20, 20, 25, 25), 'y');
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.iter().count(), 2);
        assert_eq!(idx.cell_size(), 10);
    }

    #[test]
    fn results_in_insertion_order() {
        let mut idx = GridIndex::new(10);
        // Inserted out of spatial order; both span several cells.
        idx.insert(Rect::new(50, 0, 120, 15), 2u32);
        idx.insert(Rect::new(0, 0, 100, 15), 1);
        assert_eq!(idx.query(&Rect::new(0, 0, 200, 200)), vec![&2, &1]);
    }

    #[test]
    fn concurrent_queries_are_deterministic() {
        // The parallel candidate searches assume a query answered from a
        // worker thread returns exactly what the same query returns
        // serially — same ids, same (insertion) order — because results
        // are sort-dedup'd from immutable buckets, never from per-query
        // mutable scratch.
        let mut idx = GridIndex::new(30);
        for i in 0..200i64 {
            // Overlapping rects spanning several cells, inserted out of
            // spatial order.
            let x = (i * 37) % 500;
            idx.insert(Rect::new(x, 0, x + 90, 60), i);
        }
        let queries: Vec<Rect> = (0..40)
            .map(|q| Rect::new(q * 13, 0, q * 13 + 120, 60))
            .collect();
        let serial: Vec<Vec<i64>> = queries
            .iter()
            .map(|q| idx.query(q).into_iter().copied().collect())
            .collect();
        let idx = &idx;
        let (serial, queries) = (&serial, &queries);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for (q, expect) in queries.iter().zip(serial) {
                        let got: Vec<i64> = idx.query(q).into_iter().copied().collect();
                        assert_eq!(&got, expect, "concurrent query diverged for {q:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn shared_queries_across_threads() {
        // The parallel interaction search relies on `&GridIndex` being
        // usable from scoped worker threads.
        let mut idx = GridIndex::new(50);
        for i in 0..100i64 {
            idx.insert(Rect::new(i * 60, 0, i * 60 + 40, 40), i);
        }
        let idx = &idx;
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    s.spawn(move || {
                        (0..100)
                            .filter(|i| i % 4 == w)
                            .map(|i| idx.query(&Rect::new(i * 60, 0, i * 60 + 40, 40)).len())
                            .sum()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }
}
