//! Uniform-grid spatial index for interaction searches.
//!
//! The "check interactions" stage of the pipeline must find, for every
//! element, the nearby elements it could interact with. A uniform grid over
//! bucketed bounding boxes is simple, fast for layout data (bounded local
//! density), and needs no balancing.
//!
//! Queries take `&self` and allocate only per-result scratch, so a
//! populated index can be **shared across threads** (`GridIndex<T>` is
//! `Sync` whenever `T` is) — the parallel interaction search builds the
//! index once and fans queries out over a scoped thread pool.

use crate::{Coord, Rect};
use std::collections::HashMap;

/// A uniform-grid spatial index mapping rectangles to payload values.
///
/// # Example
///
/// ```
/// use diic_geom::{GridIndex, Rect};
/// let mut idx = GridIndex::new(100);
/// idx.insert(Rect::new(0, 0, 50, 50), "a");
/// idx.insert(Rect::new(500, 500, 550, 550), "b");
/// let near_origin = idx.query(&Rect::new(0, 0, 60, 60));
/// assert_eq!(near_origin, vec![&"a"]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell: Coord,
    items: Vec<(Rect, Option<T>)>,
    alive: usize,
    cells: HashMap<(Coord, Coord), Vec<u32>>,
}

impl<T> GridIndex<T> {
    /// Creates an index with the given cell size (clamped to ≥ 1).
    /// A good cell size is a few times the typical feature pitch.
    pub fn new(cell_size: Coord) -> Self {
        GridIndex {
            cell: cell_size.max(1),
            items: Vec::new(),
            alive: 0,
            cells: HashMap::new(),
        }
    }

    /// The configured cell size.
    pub fn cell_size(&self) -> Coord {
        self.cell
    }

    /// Number of live indexed items.
    pub fn len(&self) -> usize {
        self.alive
    }

    /// True if no live items remain.
    pub fn is_empty(&self) -> bool {
        self.alive == 0
    }

    /// Number of tombstoned item slots: handles that were removed but
    /// whose slots still occupy memory (handles are never reused, so
    /// slots accumulate under insert/remove churn until
    /// [`GridIndex::compact`] repacks them).
    pub fn tombstones(&self) -> usize {
        self.items.len() - self.alive
    }

    /// A deterministic partition of the item-slot space into contiguous
    /// insertion-order tiles of at most `cap` slots each (`cap` clamped
    /// to ≥ 1). Tiles are yielded in ascending slot order and cover
    /// every slot exactly once; dead slots inside a tile are simply
    /// absent from query results.
    ///
    /// This is the unit of work the tiled streaming interaction search
    /// walks: each worker owns one tile of elements, enumerates and
    /// evaluates that tile's candidate pairs in one pass, and the
    /// per-tile results are merged positionally — so candidate memory
    /// is bounded by the widest tile, not the whole index, while any
    /// worker count produces byte-identical output.
    pub fn tiles(&self, cap: usize) -> impl Iterator<Item = std::ops::Range<u32>> {
        // Saturate (not truncate) caps beyond the u32 handle space: a
        // cap of 2^32 must mean "one tile", never "divide by zero".
        let cap = u32::try_from(cap).unwrap_or(u32::MAX).max(1);
        let n = self.items.len() as u32;
        (0..n.div_ceil(cap)).map(move |k| (k * cap)..((k + 1) * cap).min(n))
    }

    /// Rebuilds the index in place, dropping every tombstoned slot and
    /// repacking the cell buckets — the recovery path for an index that
    /// has served heavy insert/remove churn (an edit session's
    /// persistent element index), whose slot vector and per-cell
    /// bookkeeping otherwise grow monotonically.
    ///
    /// Live items keep their relative (insertion) order, so queries
    /// return exactly the same payloads in exactly the same order as
    /// before the compaction. Handles are renumbered densely; the
    /// returned map gives each old handle's new handle (`None` for
    /// slots that were already dead). Callers holding handles must
    /// remap them.
    pub fn compact(&mut self) -> Vec<Option<u32>> {
        let old_items = std::mem::take(&mut self.items);
        self.cells.clear();
        self.alive = 0;
        let mut map = vec![None; old_items.len()];
        for (old_id, (rect, value)) in old_items.into_iter().enumerate() {
            if let Some(v) = value {
                map[old_id] = Some(self.insert(rect, v));
            }
        }
        map
    }

    /// Inserts a rectangle with its payload, returning a stable handle
    /// for [`GridIndex::remove`] / [`GridIndex::get`]. Handles are never
    /// reused, so query results stay in insertion order across
    /// incremental updates.
    pub fn insert(&mut self, rect: Rect, value: T) -> u32 {
        let id = self.items.len() as u32;
        for key in self.cover_keys(&rect) {
            self.cells.entry(key).or_default().push(id);
        }
        self.items.push((rect, Some(value)));
        self.alive += 1;
        id
    }

    /// Removes the item behind a handle, returning its payload (or
    /// `None` if the handle was already removed). The item's grid cells
    /// are cleaned eagerly, so query cost does not degrade under
    /// insert/remove churn — this is the incremental-update path the
    /// edit-session checker leans on.
    pub fn remove(&mut self, id: u32) -> Option<T> {
        let slot = self.items.get_mut(id as usize)?;
        let value = slot.1.take()?;
        let rect = slot.0;
        self.alive -= 1;
        for key in self.cover_keys(&rect) {
            if let Some(cell) = self.cells.get_mut(&key) {
                cell.retain(|&i| i != id);
                if cell.is_empty() {
                    self.cells.remove(&key);
                }
            }
        }
        Some(value)
    }

    /// The live item behind a handle.
    pub fn get(&self, id: u32) -> Option<(&Rect, &T)> {
        let (rect, value) = self.items.get(id as usize)?;
        value.as_ref().map(|v| (rect, v))
    }

    /// Returns payload references for all live items whose rectangle
    /// **touches** the query rectangle (closed-sense). Each item is
    /// returned once, in insertion order.
    pub fn query(&self, query: &Rect) -> Vec<&T> {
        self.matching_ids(query)
            .into_iter()
            .map(|id| {
                self.items[id as usize]
                    .1
                    .as_ref()
                    .expect("matching ids are live")
            })
            .collect()
    }

    /// Like [`GridIndex::query`] but returns `(rect, payload)` pairs.
    pub fn query_pairs(&self, query: &Rect) -> Vec<(&Rect, &T)> {
        self.matching_ids(query)
            .into_iter()
            .map(|id| {
                let (rect, value) = &self.items[id as usize];
                (rect, value.as_ref().expect("matching ids are live"))
            })
            .collect()
    }

    /// True if any live item touches the query rectangle — the
    /// allocation-free predicate form of [`GridIndex::query`], for hot
    /// "does this bbox touch the dirty region" loops.
    pub fn touches_any(&self, query: &Rect) -> bool {
        for key in self.cover_keys(query) {
            if let Some(cell) = self.cells.get(&key) {
                if cell
                    .iter()
                    .any(|&id| self.items[id as usize].0.touches(query))
                {
                    return true;
                }
            }
        }
        false
    }

    /// Item ids (ascending, deduplicated) whose rectangles touch the
    /// query. Work is proportional to the covered cells' occupancy, not
    /// to the total item count, so hot query loops stay cheap on large
    /// indexes. Removed items never appear (their ids were scrubbed from
    /// the cells).
    fn matching_ids(&self, query: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for key in self.cover_keys(query) {
            if let Some(cell) = self.cells.get(&key) {
                ids.extend_from_slice(cell);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids.retain(|&id| self.items[id as usize].0.touches(query));
        ids
    }

    /// Iterates over all live `(rect, payload)` items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> {
        self.items
            .iter()
            .filter_map(|(r, t)| t.as_ref().map(|v| (r, v)))
    }

    fn cover_keys(&self, r: &Rect) -> impl Iterator<Item = (Coord, Coord)> {
        let c = self.cell;
        let kx1 = r.x1.div_euclid(c);
        let kx2 = r.x2.div_euclid(c);
        let ky1 = r.y1.div_euclid(c);
        let ky2 = r.y2.div_euclid(c);
        (kx1..=kx2).flat_map(move |kx| (ky1..=ky2).map(move |ky| (kx, ky)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index() {
        let idx: GridIndex<u32> = GridIndex::new(100);
        assert!(idx.is_empty());
        assert!(idx.query(&Rect::new(0, 0, 10, 10)).is_empty());
    }

    #[test]
    fn query_returns_touching_items_once() {
        let mut idx = GridIndex::new(10);
        // Spans many cells; must still be returned exactly once.
        idx.insert(Rect::new(0, 0, 100, 100), 1u32);
        idx.insert(Rect::new(200, 200, 210, 210), 2);
        let hits = idx.query(&Rect::new(50, 50, 60, 60));
        assert_eq!(hits, vec![&1]);
    }

    #[test]
    fn closed_touch_semantics() {
        let mut idx = GridIndex::new(64);
        idx.insert(Rect::new(0, 0, 10, 10), "a");
        // Query sharing only the corner point (10,10).
        let hits = idx.query(&Rect::new(10, 10, 20, 20));
        assert_eq!(hits, vec![&"a"]);
        // Query 1 unit away: no hit.
        let miss = idx.query(&Rect::new(11, 11, 20, 20));
        assert!(miss.is_empty());
    }

    #[test]
    fn negative_coordinates() {
        let mut idx = GridIndex::new(50);
        idx.insert(Rect::new(-100, -100, -50, -50), 7u8);
        assert_eq!(idx.query(&Rect::new(-60, -60, -55, -55)), vec![&7]);
        assert!(idx.query(&Rect::new(0, 0, 10, 10)).is_empty());
    }

    #[test]
    fn dense_grid_all_found() {
        let mut idx = GridIndex::new(25);
        let mut expected = 0;
        for i in 0..20 {
            for j in 0..20 {
                idx.insert(Rect::new(i * 40, j * 40, i * 40 + 20, j * 40 + 20), (i, j));
                if i < 10 && j < 10 {
                    expected += 1;
                }
            }
        }
        let hits = idx.query(&Rect::new(0, 0, 10 * 40 - 21, 10 * 40 - 21));
        assert_eq!(hits.len(), expected);
    }

    #[test]
    fn query_pairs_exposes_rects() {
        let mut idx = GridIndex::new(100);
        let r = Rect::new(5, 5, 15, 15);
        idx.insert(r, 42u32);
        let pairs = idx.query_pairs(&Rect::new(0, 0, 10, 10));
        assert_eq!(pairs.len(), 1);
        assert_eq!(*pairs[0].0, r);
        assert_eq!(*pairs[0].1, 42);
    }

    #[test]
    fn len_and_iter() {
        let mut idx = GridIndex::new(10);
        idx.insert(Rect::new(0, 0, 5, 5), 'x');
        idx.insert(Rect::new(20, 20, 25, 25), 'y');
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.iter().count(), 2);
        assert_eq!(idx.cell_size(), 10);
    }

    #[test]
    fn remove_scrubs_cells_and_queries() {
        let mut idx = GridIndex::new(10);
        let a = idx.insert(Rect::new(0, 0, 50, 50), "a");
        let b = idx.insert(Rect::new(10, 10, 40, 40), "b");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.remove(a), Some("a"));
        assert_eq!(idx.remove(a), None, "double remove is a no-op");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.query(&Rect::new(0, 0, 100, 100)), vec![&"b"]);
        assert_eq!(idx.get(a), None);
        assert_eq!(idx.get(b).map(|(_, v)| *v), Some("b"));
        assert_eq!(idx.iter().count(), 1);
    }

    #[test]
    fn move_via_remove_and_insert() {
        // The incremental-update idiom the edit session uses: evict the
        // stale entry, insert the moved one (handles are never reused).
        let mut idx = GridIndex::new(10);
        let id = idx.insert(Rect::new(0, 0, 5, 5), 7u32);
        let v = idx.remove(id).unwrap();
        let id2 = idx.insert(Rect::new(100, 100, 105, 105), v);
        assert_ne!(id, id2, "handles are never reused");
        assert!(idx.query(&Rect::new(0, 0, 10, 10)).is_empty());
        assert_eq!(idx.query(&Rect::new(100, 100, 101, 101)), vec![&7]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn incremental_churn_matches_fresh_build() {
        // Insert 60, remove every third, re-insert half: queries must
        // equal a from-scratch index over the surviving set.
        let mut idx = GridIndex::new(25);
        let mut ids = Vec::new();
        for i in 0..60i64 {
            ids.push(idx.insert(Rect::new(i * 30, 0, i * 30 + 20, 20), i));
        }
        for (k, &id) in ids.iter().enumerate() {
            if k % 3 == 0 {
                idx.remove(id);
            }
        }
        for i in 0..30i64 {
            if i % 2 == 0 {
                idx.insert(Rect::new(i * 30 + 5, 5, i * 30 + 15, 15), 100 + i);
            }
        }
        let mut fresh = GridIndex::new(25);
        let survivors: Vec<(Rect, i64)> = idx.iter().map(|(r, &v)| (*r, v)).collect();
        for (r, v) in &survivors {
            fresh.insert(*r, *v);
        }
        for q in 0..20i64 {
            let query = Rect::new(q * 90, 0, q * 90 + 100, 20);
            let got: Vec<i64> = idx.query(&query).into_iter().copied().collect();
            let want: Vec<i64> = fresh.query(&query).into_iter().copied().collect();
            assert_eq!(got, want, "churned index diverged for {query:?}");
        }
    }

    #[test]
    fn tiles_cover_every_slot_once() {
        let mut idx = GridIndex::new(20);
        for i in 0..10i64 {
            idx.insert(Rect::new(i * 30, 0, i * 30 + 20, 20), i);
        }
        let tiles: Vec<_> = idx.tiles(3).collect();
        assert_eq!(tiles, vec![0..3, 3..6, 6..9, 9..10]);
        // cap is clamped, a cap beyond the slot count (or beyond u32 —
        // saturated, not truncated) yields one tile, and an empty index
        // yields none.
        assert_eq!(idx.tiles(0).collect::<Vec<_>>().len(), 10);
        assert_eq!(idx.tiles(100).collect::<Vec<_>>(), vec![0..10]);
        assert_eq!(idx.tiles(1 << 33).collect::<Vec<_>>(), vec![0..10]);
        let empty: GridIndex<u8> = GridIndex::new(20);
        assert_eq!(empty.tiles(4).count(), 0);
    }

    #[test]
    fn tiles_span_dead_slots() {
        // Tiles partition the *slot* space: removals leave the tile
        // boundaries unchanged (dead slots just return nothing).
        let mut idx = GridIndex::new(20);
        let ids: Vec<u32> = (0..8i64)
            .map(|i| idx.insert(Rect::new(i * 30, 0, i * 30 + 20, 20), i))
            .collect();
        idx.remove(ids[3]);
        assert_eq!(idx.tiles(4).collect::<Vec<_>>(), vec![0..4, 4..8]);
    }

    #[test]
    fn compact_preserves_queries_and_remaps_handles() {
        // Churn an index hard, snapshot its query answers, compact, and
        // demand byte-identical answers plus a sound handle map.
        let mut idx = GridIndex::new(25);
        let mut ids = Vec::new();
        for i in 0..80i64 {
            ids.push(idx.insert(Rect::new(i * 30, 0, i * 30 + 20, 20), i));
        }
        for (k, &id) in ids.iter().enumerate() {
            if k % 2 == 0 {
                idx.remove(id);
            }
        }
        for i in 0..20i64 {
            ids.push(idx.insert(Rect::new(i * 30 + 5, 5, i * 30 + 15, 15), 200 + i));
        }
        assert_eq!(idx.tombstones(), 40);
        let queries: Vec<Rect> = (0..30)
            .map(|q| Rect::new(q * 80, 0, q * 80 + 90, 20))
            .collect();
        let before: Vec<Vec<i64>> = queries
            .iter()
            .map(|q| idx.query(q).into_iter().copied().collect())
            .collect();
        let live_before: Vec<(Rect, i64)> = idx.iter().map(|(r, &v)| (*r, v)).collect();

        let map = idx.compact();
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.len(), live_before.len());
        let after: Vec<Vec<i64>> = queries
            .iter()
            .map(|q| idx.query(q).into_iter().copied().collect())
            .collect();
        assert_eq!(before, after, "compaction changed query answers");
        assert_eq!(
            idx.iter().map(|(r, &v)| (*r, v)).collect::<Vec<_>>(),
            live_before,
            "compaction reordered live items"
        );
        // Handle map: dead handles map to None, live ones resolve to the
        // same (rect, payload).
        for (k, &old) in ids.iter().enumerate() {
            let dead = k < 80 && k % 2 == 0;
            match map[old as usize] {
                None => assert!(dead, "live handle {old} lost in compaction"),
                Some(new) => {
                    assert!(!dead, "dead handle {old} resurrected");
                    assert!(idx.get(new).is_some());
                }
            }
        }
    }

    #[test]
    fn results_in_insertion_order() {
        let mut idx = GridIndex::new(10);
        // Inserted out of spatial order; both span several cells.
        idx.insert(Rect::new(50, 0, 120, 15), 2u32);
        idx.insert(Rect::new(0, 0, 100, 15), 1);
        assert_eq!(idx.query(&Rect::new(0, 0, 200, 200)), vec![&2, &1]);
    }

    #[test]
    fn concurrent_queries_are_deterministic() {
        // The parallel candidate searches assume a query answered from a
        // worker thread returns exactly what the same query returns
        // serially — same ids, same (insertion) order — because results
        // are sort-dedup'd from immutable buckets, never from per-query
        // mutable scratch.
        let mut idx = GridIndex::new(30);
        for i in 0..200i64 {
            // Overlapping rects spanning several cells, inserted out of
            // spatial order.
            let x = (i * 37) % 500;
            idx.insert(Rect::new(x, 0, x + 90, 60), i);
        }
        let queries: Vec<Rect> = (0..40)
            .map(|q| Rect::new(q * 13, 0, q * 13 + 120, 60))
            .collect();
        let serial: Vec<Vec<i64>> = queries
            .iter()
            .map(|q| idx.query(q).into_iter().copied().collect())
            .collect();
        let idx = &idx;
        let (serial, queries) = (&serial, &queries);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for (q, expect) in queries.iter().zip(serial) {
                        let got: Vec<i64> = idx.query(q).into_iter().copied().collect();
                        assert_eq!(&got, expect, "concurrent query diverged for {q:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn shared_queries_across_threads() {
        // The parallel interaction search relies on `&GridIndex` being
        // usable from scoped worker threads.
        let mut idx = GridIndex::new(50);
        for i in 0..100i64 {
            idx.insert(Rect::new(i * 60, 0, i * 60 + 40, 40), i);
        }
        let idx = &idx;
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    s.spawn(move || {
                        (0..100)
                            .filter(|i| i % 4 == w)
                            .map(|i| idx.query(&Rect::new(i * 60, 0, i * 60 + 40, 40)).len())
                            .sum()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }
}
