//! Sweep-line Boolean operations on sets of axis-aligned rectangles.
//!
//! This is the engine behind [`crate::Region`]. The algorithm sweeps a
//! vertical line left to right over the rectangle edges; between consecutive
//! event abscissae it walks the active y-boundary map (a `BTreeMap` of
//! coverage deltas per input set) and emits one output rectangle per maximal
//! y-interval where the Boolean predicate holds. A final coalescing pass
//! merges horizontally adjacent strips with identical y-extents.
//!
//! Complexity: `O(E · A)` where `E` is the number of distinct event
//! abscissae and `A` the number of simultaneously active y boundaries —
//! in layouts (bounded local density) this behaves like `O(n log n)` with a
//! small constant. Coordinates are exact integers throughout; rectangles
//! with zero area are ignored (a [`crate::Region`] is a measurable area;
//! touch predicates live on [`crate::Rect`]).

use crate::{Coord, Rect};
use std::collections::BTreeMap;

/// The four Boolean set operations on two rectangle sets `A` and `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// `A ∪ B`
    Union,
    /// `A ∩ B`
    Intersection,
    /// `A \ B`
    Difference,
    /// `(A ∪ B) \ (A ∩ B)`
    Xor,
}

impl BoolOp {
    fn eval(self, in_a: bool, in_b: bool) -> bool {
        match self {
            BoolOp::Union => in_a || in_b,
            BoolOp::Intersection => in_a && in_b,
            BoolOp::Difference => in_a && !in_b,
            BoolOp::Xor => in_a != in_b,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    x: Coord,
    y1: Coord,
    y2: Coord,
    delta: i32,
    set: usize,
}

/// Computes `op(a, b)` and returns a disjoint, coalesced rectangle list.
///
/// Input rectangles may overlap arbitrarily (coverage is counted, not
/// required to be 0/1). Zero-area rectangles are ignored.
pub fn boolean_op(a: &[Rect], b: &[Rect], op: BoolOp) -> Vec<Rect> {
    let mut events: Vec<Event> = Vec::with_capacity(2 * (a.len() + b.len()));
    for (set, rects) in [(0usize, a), (1usize, b)] {
        for r in rects {
            if r.is_degenerate() {
                continue;
            }
            events.push(Event {
                x: r.x1,
                y1: r.y1,
                y2: r.y2,
                delta: 1,
                set,
            });
            events.push(Event {
                x: r.x2,
                y1: r.y1,
                y2: r.y2,
                delta: -1,
                set,
            });
        }
    }
    if events.is_empty() {
        return Vec::new();
    }
    events.sort_unstable_by_key(|e| e.x);

    // Boundary map: y -> coverage delta per input set at that y.
    let mut active: BTreeMap<Coord, [i32; 2]> = BTreeMap::new();
    let mut out: Vec<Rect> = Vec::new();
    let mut i = 0;
    let mut last_x = events[0].x;
    while i < events.len() {
        let x = events[i].x;
        if x > last_x && !active.is_empty() {
            emit_slab(&active, op, last_x, x, &mut out);
        }
        while i < events.len() && events[i].x == x {
            let e = events[i];
            apply_delta(&mut active, e.y1, e.set, e.delta);
            apply_delta(&mut active, e.y2, e.set, -e.delta);
            i += 1;
        }
        last_x = x;
    }
    debug_assert!(active.is_empty(), "unbalanced sweep events");
    coalesce(out)
}

fn apply_delta(active: &mut BTreeMap<Coord, [i32; 2]>, y: Coord, set: usize, delta: i32) {
    let entry = active.entry(y).or_insert([0, 0]);
    entry[set] += delta;
    if entry[0] == 0 && entry[1] == 0 {
        active.remove(&y);
    }
}

fn emit_slab(
    active: &BTreeMap<Coord, [i32; 2]>,
    op: BoolOp,
    x1: Coord,
    x2: Coord,
    out: &mut Vec<Rect>,
) {
    let mut c = [0i32; 2];
    let mut start: Option<Coord> = None;
    for (&y, deltas) in active {
        let was = op.eval(c[0] > 0, c[1] > 0);
        c[0] += deltas[0];
        c[1] += deltas[1];
        let now = op.eval(c[0] > 0, c[1] > 0);
        if !was && now {
            start = Some(y);
        } else if was && !now {
            let y1 = start.take().expect("interval must have started");
            out.push(Rect { x1, y1, x2, y2: y });
        }
    }
    debug_assert!(start.is_none(), "unterminated interval in sweep slab");
}

/// Merges horizontally adjacent strips with identical y-extents, then
/// vertically adjacent strips with identical x-extents. The result is
/// disjoint and typically close to minimal.
fn coalesce(mut rects: Vec<Rect>) -> Vec<Rect> {
    // Horizontal pass.
    rects.sort_unstable_by_key(|r| (r.y1, r.y2, r.x1));
    let mut merged: Vec<Rect> = Vec::with_capacity(rects.len());
    for r in rects {
        if let Some(last) = merged.last_mut() {
            if last.y1 == r.y1 && last.y2 == r.y2 && last.x2 == r.x1 {
                last.x2 = r.x2;
                continue;
            }
        }
        merged.push(r);
    }
    // Vertical pass.
    merged.sort_unstable_by_key(|r| (r.x1, r.x2, r.y1));
    let mut out: Vec<Rect> = Vec::with_capacity(merged.len());
    for r in merged {
        if let Some(last) = out.last_mut() {
            if last.x1 == r.x1 && last.x2 == r.x2 && last.y2 == r.y1 {
                last.y2 = r.y2;
                continue;
            }
        }
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(rects: &[Rect]) -> i128 {
        rects.iter().map(Rect::area).sum()
    }

    fn assert_disjoint(rects: &[Rect]) {
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn union_of_disjoint_rects() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(20, 0, 30, 10)];
        let u = boolean_op(&a, &b, BoolOp::Union);
        assert_eq!(area(&u), 200);
        assert_disjoint(&u);
    }

    #[test]
    fn union_of_overlapping_rects() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(5, 5, 15, 15)];
        let u = boolean_op(&a, &b, BoolOp::Union);
        assert_eq!(area(&u), 175);
        assert_disjoint(&u);
    }

    #[test]
    fn union_of_touching_rects_coalesces() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(10, 0, 20, 10)];
        let u = boolean_op(&a, &b, BoolOp::Union);
        assert_eq!(u, vec![Rect::new(0, 0, 20, 10)]);
    }

    #[test]
    fn self_overlapping_input_normalised() {
        let a = [
            Rect::new(0, 0, 10, 10),
            Rect::new(0, 0, 10, 10),
            Rect::new(5, 0, 15, 10),
        ];
        let u = boolean_op(&a, &[], BoolOp::Union);
        assert_eq!(u, vec![Rect::new(0, 0, 15, 10)]);
    }

    #[test]
    fn intersection_basic() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(5, 5, 15, 15)];
        let i = boolean_op(&a, &b, BoolOp::Intersection);
        assert_eq!(i, vec![Rect::new(5, 5, 10, 10)]);
    }

    #[test]
    fn intersection_of_touching_is_empty() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(10, 0, 20, 10)];
        assert!(boolean_op(&a, &b, BoolOp::Intersection).is_empty());
    }

    #[test]
    fn difference_carves_hole_frame() {
        let outer = [Rect::new(0, 0, 30, 30)];
        let hole = [Rect::new(10, 10, 20, 20)];
        let d = boolean_op(&outer, &hole, BoolOp::Difference);
        assert_eq!(area(&d), 900 - 100);
        assert_disjoint(&d);
        // The hole is not covered.
        for r in &d {
            assert!(!r.overlaps(&hole[0]));
        }
    }

    #[test]
    fn xor_symmetric_difference() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(5, 0, 15, 10)];
        let x = boolean_op(&a, &b, BoolOp::Xor);
        assert_eq!(area(&x), 100);
        assert_disjoint(&x);
    }

    #[test]
    fn degenerate_rects_ignored() {
        let a = [Rect::new(0, 0, 0, 10), Rect::new(0, 5, 10, 5)];
        assert!(boolean_op(&a, &[], BoolOp::Union).is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(boolean_op(&[], &[], BoolOp::Union).is_empty());
        let a = [Rect::new(0, 0, 10, 10)];
        assert_eq!(boolean_op(&a, &[], BoolOp::Union), a.to_vec());
        assert!(boolean_op(&[], &a, BoolOp::Difference).is_empty());
        assert_eq!(boolean_op(&a, &[], BoolOp::Difference), a.to_vec());
    }

    #[test]
    fn plus_shape_union() {
        // Horizontal and vertical bars crossing.
        let a = [Rect::new(0, 10, 30, 20)];
        let b = [Rect::new(10, 0, 20, 30)];
        let u = boolean_op(&a, &b, BoolOp::Union);
        assert_eq!(area(&u), 300 + 300 - 100);
        assert_disjoint(&u);
        let i = boolean_op(&a, &b, BoolOp::Intersection);
        assert_eq!(i, vec![Rect::new(10, 10, 20, 20)]);
    }

    #[test]
    fn checkerboard_union_area() {
        let mut a = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                if (i + j) % 2 == 0 {
                    a.push(Rect::new(i * 10, j * 10, i * 10 + 10, j * 10 + 10));
                }
            }
        }
        let u = boolean_op(&a, &[], BoolOp::Union);
        assert_eq!(area(&u), 32 * 100);
        assert_disjoint(&u);
    }

    #[test]
    fn difference_then_union_restores() {
        let a = [Rect::new(0, 0, 100, 100)];
        let b = [Rect::new(25, 25, 75, 75)];
        let d = boolean_op(&a, &b, BoolOp::Difference);
        let restored = boolean_op(&d, &b, BoolOp::Union);
        assert_eq!(area(&restored), 10_000);
    }
}
