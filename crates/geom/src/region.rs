//! Regions: canonical sets of disjoint rectangles with Boolean algebra.

use crate::boolean::{boolean_op, BoolOp};
use crate::{Coord, GeomError, GridIndex, Point, Polygon, Rect, Wire};

/// A (possibly disconnected, possibly hole-y) rectilinear area, stored as a
/// normalised list of disjoint axis-aligned rectangles.
///
/// `Region` is a *measure-theoretic* area: zero-area rectangles vanish and
/// two regions that merely touch have an empty intersection. Touch/abutment
/// predicates for connectivity live on [`Rect`] and in
/// [`crate::skeleton`].
///
/// # Example
///
/// ```
/// use diic_geom::{Rect, Region};
/// let plus = Region::from_rects([
///     Rect::new(0, 10, 30, 20),
///     Rect::new(10, 0, 20, 30),
/// ]);
/// assert_eq!(plus.area(), 500);
/// assert!(plus.contains_point(diic_geom::Point::new(15, 15)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region.
    pub fn empty() -> Self {
        Region { rects: Vec::new() }
    }

    /// A region covering a single rectangle.
    pub fn from_rect(r: Rect) -> Self {
        if r.is_degenerate() {
            Region::empty()
        } else {
            Region { rects: vec![r] }
        }
    }

    /// A region covering the union of arbitrary (possibly overlapping)
    /// rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let raw: Vec<Rect> = rects.into_iter().collect();
        Region {
            rects: boolean_op(&raw, &[], BoolOp::Union),
        }
    }

    /// A region covering a rectilinear polygon.
    ///
    /// # Errors
    ///
    /// [`GeomError::NotRectilinear`] if the polygon has non-axis-parallel
    /// edges.
    pub fn from_polygon(poly: &Polygon) -> Result<Self, GeomError> {
        Ok(Region::from_rects(poly.to_rects()?))
    }

    /// A region covering a Manhattan wire.
    pub fn from_wire(wire: &Wire) -> Self {
        Region::from_rects(wire.to_rects())
    }

    /// The disjoint rectangles of the region.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles in the canonical decomposition.
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// True if the region covers no area.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total covered area.
    pub fn area(&self) -> i128 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Bounding rectangle, or `None` if empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.bounding_union(r)))
    }

    /// True if `p` is inside or on the boundary of some rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains_point(p))
    }

    /// Union with another region.
    pub fn union(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Union),
        }
    }

    /// Intersection with another region.
    pub fn intersection(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Intersection),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Difference),
        }
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Xor),
        }
    }

    /// True if the regions share interior area.
    pub fn overlaps(&self, other: &Region) -> bool {
        // Cheap bbox rejection, then rect-pair test (regions are usually
        // small); fall back to a full intersection only when needed.
        match (self.bbox(), other.bbox()) {
            (Some(a), Some(b)) if a.overlaps(&b) => {}
            _ => return false,
        }
        self.rects
            .iter()
            .any(|ra| other.rects.iter().any(|rb| ra.overlaps(rb)))
    }

    /// True if the closed regions share at least one point (touching edges
    /// or corners count) — the predicate used for connectivity.
    pub fn touches(&self, other: &Region) -> bool {
        match (self.bbox(), other.bbox()) {
            (Some(a), Some(b)) if a.touches(&b) => {}
            _ => return false,
        }
        self.rects
            .iter()
            .any(|ra| other.rects.iter().any(|rb| ra.touches(rb)))
    }

    /// True if `other` is entirely covered by `self`.
    pub fn covers(&self, other: &Region) -> bool {
        other.difference(self).is_empty()
    }

    /// True if the closed region shares at least one point with `r`
    /// (touching edges or corners count) — the cheap single-rectangle
    /// form of [`Region::touches`], used by dirty-halo tests in the
    /// incremental checker.
    pub fn touches_rect(&self, r: &Rect) -> bool {
        match self.bbox() {
            Some(b) if b.touches(r) => {}
            _ => return false,
        }
        self.rects.iter().any(|own| own.touches(r))
    }

    /// The region inflated by `d` on every side: the union of every
    /// rectangle grown by `d` (the *halo* of the region). `d <= 0`
    /// returns the region unchanged — shrinking is [`crate::size::shrink`]'s
    /// job.
    pub fn inflate(&self, d: Coord) -> Region {
        if d <= 0 || self.rects.is_empty() {
            return self.clone();
        }
        Region::from_rects(
            self.rects
                .iter()
                .filter_map(|r| r.inflate(d))
                .collect::<Vec<_>>(),
        )
    }

    /// Splits the region into connected components (rectangles connected by
    /// shared edges or corners — closed-touch connectivity).
    ///
    /// Connectivity is discovered through a uniform-grid index (each
    /// rectangle only probes its spatial neighbourhood) and merged with a
    /// union-find, so the pass is near-linear in the rectangle count
    /// instead of the quadratic all-pairs scan it replaces. Components
    /// come out in a canonical order — ascending bounding-box corner,
    /// ties broken by the smallest member rectangle index — with each
    /// component's rectangles in their original (canonical decomposition)
    /// order.
    pub fn components(&self) -> Vec<Region> {
        let n = self.rects.len();
        if n <= 1 {
            return if n == 0 {
                Vec::new()
            } else {
                vec![self.clone()]
            };
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                // Path halving.
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        // Cell size from the typical rect extent so neighbourhood probes
        // stay local on both fine and coarse geometry.
        let typical = self
            .rects
            .iter()
            .take(64)
            .map(|r| (r.x2 - r.x1).min(r.y2 - r.y1))
            .max()
            .unwrap_or(1)
            .max(1);
        let mut index: GridIndex<u32> = GridIndex::new(typical.saturating_mul(4));
        for (i, r) in self.rects.iter().enumerate() {
            // Query before inserting: every touching pair (i, j) with
            // j < i is discovered exactly once, from i's probe.
            for &j in index.query(r) {
                let (ri, rj) = (find(&mut parent, i as u32), find(&mut parent, j));
                if ri != rj {
                    parent[ri as usize] = rj;
                }
            }
            index.insert(*r, i as u32);
        }
        // Group members per root, preserving ascending rect order within
        // each group (iteration is in index order).
        let mut groups: std::collections::HashMap<u32, Vec<Rect>> =
            std::collections::HashMap::new();
        let mut first_member: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i as u32);
            groups.entry(root).or_default().push(self.rects[i]);
            first_member.entry(root).or_insert(i);
        }
        let mut comps: Vec<(usize, Region)> = groups
            .into_iter()
            .map(|(root, rects)| (first_member[&root], Region { rects }))
            .collect();
        comps.sort_by_key(|(first, r)| {
            let b = r.bbox().expect("component is non-empty");
            (b.x1, b.y1, *first)
        });
        comps.into_iter().map(|(_, r)| r).collect()
    }

    /// Reference quadratic connectivity scan — the all-pairs algorithm
    /// [`Region::components`] replaced — returning the component count
    /// only. Kept (doc-hidden) so the bench ablation and the unit-test
    /// oracle share one reference implementation instead of drifting
    /// copies.
    #[doc(hidden)]
    pub fn components_count_pairwise(&self) -> usize {
        let rs = &self.rects;
        let n = rs.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], mut i: usize) -> usize {
            while p[i] != i {
                p[i] = p[p[i]];
                i = p[i];
            }
            i
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if rs[i].touches(&rs[j]) {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        (0..n)
            .map(|i| find(&mut parent, i))
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

impl FromIterator<Rect> for Region {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Region::from_rects(iter)
    }
}

impl Extend<Rect> for Region {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        let mut raw = std::mem::take(&mut self.rects);
        raw.extend(iter);
        self.rects = boolean_op(&raw, &[], BoolOp::Union);
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::from_rect(r)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Region[{} rects, area {}]",
            self.rect_count(),
            self.area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_region_identities() {
        let e = Region::empty();
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        assert!(e.is_empty());
        assert_eq!(e.area(), 0);
        assert_eq!(e.bbox(), None);
        assert_eq!(a.union(&e), a);
        assert!(a.intersection(&e).is_empty());
        assert_eq!(a.difference(&e), a);
    }

    #[test]
    fn union_area_inclusion_exclusion() {
        let a = Region::from_rect(Rect::new(0, 0, 100, 100));
        let b = Region::from_rect(Rect::new(50, 50, 150, 150));
        assert_eq!(a.union(&b).area(), 10_000 + 10_000 - 2_500);
        assert_eq!(a.intersection(&b).area(), 2_500);
        assert_eq!(a.xor(&b).area(), 15_000);
        assert_eq!(a.difference(&b).area(), 7_500);
    }

    #[test]
    fn covers_and_overlap() {
        let big = Region::from_rect(Rect::new(0, 0, 100, 100));
        let small = Region::from_rect(Rect::new(20, 20, 40, 40));
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.overlaps(&small));
        let apart = Region::from_rect(Rect::new(200, 0, 300, 100));
        assert!(!big.overlaps(&apart));
        assert!(!big.touches(&apart));
    }

    #[test]
    fn touch_without_overlap() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rect(Rect::new(10, 0, 20, 10));
        assert!(a.touches(&b));
        assert!(!a.overlaps(&b));
        assert!(a.intersection(&b).is_empty());
        // Corner touch.
        let c = Region::from_rect(Rect::new(10, 10, 20, 20));
        assert!(a.touches(&c));
    }

    #[test]
    fn components_split() {
        let r = Region::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(10, 0, 20, 10), // touches first -> same component
            Rect::new(100, 100, 110, 110),
        ]);
        let comps = r.components();
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn components_grid_pass_matches_pairwise_scan() {
        // A mix of corner-touching chains, isolated islands and a long
        // spanning bar, checked against the reference quadratic scan.
        let mut rects = Vec::new();
        for i in 0..12i64 {
            rects.push(Rect::new(i * 20, i * 20, i * 20 + 20, i * 20 + 20)); // corner chain
            rects.push(Rect::new(i * 50, 1000, i * 50 + 30, 1030)); // overlapping row
            rects.push(Rect::new(
                i * 100,
                2000 + i * 100,
                i * 100 + 10,
                2010 + i * 100,
            ));
        }
        rects.push(Rect::new(-500, 990, 1500, 995)); // bar under the row
        let region = Region::from_rects(rects);
        let comps = region.components();
        // Reference: the quadratic all-pairs scan (shared with the e17
        // bench ablation).
        assert_eq!(comps.len(), region.components_count_pairwise());
        // Every component's area sums back to the region.
        assert_eq!(comps.iter().map(|c| c.area()).sum::<i128>(), region.area());
        // Canonical order: ascending bbox corner.
        let keys: Vec<_> = comps
            .iter()
            .map(|c| {
                let b = c.bbox().unwrap();
                (b.x1, b.y1)
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn inflate_grows_halo() {
        let r = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(100, 0, 110, 10)]);
        let h = r.inflate(20);
        assert!(h.contains_point(Point::new(-20, -20)));
        assert!(h.contains_point(Point::new(130, 30)));
        assert!(!h.contains_point(Point::new(50, 50)));
        assert_eq!(r.inflate(0), r);
        assert!(Region::empty().inflate(100).is_empty());
        // A big enough halo fuses the parts.
        assert_eq!(r.inflate(50).components().len(), 1);
    }

    #[test]
    fn touches_rect_closed_semantics() {
        let r = Region::from_rect(Rect::new(0, 0, 10, 10));
        assert!(r.touches_rect(&Rect::new(10, 10, 20, 20)), "corner touch");
        assert!(r.touches_rect(&Rect::new(5, 5, 6, 6)), "containment");
        assert!(!r.touches_rect(&Rect::new(11, 11, 20, 20)));
        assert!(!Region::empty().touches_rect(&Rect::new(0, 0, 1, 1)));
    }

    #[test]
    fn from_polygon_l_shape() {
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(60, 0),
            Point::new(60, 20),
            Point::new(20, 20),
            Point::new(20, 60),
            Point::new(0, 60),
        ])
        .unwrap();
        let r = Region::from_polygon(&l).unwrap();
        assert_eq!(r.area() * 2, l.area2());
        assert!(r.contains_point(Point::new(10, 50)));
        assert!(!r.contains_point(Point::new(50, 50)));
    }

    #[test]
    fn from_wire() {
        let w = Wire::new(
            20,
            vec![Point::new(0, 0), Point::new(100, 0), Point::new(100, 100)],
        )
        .unwrap();
        let r = Region::from_wire(&w);
        // Two arm rects overlap in the corner square; union removes it once.
        assert_eq!(r.area(), 120 * 20 + 120 * 20 - 20 * 20);
    }

    #[test]
    fn extend_and_collect() {
        let mut r: Region = [Rect::new(0, 0, 10, 10)].into_iter().collect();
        r.extend([Rect::new(5, 0, 15, 10)]);
        assert_eq!(r.area(), 150);
    }

    #[test]
    fn degenerate_rect_is_empty_region() {
        assert!(Region::from_rect(Rect::new(5, 0, 5, 10)).is_empty());
    }
}
