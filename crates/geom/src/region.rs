//! Regions: canonical sets of disjoint rectangles with Boolean algebra.

use crate::boolean::{boolean_op, BoolOp};
use crate::{GeomError, Point, Polygon, Rect, Wire};

/// A (possibly disconnected, possibly hole-y) rectilinear area, stored as a
/// normalised list of disjoint axis-aligned rectangles.
///
/// `Region` is a *measure-theoretic* area: zero-area rectangles vanish and
/// two regions that merely touch have an empty intersection. Touch/abutment
/// predicates for connectivity live on [`Rect`] and in
/// [`crate::skeleton`].
///
/// # Example
///
/// ```
/// use diic_geom::{Rect, Region};
/// let plus = Region::from_rects([
///     Rect::new(0, 10, 30, 20),
///     Rect::new(10, 0, 20, 30),
/// ]);
/// assert_eq!(plus.area(), 500);
/// assert!(plus.contains_point(diic_geom::Point::new(15, 15)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region.
    pub fn empty() -> Self {
        Region { rects: Vec::new() }
    }

    /// A region covering a single rectangle.
    pub fn from_rect(r: Rect) -> Self {
        if r.is_degenerate() {
            Region::empty()
        } else {
            Region { rects: vec![r] }
        }
    }

    /// A region covering the union of arbitrary (possibly overlapping)
    /// rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let raw: Vec<Rect> = rects.into_iter().collect();
        Region {
            rects: boolean_op(&raw, &[], BoolOp::Union),
        }
    }

    /// A region covering a rectilinear polygon.
    ///
    /// # Errors
    ///
    /// [`GeomError::NotRectilinear`] if the polygon has non-axis-parallel
    /// edges.
    pub fn from_polygon(poly: &Polygon) -> Result<Self, GeomError> {
        Ok(Region::from_rects(poly.to_rects()?))
    }

    /// A region covering a Manhattan wire.
    pub fn from_wire(wire: &Wire) -> Self {
        Region::from_rects(wire.to_rects())
    }

    /// The disjoint rectangles of the region.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles in the canonical decomposition.
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// True if the region covers no area.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total covered area.
    pub fn area(&self) -> i128 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Bounding rectangle, or `None` if empty.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.rects.iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.bounding_union(r)))
    }

    /// True if `p` is inside or on the boundary of some rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains_point(p))
    }

    /// Union with another region.
    pub fn union(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Union),
        }
    }

    /// Intersection with another region.
    pub fn intersection(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Intersection),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Difference),
        }
    }

    /// Symmetric difference.
    pub fn xor(&self, other: &Region) -> Region {
        Region {
            rects: boolean_op(&self.rects, &other.rects, BoolOp::Xor),
        }
    }

    /// True if the regions share interior area.
    pub fn overlaps(&self, other: &Region) -> bool {
        // Cheap bbox rejection, then rect-pair test (regions are usually
        // small); fall back to a full intersection only when needed.
        match (self.bbox(), other.bbox()) {
            (Some(a), Some(b)) if a.overlaps(&b) => {}
            _ => return false,
        }
        self.rects
            .iter()
            .any(|ra| other.rects.iter().any(|rb| ra.overlaps(rb)))
    }

    /// True if the closed regions share at least one point (touching edges
    /// or corners count) — the predicate used for connectivity.
    pub fn touches(&self, other: &Region) -> bool {
        match (self.bbox(), other.bbox()) {
            (Some(a), Some(b)) if a.touches(&b) => {}
            _ => return false,
        }
        self.rects
            .iter()
            .any(|ra| other.rects.iter().any(|rb| ra.touches(rb)))
    }

    /// True if `other` is entirely covered by `self`.
    pub fn covers(&self, other: &Region) -> bool {
        other.difference(self).is_empty()
    }

    /// Splits the region into connected components (rectangles connected by
    /// shared edges or corners — closed-touch connectivity).
    pub fn components(&self) -> Vec<Region> {
        let n = self.rects.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if self.rects[i].touches(&self.rects[j]) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<Rect>> =
            std::collections::HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(self.rects[i]);
        }
        let mut comps: Vec<Region> = groups.into_values().map(|rects| Region { rects }).collect();
        comps.sort_by_key(|r| r.bbox().map(|b| (b.x1, b.y1)));
        comps
    }
}

impl FromIterator<Rect> for Region {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Region::from_rects(iter)
    }
}

impl Extend<Rect> for Region {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        let mut raw = std::mem::take(&mut self.rects);
        raw.extend(iter);
        self.rects = boolean_op(&raw, &[], BoolOp::Union);
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::from_rect(r)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Region[{} rects, area {}]",
            self.rect_count(),
            self.area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_region_identities() {
        let e = Region::empty();
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        assert!(e.is_empty());
        assert_eq!(e.area(), 0);
        assert_eq!(e.bbox(), None);
        assert_eq!(a.union(&e), a);
        assert!(a.intersection(&e).is_empty());
        assert_eq!(a.difference(&e), a);
    }

    #[test]
    fn union_area_inclusion_exclusion() {
        let a = Region::from_rect(Rect::new(0, 0, 100, 100));
        let b = Region::from_rect(Rect::new(50, 50, 150, 150));
        assert_eq!(a.union(&b).area(), 10_000 + 10_000 - 2_500);
        assert_eq!(a.intersection(&b).area(), 2_500);
        assert_eq!(a.xor(&b).area(), 15_000);
        assert_eq!(a.difference(&b).area(), 7_500);
    }

    #[test]
    fn covers_and_overlap() {
        let big = Region::from_rect(Rect::new(0, 0, 100, 100));
        let small = Region::from_rect(Rect::new(20, 20, 40, 40));
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert!(big.overlaps(&small));
        let apart = Region::from_rect(Rect::new(200, 0, 300, 100));
        assert!(!big.overlaps(&apart));
        assert!(!big.touches(&apart));
    }

    #[test]
    fn touch_without_overlap() {
        let a = Region::from_rect(Rect::new(0, 0, 10, 10));
        let b = Region::from_rect(Rect::new(10, 0, 20, 10));
        assert!(a.touches(&b));
        assert!(!a.overlaps(&b));
        assert!(a.intersection(&b).is_empty());
        // Corner touch.
        let c = Region::from_rect(Rect::new(10, 10, 20, 20));
        assert!(a.touches(&c));
    }

    #[test]
    fn components_split() {
        let r = Region::from_rects([
            Rect::new(0, 0, 10, 10),
            Rect::new(10, 0, 20, 10), // touches first -> same component
            Rect::new(100, 100, 110, 110),
        ]);
        let comps = r.components();
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn from_polygon_l_shape() {
        let l = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(60, 0),
            Point::new(60, 20),
            Point::new(20, 20),
            Point::new(20, 60),
            Point::new(0, 60),
        ])
        .unwrap();
        let r = Region::from_polygon(&l).unwrap();
        assert_eq!(r.area() * 2, l.area2());
        assert!(r.contains_point(Point::new(10, 50)));
        assert!(!r.contains_point(Point::new(50, 50)));
    }

    #[test]
    fn from_wire() {
        let w = Wire::new(
            20,
            vec![Point::new(0, 0), Point::new(100, 0), Point::new(100, 100)],
        )
        .unwrap();
        let r = Region::from_wire(&w);
        // Two arm rects overlap in the corner square; union removes it once.
        assert_eq!(r.area(), 120 * 20 + 120 * 20 - 20 * 20);
    }

    #[test]
    fn extend_and_collect() {
        let mut r: Region = [Rect::new(0, 0, 10, 10)].into_iter().collect();
        r.extend([Rect::new(5, 0, 15, 10)]);
        assert_eq!(r.area(), 150);
    }

    #[test]
    fn degenerate_rect_is_empty_region() {
        assert!(Region::from_rect(Rect::new(5, 0, 5, 10)).is_empty());
    }
}
