//! Batch kernels over rectangle column slices.
//!
//! The columnar `ChipView` (diic-core) stores per-element geometry as
//! contiguous runs inside shared arenas: every element's covered
//! rectangles and skeleton rectangles are `(offset, len)` slices of one
//! `Vec<Rect>`, and the per-element bounding boxes form one dense
//! column. The predicates the pipeline evaluates per candidate pair —
//! touch, overlap, closest approach — and the per-tile candidate
//! filters then become loops over plain `&[Rect]` slices with no
//! pointer chasing, which is what this module provides.
//!
//! Two shapes of kernel live here:
//!
//! * **pair sweeps** ([`any_touch`], [`any_overlap`],
//!   [`closest_approach`]) — all-pairs predicates between two short
//!   rect runs (an element is a handful of rectangles);
//! * **run filters** ([`touching_in_run`]) — one probe rectangle
//!   against a contiguous bbox run, appending the hit indices to a
//!   caller-owned scratch vector with a branch-free compaction loop
//!   (write the candidate unconditionally, advance the length by the
//!   predicate), so the inner loop has no data-dependent branches for
//!   the compiler to serialise on.

use crate::size::SizingMode;
use crate::spacing::gap_box;
use crate::width::isqrt;
use crate::{Coord, Rect};

/// True if any rectangle of `a` touches (shares at least a point with)
/// any rectangle of `b` — the closed-set contact sweep behind the
/// connection stage's touch test.
pub fn any_touch(a: &[Rect], b: &[Rect]) -> bool {
    a.iter().any(|ra| b.iter().any(|rb| ra.touches(rb)))
}

/// True if any rectangle of `a` shares interior area with any rectangle
/// of `b`. Over skeleton runs in the doubled-and-inflated grid this *is*
/// the paper's legal-connection criterion (see
/// [`crate::skeleton::Skeleton`]); over element runs it is the Fig. 8
/// implied-device overlap test.
pub fn any_overlap(a: &[Rect], b: &[Rect]) -> bool {
    a.iter().any(|ra| b.iter().any(|rb| ra.overlaps(rb)))
}

/// Closest approach between two rect runs: the minimum pairwise
/// distance under `mode` and the tight [`gap_box`] marker of the
/// closest pair. Returns `None` only for empty runs.
///
/// Distances are compared in squared form (`i128` — cannot overflow) so
/// the inner loop is comparison-only; the single winning pair pays the
/// square root.
pub fn closest_approach(a: &[Rect], b: &[Rect], mode: SizingMode) -> Option<(Coord, Rect)> {
    let mut best: Option<(i128, Rect)> = None;
    for ra in a {
        for rb in b {
            let d2 = match mode {
                SizingMode::Euclidean => ra.dist_sq(rb),
                SizingMode::Orthogonal => {
                    let d = ra.dist_linf(rb);
                    d as i128 * d as i128
                }
            };
            if best.is_none_or(|(bd, _)| d2 < bd) {
                best = Some((d2, gap_box(ra, rb)));
            }
        }
    }
    best.map(|(d2, marker)| (isqrt(d2), marker))
}

/// Appends `base + i` to `out` for every rectangle `run[i]` that
/// touches `probe` — the grid-tile candidate filter over a contiguous
/// bbox run.
///
/// The loop is a branch-free compaction: each candidate index is
/// written unconditionally into reserved scratch space and the live
/// length advances by the predicate value, so no conditional branch
/// depends on the geometry. `out` is a scratch arena the caller reuses
/// across tiles (existing contents are kept; hits are appended).
///
/// # The `u32` element-id ceiling
///
/// Candidate indices are `u32` throughout the pipeline — halving
/// candidate-buffer bandwidth is the point of the columnar layout — so
/// a chip view is capped at `u32::MAX` (~4.3 × 10⁹) flattened
/// elements. `10⁷`-element mega chips sit three orders of magnitude
/// below the ceiling; this guard exists so that when a future caller
/// does cross it, the failure is a checked panic at the filter rather
/// than silently wrapped candidate ids aliasing unrelated elements.
///
/// # Panics
///
/// Panics if `base + run.len() - 1` would overflow `u32`.
pub fn touching_in_run(run: &[Rect], probe: &Rect, base: u32, out: &mut Vec<u32>) {
    // Check once per run, not per rectangle: the `base + i` additions in
    // the loop below then cannot wrap.
    assert!(
        run.is_empty() || u32::try_from(run.len() - 1).is_ok_and(|n| base.checked_add(n).is_some()),
        "element ids exceed the u32 ceiling: base {} + run of {}",
        base,
        run.len()
    );
    let start = out.len();
    out.resize(start + run.len(), 0);
    let scratch = &mut out[start..];
    let mut hits = 0usize;
    for (i, r) in run.iter().enumerate() {
        scratch[hits] = base + i as u32;
        let hit = (r.x1 <= probe.x2) & (probe.x1 <= r.x2) & (r.y1 <= probe.y2) & (probe.y1 <= r.y2);
        hits += hit as usize;
    }
    out.truncate(start + hits);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_sweeps_match_scalar_predicates() {
        let a = [Rect::new(0, 0, 10, 10), Rect::new(20, 0, 30, 10)];
        let b = [Rect::new(10, 0, 15, 10)];
        assert!(any_touch(&a, &b)); // edge contact with a[0]
        assert!(!any_overlap(&a, &b));
        let c = [Rect::new(5, 5, 12, 12)];
        assert!(any_overlap(&a, &c));
        assert!(!any_touch(&a, &[Rect::new(100, 100, 110, 110)]));
        assert!(!any_touch(&[], &b) && !any_overlap(&a, &[]));
    }

    #[test]
    fn closest_approach_picks_the_closest_pair() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(40, 0, 50, 10), Rect::new(13, 0, 20, 10)];
        let (d, marker) = closest_approach(&a, &b, SizingMode::Euclidean).unwrap();
        assert_eq!(d, 3);
        assert_eq!(marker, gap_box(&a[0], &b[1]));
        // Orthogonal mode measures L∞.
        let diag = [Rect::new(13, 14, 20, 20)];
        let (d2, _) = closest_approach(&a, &diag, SizingMode::Euclidean).unwrap();
        assert_eq!(d2, 5);
        let (dinf, _) = closest_approach(&a, &diag, SizingMode::Orthogonal).unwrap();
        assert_eq!(dinf, 4);
        assert!(closest_approach(&[], &b, SizingMode::Euclidean).is_none());
    }

    #[test]
    fn touching_in_run_appends_hit_indices() {
        let run = [
            Rect::new(0, 0, 10, 10),
            Rect::new(50, 50, 60, 60),
            Rect::new(10, 0, 20, 10), // touches the probe's right edge
            Rect::new(11, 0, 20, 10), // one past touching
        ];
        let probe = Rect::new(0, 0, 10, 10);
        let mut out = vec![7u32];
        touching_in_run(&run, &probe, 100, &mut out);
        assert_eq!(out, vec![7, 100, 102]);
        // Matches the scalar predicate over every index.
        for (i, r) in run.iter().enumerate() {
            assert_eq!(out.contains(&(100 + i as u32)), r.touches(&probe));
        }
    }

    #[test]
    fn touching_in_run_accepts_ids_at_the_ceiling() {
        let run = [Rect::new(0, 0, 1, 1), Rect::new(0, 0, 1, 1)];
        let probe = Rect::new(0, 0, 1, 1);
        let mut out = Vec::new();
        touching_in_run(&run, &probe, u32::MAX - 1, &mut out);
        assert_eq!(out, vec![u32::MAX - 1, u32::MAX]);
        // An empty run never overflows regardless of base.
        touching_in_run(&[], &probe, u32::MAX, &mut out);
    }

    #[test]
    #[should_panic(expected = "u32 ceiling")]
    fn touching_in_run_rejects_ids_past_the_ceiling() {
        let run = [Rect::new(0, 0, 1, 1), Rect::new(0, 0, 1, 1)];
        let mut out = Vec::new();
        touching_in_run(&run, &Rect::new(0, 0, 1, 1), u32::MAX, &mut out);
    }
}
