//! Axis-aligned rectangles.

use crate::{Coord, Point, Vector};
use std::fmt;

/// A closed axis-aligned rectangle `[x1, x2] × [y1, y2]`.
///
/// Degenerate rectangles (`x1 == x2` and/or `y1 == y2`) are permitted: they
/// arise naturally as the *skeletons* of minimum-width elements (paper
/// Fig. 11) and participate in touch/overlap predicates like any other
/// rectangle.
///
/// # Example
///
/// ```
/// use diic_geom::Rect;
/// let r = Rect::new(0, 0, 40, 20);
/// assert_eq!(r.width(), 40);
/// assert_eq!(r.height(), 20);
/// assert_eq!(r.area(), 800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x1: Coord,
    /// Bottom edge.
    pub y1: Coord,
    /// Right edge (`>= x1`).
    pub x2: Coord,
    /// Top edge (`>= y1`).
    pub y2: Coord,
}

impl Rect {
    /// Creates a rectangle, normalising the corner order.
    pub fn new(x1: Coord, y1: Coord, x2: Coord, y2: Coord) -> Self {
        Rect {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
        }
    }

    /// Creates a rectangle from a centre point and full side lengths
    /// (the CIF `B length width center` convention).
    ///
    /// Odd lengths are truncated toward the centre (CIF layouts use even
    /// dimensions in practice).
    pub fn from_center(center: Point, length: Coord, width: Coord) -> Self {
        Rect::new(
            center.x - length / 2,
            center.y - width / 2,
            center.x - length / 2 + length,
            center.y - width / 2 + width,
        )
    }

    /// Creates the rectangle spanning two corner points.
    pub fn from_points(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Horizontal extent.
    pub fn width(&self) -> Coord {
        self.x2 - self.x1
    }

    /// Vertical extent.
    pub fn height(&self) -> Coord {
        self.y2 - self.y1
    }

    /// The smaller of width and height — the quantity checked by minimum
    /// width rules on box elements.
    pub fn min_side(&self) -> Coord {
        self.width().min(self.height())
    }

    /// Area in square database units (`i128`: cannot overflow).
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// True if the rectangle has zero area (a segment or point).
    pub fn is_degenerate(&self) -> bool {
        self.x1 == self.x2 || self.y1 == self.y2
    }

    /// Centre point (rounded toward negative infinity on odd extents).
    pub fn center(&self) -> Point {
        Point::new(self.x1 + self.width() / 2, self.y1 + self.height() / 2)
    }

    /// Bottom-left corner.
    pub fn lower_left(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// Top-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.x2, self.y2)
    }

    /// The four corner points, counter-clockwise from bottom-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.x1, self.y1),
            Point::new(self.x2, self.y1),
            Point::new(self.x2, self.y2),
            Point::new(self.x1, self.y2),
        ]
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        self.x1 <= p.x && p.x <= self.x2 && self.y1 <= p.y && p.y <= self.y2
    }

    /// True if `p` lies strictly inside.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        self.x1 < p.x && p.x < self.x2 && self.y1 < p.y && p.y < self.y2
    }

    /// True if `other` lies entirely within `self` (boundaries may touch).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x1 <= other.x1 && other.x2 <= self.x2 && self.y1 <= other.y1 && other.y2 <= self.y2
    }

    /// True if the closed rectangles share at least one point
    /// (touching edges or corners count).
    pub fn touches(&self, other: &Rect) -> bool {
        self.x1 <= other.x2 && other.x1 <= self.x2 && self.y1 <= other.y2 && other.y1 <= self.y2
    }

    /// True if the rectangles share interior area (touching does not count).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x1 < other.x2 && other.x1 < self.x2 && self.y1 < other.y2 && other.y1 < self.y2
    }

    /// Intersection of the closed rectangles, if non-empty
    /// (may be degenerate when they merely touch).
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.touches(other) {
            return None;
        }
        Some(Rect {
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
            x2: self.x2.min(other.x2),
            y2: self.y2.min(other.y2),
        })
    }

    /// Smallest rectangle containing both.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        Rect {
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
            x2: self.x2.max(other.x2),
            y2: self.y2.max(other.y2),
        }
    }

    /// Expands (positive `d`) or shrinks (negative `d`) every side by `d`.
    ///
    /// Shrinking below zero extent returns `None`.
    pub fn inflate(&self, d: Coord) -> Option<Rect> {
        let r = Rect {
            x1: self.x1 - d,
            y1: self.y1 - d,
            x2: self.x2 + d,
            y2: self.y2 + d,
        };
        if r.x1 <= r.x2 && r.y1 <= r.y2 {
            Some(r)
        } else {
            None
        }
    }

    /// Translates the rectangle by `v`.
    pub fn translate(&self, v: Vector) -> Rect {
        Rect {
            x1: self.x1 + v.x,
            y1: self.y1 + v.y,
            x2: self.x2 + v.x,
            y2: self.y2 + v.y,
        }
    }

    /// Component-wise gap to `other`: `(dx, dy)` are the separations along
    /// each axis (zero when the projections overlap).
    ///
    /// From these, any metric distance follows:
    /// L2² = dx² + dy², L∞ = max(dx, dy), L1 = dx + dy.
    pub fn gap(&self, other: &Rect) -> (Coord, Coord) {
        let dx = (other.x1 - self.x2).max(self.x1 - other.x2).max(0);
        let dy = (other.y1 - self.y2).max(self.y1 - other.y2).max(0);
        (dx, dy)
    }

    /// Squared Euclidean distance between the closed rectangles
    /// (zero when they touch or overlap).
    pub fn dist_sq(&self, other: &Rect) -> i128 {
        let (dx, dy) = self.gap(other);
        dx as i128 * dx as i128 + dy as i128 * dy as i128
    }

    /// Chebyshev (L∞) distance between the closed rectangles.
    pub fn dist_linf(&self, other: &Rect) -> Coord {
        let (dx, dy) = self.gap(other);
        dx.max(dy)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} .. {},{}]", self.x1, self.y1, self.x2, self.y2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        let r = Rect::new(10, 20, 0, 0);
        assert_eq!(r, Rect::new(0, 0, 10, 20));
    }

    #[test]
    fn from_center_matches_cif_convention() {
        // CIF: B 40 20 10,10 — length(x)=40, width(y)=20, centred at (10,10).
        let r = Rect::from_center(Point::new(10, 10), 40, 20);
        assert_eq!(r, Rect::new(-10, 0, 30, 20));
    }

    #[test]
    fn containment_and_touching() {
        let big = Rect::new(0, 0, 100, 100);
        let small = Rect::new(10, 10, 20, 20);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        let adjacent = Rect::new(100, 0, 200, 100);
        assert!(big.touches(&adjacent));
        assert!(!big.overlaps(&adjacent));
        let corner = Rect::new(100, 100, 120, 120);
        assert!(big.touches(&corner));
        let apart = Rect::new(101, 0, 200, 100);
        assert!(!big.touches(&apart));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        let edge = Rect::new(10, 0, 20, 10);
        let i = a.intersection(&edge).unwrap();
        assert!(i.is_degenerate());
        assert_eq!(i, Rect::new(10, 0, 10, 10));
        assert_eq!(a.intersection(&Rect::new(20, 20, 30, 30)), None);
    }

    #[test]
    fn gap_and_distances() {
        let a = Rect::new(0, 0, 10, 10);
        let right = Rect::new(13, 0, 20, 10);
        assert_eq!(a.gap(&right), (3, 0));
        assert_eq!(a.dist_sq(&right), 9);
        assert_eq!(a.dist_linf(&right), 3);
        // Diagonal gap: corner-to-corner.
        let diag = Rect::new(13, 14, 20, 20);
        assert_eq!(a.gap(&diag), (3, 4));
        assert_eq!(a.dist_sq(&diag), 25);
        assert_eq!(a.dist_linf(&diag), 4);
        // Overlapping rectangles have zero distance.
        let over = Rect::new(5, 5, 15, 15);
        assert_eq!(a.dist_sq(&over), 0);
    }

    #[test]
    fn inflate_and_shrink() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.inflate(5), Some(Rect::new(-5, -5, 15, 15)));
        assert_eq!(r.inflate(-5), Some(Rect::new(5, 5, 5, 5)));
        assert_eq!(r.inflate(-6), None);
    }

    #[test]
    fn degenerate_skeleton_touch() {
        // A minimum-width box shrinks to a degenerate segment; touching
        // skeletons must still be detected (paper Fig. 11).
        let seg_a = Rect::new(0, 5, 10, 5);
        let seg_b = Rect::new(10, 5, 20, 5);
        assert!(seg_a.touches(&seg_b));
        assert!(seg_a.is_degenerate());
    }

    #[test]
    fn area_min_side() {
        let r = Rect::new(0, 0, 30, 20);
        assert_eq!(r.area(), 600);
        assert_eq!(r.min_side(), 20);
        assert_eq!(r.center(), Point::new(15, 10));
    }
}
