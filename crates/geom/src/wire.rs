//! Wires: centre-line paths with a width (the CIF `W` element).
//!
//! The DIIC design style is Manhattan; wires here use **square ends**
//! extended by half the width, the convention of Manhattan layout systems
//! (CIF's original definition uses round ends, which matters only for
//! non-Manhattan wires — documented substitution, see `DESIGN.md`).

use crate::{Coord, GeomError, Point, Rect, Segment};

/// A wire: a polyline of centre points swept with a square brush of the
/// given full `width`.
///
/// # Example
///
/// ```
/// use diic_geom::{Point, Wire, Rect};
/// let w = Wire::new(200, vec![Point::new(0, 0), Point::new(1000, 0)]).unwrap();
/// assert_eq!(w.to_rects(), vec![Rect::new(-100, -100, 1100, 100)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Wire {
    width: Coord,
    points: Vec<Point>,
}

impl Wire {
    /// Creates a wire.
    ///
    /// # Errors
    ///
    /// [`GeomError::InvalidWire`] when `width <= 0` or `points` is empty.
    pub fn new(width: Coord, points: Vec<Point>) -> Result<Self, GeomError> {
        if width <= 0 || points.is_empty() {
            return Err(GeomError::InvalidWire);
        }
        Ok(Wire { width, points })
    }

    /// The full width of the wire.
    pub fn width(&self) -> Coord {
        self.width
    }

    /// The centre-line points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The centre-line segments (empty for a single-point wire).
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// True if every segment is axis-parallel.
    pub fn is_manhattan(&self) -> bool {
        self.segments().all(|s| s.is_axis_parallel())
    }

    /// The rectangles covered by a **Manhattan** wire: one per segment, each
    /// the segment expanded by `width/2` on every side (square ends). A
    /// single-point wire yields one square.
    ///
    /// Non-Manhattan segments are covered by their expanded bounding box —
    /// an over-approximation; the DIIC pipeline rejects non-Manhattan wires
    /// before geometry checks.
    pub fn to_rects(&self) -> Vec<Rect> {
        let h = self.width / 2;
        if self.points.len() == 1 {
            let p = self.points[0];
            return vec![Rect::new(
                p.x - h,
                p.y - h,
                p.x - h + self.width,
                p.y - h + self.width,
            )];
        }
        self.segments()
            .map(|s| {
                let bb = s.bbox();
                Rect::new(bb.x1 - h, bb.y1 - h, bb.x2 + h, bb.y2 + h)
            })
            .collect()
    }

    /// Axis-aligned bounding rectangle of the covered area.
    pub fn bbox(&self) -> Rect {
        let rects = self.to_rects();
        let mut bb = rects[0];
        for r in &rects[1..] {
            bb = bb.bounding_union(r);
        }
        bb
    }

    /// The skeleton of the wire for skeletal-connectivity checking (paper
    /// Fig. 11): the wire shrunk by `half_min_width` on every side. For a
    /// minimum-width wire this degenerates to the centre line.
    ///
    /// Returns the covered rectangles of the shrunk wire (possibly
    /// degenerate), or an empty vector if the wire is narrower than the
    /// minimum width (such wires are already width violations).
    pub fn skeleton_rects(&self, half_min_width: Coord) -> Vec<Rect> {
        let h = self.width / 2 - half_min_width;
        if h < 0 {
            return Vec::new();
        }
        if self.points.len() == 1 {
            let p = self.points[0];
            return vec![Rect::new(p.x - h, p.y - h, p.x + h, p.y + h)];
        }
        self.segments()
            .map(|s| {
                let bb = s.bbox();
                Rect::new(bb.x1 - h, bb.y1 - h, bb.x2 + h, bb.y2 + h)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn invalid_wires_rejected() {
        assert!(Wire::new(0, vec![p(0, 0)]).is_err());
        assert!(Wire::new(-5, vec![p(0, 0)]).is_err());
        assert!(Wire::new(100, vec![]).is_err());
    }

    #[test]
    fn single_point_wire_is_square() {
        let w = Wire::new(100, vec![p(50, 50)]).unwrap();
        assert_eq!(w.to_rects(), vec![Rect::new(0, 0, 100, 100)]);
    }

    #[test]
    fn l_shaped_wire_covers_both_arms() {
        let w = Wire::new(20, vec![p(0, 0), p(100, 0), p(100, 100)]).unwrap();
        let rects = w.to_rects();
        assert_eq!(rects.len(), 2);
        assert_eq!(rects[0], Rect::new(-10, -10, 110, 10));
        assert_eq!(rects[1], Rect::new(90, -10, 110, 110));
        assert!(w.is_manhattan());
        assert_eq!(w.bbox(), Rect::new(-10, -10, 110, 110));
    }

    #[test]
    fn min_width_wire_skeleton_is_centerline() {
        let w = Wire::new(20, vec![p(0, 0), p(100, 0)]).unwrap();
        let skel = w.skeleton_rects(10);
        assert_eq!(skel, vec![Rect::new(0, 0, 100, 0)]);
        assert!(skel[0].is_degenerate());
    }

    #[test]
    fn wide_wire_skeleton_retains_area() {
        let w = Wire::new(40, vec![p(0, 0), p(100, 0)]).unwrap();
        let skel = w.skeleton_rects(10);
        assert_eq!(skel, vec![Rect::new(-10, -10, 110, 10)]);
    }

    #[test]
    fn under_width_wire_has_no_skeleton() {
        let w = Wire::new(10, vec![p(0, 0), p(100, 0)]).unwrap();
        assert!(w.skeleton_rects(10).is_empty());
    }

    #[test]
    fn diagonal_wire_flagged_non_manhattan() {
        let w = Wire::new(10, vec![p(0, 0), p(50, 50)]).unwrap();
        assert!(!w.is_manhattan());
    }
}
