//! `deckc` — compile rule decks from the command line.
//!
//! ```text
//! cargo run -p diic-deck --example deckc -- crates/deck/decks/nmos.deck
//! ```
//!
//! Compiles each file argument and prints a one-line summary, or the
//! rendered diagnostic on failure. Exit status is non-zero if any deck
//! fails — CI uses this as the every-checked-in-deck smoke test.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: deckc <file.deck>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match diic_deck::compile_str(&source) {
            Ok(tech) => println!(
                "{path}: ok — technology `{}` (lambda {}), {} layers, {} spacing rules, {} devices",
                tech.name(),
                tech.lambda(),
                tech.layers().len(),
                tech.rules().len(),
                tech.devices().len()
            ),
            Err(e) => {
                eprint!("{}", e.render(path, &source));
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
