//! The deck AST: span-carrying and semantic.
//!
//! Nodes store *meaning*, not surface syntax — the shorthand
//! `space a b 3 lambda;` and the empty-block form parse to the same
//! [`SpaceDecl`] — so the canonical printer ([`crate::printer::print`])
//! round-trips: `parse ∘ print ∘ parse = parse` up to spans
//! ([`Deck::strip_spans`] zeroes them for comparison). Statements keep
//! their source order; layer declaration order is load-bearing (it fixes
//! `LayerId` assignment at compile).

use crate::diag::Span;
use diic_tech::{DeviceClass, LayerKind};

/// A node plus the source span it was parsed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned<T> {
    /// The node.
    pub node: T,
    /// Its byte range in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wraps a node.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

/// A distance literal: `num[/den] [lambda]`. Resolved to database units
/// at compile time (`num × λ / den` when the `lambda` suffix is present,
/// `num / den` otherwise); a non-integral result is a compile error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dist {
    /// Numerator.
    pub num: i64,
    /// Denominator (1 unless the `/den` form was written).
    pub den: i64,
    /// True if the `lambda` suffix was present.
    pub lambda: bool,
    /// Source range of the whole literal.
    pub span: Span,
}

/// A parsed rule deck: one `tech "name" { … }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deck {
    /// Technology name (the string literal after `tech`).
    pub name: Spanned<String>,
    /// λ in database units (the mandatory first `lambda N;` statement).
    pub lambda: Spanned<i64>,
    /// The remaining statements, in source order.
    pub statements: Vec<Stmt>,
}

/// A top-level statement inside the `tech` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `layer name { cif "…"; kind …; min_width …; }`
    Layer(LayerDecl),
    /// `space a b d;` or `space a b d { same_net …; unrelated_device …; }`
    Space(SpaceDecl),
    /// `same_mask layer d;`
    SameMask(SameMaskDecl),
    /// `device NAME class { … }`
    Device(DeviceDecl),
    /// `power NET…;`
    Power(Vec<Spanned<String>>),
    /// `ground NET…;`
    Ground(Vec<Spanned<String>>),
    /// `bus_prefix "…";`
    BusPrefix(Spanned<String>),
    /// `io_prefix "…";`
    IoPrefix(Spanned<String>),
}

/// A mask layer declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDecl {
    /// Canonical layer name (e.g. `diff`).
    pub name: Spanned<String>,
    /// CIF layer name (e.g. `ND`).
    pub cif: Spanned<String>,
    /// Layer kind.
    pub kind: Spanned<LayerKind>,
    /// Minimum interconnect width.
    pub min_width: Dist,
    /// Source range of the whole declaration.
    pub span: Span,
}

/// One entry of the Fig. 12 interaction matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceDecl {
    /// First layer.
    pub a: Spanned<String>,
    /// Second layer.
    pub b: Spanned<String>,
    /// Different-net spacing.
    pub diff_net: Dist,
    /// Same-net spacing (`None` = unchecked, the usual case).
    pub same_net: Option<Dist>,
    /// Spacing against unrelated transistor parts (`None` = falls back
    /// to `diff_net`).
    pub unrelated_device: Option<Dist>,
    /// Source range of the whole declaration.
    pub span: Span,
}

/// A same-mask (multi-patterning) spacing rule for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SameMaskDecl {
    /// The layer whose features must decompose onto two masks.
    pub layer: Spanned<String>,
    /// Features closer than this (but not touching) conflict.
    pub min_space: Dist,
    /// Source range of the whole declaration.
    pub span: Span,
}

/// A device archetype declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDecl {
    /// `9D` type name (e.g. `NMOS_ENH`).
    pub name: Spanned<String>,
    /// Device class.
    pub class: Spanned<DeviceClass>,
    /// Internal rules, overrides, and terminals, in source order.
    pub items: Vec<DeviceItem>,
    /// Source range of the whole declaration.
    pub span: Span,
}

/// One item inside a device block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceItem {
    /// `requires_overlap a b;`
    RequiresOverlap {
        /// First overlapping layer.
        a: Spanned<String>,
        /// Second overlapping layer.
        b: Spanned<String>,
    },
    /// `requires_layer l;`
    RequiresLayer {
        /// The required layer.
        layer: Spanned<String>,
    },
    /// `enclosure inner in outer margin;`
    Enclosure {
        /// Enclosed layer.
        inner: Spanned<String>,
        /// Enclosing layer.
        outer: Spanned<String>,
        /// Required margin.
        margin: Dist,
    },
    /// `overlap_enclosure a b in outer margin;`
    OverlapEnclosure {
        /// First layer of the overlap.
        a: Spanned<String>,
        /// Second layer of the overlap.
        b: Spanned<String>,
        /// Layer enclosing the overlap region.
        outer: Spanned<String>,
        /// Required margin.
        margin: Dist,
    },
    /// `gate_extension layer a b amount;`
    GateExtension {
        /// The layer that must extend past the gate.
        layer: Spanned<String>,
        /// First layer forming the gate.
        a: Spanned<String>,
        /// Second layer forming the gate.
        b: Spanned<String>,
        /// Required extension.
        amount: Dist,
    },
    /// `no_layer_over_gate layer a b;`
    NoLayerOverGate {
        /// The forbidden layer.
        layer: Spanned<String>,
        /// First layer forming the gate.
        a: Spanned<String>,
        /// Second layer forming the gate.
        b: Spanned<String>,
    },
    /// `min_width layer w;`
    MinWidth {
        /// The constrained layer.
        layer: Spanned<String>,
        /// Required width.
        width: Dist,
    },
    /// `override own other (d | waived) [same_net];`
    Override {
        /// The device's own layer.
        own: Spanned<String>,
        /// The interacting layer.
        other: Spanned<String>,
        /// Spacing (`None` = `waived`: the pair is not checked).
        spacing: Option<Dist>,
        /// True if the override applies even on the same net (Fig. 5b).
        same_net: bool,
    },
    /// `terminals NAME…;`
    Terminals(Vec<Spanned<String>>),
}

impl Deck {
    /// Zeroes every span in the tree, so two parses of equivalent sources
    /// compare equal regardless of layout (the round-trip property).
    pub fn strip_spans(&mut self) {
        fn s<T>(x: &mut Spanned<T>) {
            x.span = Span::DUMMY;
        }
        fn d(x: &mut Dist) {
            x.span = Span::DUMMY;
        }
        fn od(x: &mut Option<Dist>) {
            if let Some(x) = x {
                d(x);
            }
        }
        s(&mut self.name);
        s(&mut self.lambda);
        for stmt in &mut self.statements {
            match stmt {
                Stmt::Layer(l) => {
                    s(&mut l.name);
                    s(&mut l.cif);
                    s(&mut l.kind);
                    d(&mut l.min_width);
                    l.span = Span::DUMMY;
                }
                Stmt::Space(sp) => {
                    s(&mut sp.a);
                    s(&mut sp.b);
                    d(&mut sp.diff_net);
                    od(&mut sp.same_net);
                    od(&mut sp.unrelated_device);
                    sp.span = Span::DUMMY;
                }
                Stmt::SameMask(m) => {
                    s(&mut m.layer);
                    d(&mut m.min_space);
                    m.span = Span::DUMMY;
                }
                Stmt::Device(dev) => {
                    s(&mut dev.name);
                    s(&mut dev.class);
                    for item in &mut dev.items {
                        match item {
                            DeviceItem::RequiresOverlap { a, b } => {
                                s(a);
                                s(b);
                            }
                            DeviceItem::RequiresLayer { layer } => s(layer),
                            DeviceItem::Enclosure {
                                inner,
                                outer,
                                margin,
                            } => {
                                s(inner);
                                s(outer);
                                d(margin);
                            }
                            DeviceItem::OverlapEnclosure {
                                a,
                                b,
                                outer,
                                margin,
                            } => {
                                s(a);
                                s(b);
                                s(outer);
                                d(margin);
                            }
                            DeviceItem::GateExtension {
                                layer,
                                a,
                                b,
                                amount,
                            } => {
                                s(layer);
                                s(a);
                                s(b);
                                d(amount);
                            }
                            DeviceItem::NoLayerOverGate { layer, a, b } => {
                                s(layer);
                                s(a);
                                s(b);
                            }
                            DeviceItem::MinWidth { layer, width } => {
                                s(layer);
                                d(width);
                            }
                            DeviceItem::Override {
                                own,
                                other,
                                spacing,
                                same_net: _,
                            } => {
                                s(own);
                                s(other);
                                od(spacing);
                            }
                            DeviceItem::Terminals(names) => names.iter_mut().for_each(s),
                        }
                    }
                    dev.span = Span::DUMMY;
                }
                Stmt::Power(names) | Stmt::Ground(names) => names.iter_mut().for_each(s),
                Stmt::BusPrefix(p) | Stmt::IoPrefix(p) => s(p),
            }
        }
    }
}

/// The canonical surface name of a layer kind.
pub fn kind_name(k: LayerKind) -> &'static str {
    match k {
        LayerKind::Diffusion => "diffusion",
        LayerKind::Poly => "poly",
        LayerKind::Metal => "metal",
        LayerKind::Contact => "contact",
        LayerKind::Implant => "implant",
        LayerKind::Buried => "buried",
        LayerKind::Isolation => "isolation",
        LayerKind::Base => "base",
        LayerKind::Emitter => "emitter",
        LayerKind::Glass => "glass",
    }
}

/// The canonical surface name of a device class.
pub fn class_name(c: DeviceClass) -> &'static str {
    match c {
        DeviceClass::MosEnhancement => "mos_enhancement",
        DeviceClass::MosDepletion => "mos_depletion",
        DeviceClass::Resistor => "resistor",
        DeviceClass::Contact => "contact",
        DeviceClass::ButtingContact => "butting_contact",
        DeviceClass::BuriedContact => "buried_contact",
        DeviceClass::BipolarNpn => "bipolar_npn",
        DeviceClass::Capacitor => "capacitor",
    }
}
