//! Recursive-descent parser for deck sources.
//!
//! One token of lookahead, no backtracking: every production knows the
//! full set of constructs legal at its position, which is what feeds the
//! `expected …` hints in [`DeckError`]. Keywords are matched as
//! identifier text (the lexer reserves nothing), so `layer layer { … }`
//! is legal and an unknown statement can be reported with the complete
//! list of alternatives.

use crate::ast::{
    Deck, DeviceDecl, DeviceItem, Dist, LayerDecl, SameMaskDecl, SpaceDecl, Spanned, Stmt,
};
use crate::diag::DeckError;
use crate::lexer::{lex, Token, TokenKind};
use diic_tech::{DeviceClass, LayerKind};

/// The statements legal at the top level of a `tech` block.
const STMT_ALTERNATIVES: [&str; 9] = [
    "`layer`",
    "`space`",
    "`same_mask`",
    "`device`",
    "`power`",
    "`ground`",
    "`bus_prefix`",
    "`io_prefix`",
    "`}`",
];

/// The items legal inside a device block.
const DEVICE_ALTERNATIVES: [&str; 10] = [
    "`requires_overlap`",
    "`requires_layer`",
    "`enclosure`",
    "`overlap_enclosure`",
    "`gate_extension`",
    "`no_layer_over_gate`",
    "`min_width`",
    "`override`",
    "`terminals`",
    "`}`",
];

/// Parses a whole deck source into a [`Deck`].
///
/// # Errors
///
/// [`DeckError`] with the span of the offending token and, for syntax
/// errors, the constructs that would have been accepted there.
pub fn parse(source: &str) -> Result<Deck, DeckError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        source,
        tokens,
        pos: 0,
    };
    p.deck()
}

struct Parser<'a> {
    source: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Token {
        self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos];
        if t.kind != TokenKind::Eof {
            self.pos += 1;
        }
        t
    }

    fn text(&self, t: Token) -> &'a str {
        &self.source[t.span.start..t.span.end]
    }

    /// Human description of a token, for "found …" messages.
    fn describe(&self, t: Token) -> String {
        match t.kind {
            TokenKind::Ident | TokenKind::Number => format!("`{}`", self.text(t)),
            TokenKind::Str => "a string".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Eof => "end of file".to_string(),
        }
    }

    fn unexpected(&self, expected: &[&str]) -> DeckError {
        let t = self.peek();
        DeckError::new(
            format!(
                "expected {}, found {}",
                expected.join(" or "),
                self.describe(t)
            ),
            t.span,
        )
        .expecting(expected.iter().copied())
    }

    fn punct(&mut self, kind: TokenKind, name: &str) -> Result<Token, DeckError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&[name]))
        }
    }

    fn semi(&mut self) -> Result<Token, DeckError> {
        self.punct(TokenKind::Semi, "`;`")
    }

    fn at_kw(&self, kw: &str) -> bool {
        let t = self.peek();
        t.kind == TokenKind::Ident && self.text(t) == kw
    }

    fn keyword(&mut self, kw: &'static str) -> Result<Token, DeckError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            let e = format!("`{kw}`");
            Err(self.unexpected(&[e.as_str()]))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Spanned<String>, DeckError> {
        let t = self.peek();
        if t.kind == TokenKind::Ident {
            self.bump();
            Ok(Spanned::new(self.text(t).to_string(), t.span))
        } else {
            Err(self.unexpected(&[what]))
        }
    }

    fn string(&mut self, what: &str) -> Result<Spanned<String>, DeckError> {
        let t = self.peek();
        if t.kind == TokenKind::Str {
            self.bump();
            let text = self.text(t);
            Ok(Spanned::new(text[1..text.len() - 1].to_string(), t.span))
        } else {
            Err(self.unexpected(&[what]))
        }
    }

    fn number(&mut self) -> Result<Spanned<i64>, DeckError> {
        let t = self.peek();
        if t.kind != TokenKind::Number {
            return Err(self.unexpected(&["a number"]));
        }
        self.bump();
        let n: i64 = self.text(t).parse().map_err(|_| {
            DeckError::new(format!("number `{}` is too large", self.text(t)), t.span)
        })?;
        Ok(Spanned::new(n, t.span))
    }

    /// `NUMBER [/ NUMBER] [lambda]`
    fn dist(&mut self) -> Result<Dist, DeckError> {
        let num = self.number()?;
        let mut span = num.span;
        let mut den = 1;
        if self.peek().kind == TokenKind::Slash {
            self.bump();
            let d = self.number()?;
            den = d.node;
            span = span.to(d.span);
        }
        let mut lambda = false;
        if self.at_kw("lambda") {
            let t = self.bump();
            lambda = true;
            span = span.to(t.span);
        }
        Ok(Dist {
            num: num.node,
            den,
            lambda,
            span,
        })
    }

    /// One or more identifiers, up to the terminating `;`.
    fn name_list(&mut self, what: &str) -> Result<Vec<Spanned<String>>, DeckError> {
        let mut names = vec![self.ident(what)?];
        while self.peek().kind == TokenKind::Ident {
            names.push(self.ident(what)?);
        }
        Ok(names)
    }

    fn deck(&mut self) -> Result<Deck, DeckError> {
        self.keyword("tech")?;
        let name = self.string("a technology name string")?;
        self.punct(TokenKind::LBrace, "`{`")?;
        self.keyword("lambda")?;
        let lambda = self.number()?;
        self.semi()?;
        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return Err(self.unexpected(&STMT_ALTERNATIVES));
            }
            statements.push(self.stmt()?);
        }
        self.bump(); // the closing `}`
        if self.peek().kind != TokenKind::Eof {
            return Err(self.unexpected(&["end of file"]));
        }
        Ok(Deck {
            name,
            lambda,
            statements,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, DeckError> {
        let t = self.peek();
        if t.kind != TokenKind::Ident {
            return Err(self.unexpected(&STMT_ALTERNATIVES));
        }
        match self.text(t) {
            "layer" => self.layer_decl().map(Stmt::Layer),
            "space" => self.space_decl().map(Stmt::Space),
            "same_mask" => self.same_mask_decl().map(Stmt::SameMask),
            "device" => self.device_decl().map(Stmt::Device),
            "power" => {
                self.bump();
                let names = self.name_list("a net name")?;
                self.semi()?;
                Ok(Stmt::Power(names))
            }
            "ground" => {
                self.bump();
                let names = self.name_list("a net name")?;
                self.semi()?;
                Ok(Stmt::Ground(names))
            }
            "bus_prefix" => {
                self.bump();
                let p = self.string("a prefix string")?;
                self.semi()?;
                Ok(Stmt::BusPrefix(p))
            }
            "io_prefix" => {
                self.bump();
                let p = self.string("a prefix string")?;
                self.semi()?;
                Ok(Stmt::IoPrefix(p))
            }
            other => Err(
                DeckError::new(format!("unknown statement `{other}`"), t.span)
                    .expecting(STMT_ALTERNATIVES.iter().copied()),
            ),
        }
    }

    /// `layer name { cif "…"; kind k; min_width d; }`
    fn layer_decl(&mut self) -> Result<LayerDecl, DeckError> {
        let kw = self.bump();
        let name = self.ident("a layer name")?;
        self.punct(TokenKind::LBrace, "`{`")?;
        let (mut cif, mut kind, mut min_width) = (None, None, None);
        loop {
            let t = self.peek();
            if t.kind == TokenKind::RBrace {
                break;
            }
            const FIELDS: [&str; 4] = ["`cif`", "`kind`", "`min_width`", "`}`"];
            if t.kind != TokenKind::Ident {
                return Err(self.unexpected(&FIELDS));
            }
            let field = self.text(t);
            let dup = |p: &Parser<'_>| {
                DeckError::new(
                    format!("duplicate `{field}` in layer `{}`", name.node),
                    p.peek().span,
                )
            };
            match field {
                "cif" if cif.is_none() => {
                    self.bump();
                    cif = Some(self.string("a CIF layer name string")?);
                    self.semi()?;
                }
                "kind" if kind.is_none() => {
                    self.bump();
                    kind = Some(self.layer_kind()?);
                    self.semi()?;
                }
                "min_width" if min_width.is_none() => {
                    self.bump();
                    min_width = Some(self.dist()?);
                    self.semi()?;
                }
                "cif" | "kind" | "min_width" => return Err(dup(self)),
                other => {
                    return Err(
                        DeckError::new(format!("unknown layer field `{other}`"), t.span)
                            .expecting(FIELDS.iter().copied()),
                    )
                }
            }
        }
        let rb = self.bump(); // the closing `}`
        let span = kw.span.to(rb.span);
        let missing = |what: &str| {
            DeckError::new(
                format!("layer `{}` is missing its `{what}` field", name.node),
                span,
            )
        };
        Ok(LayerDecl {
            cif: cif.ok_or_else(|| missing("cif"))?,
            kind: kind.ok_or_else(|| missing("kind"))?,
            min_width: min_width.ok_or_else(|| missing("min_width"))?,
            name,
            span,
        })
    }

    fn layer_kind(&mut self) -> Result<Spanned<LayerKind>, DeckError> {
        let t = self.peek();
        let name = self.ident("a layer kind")?;
        let kind = match name.node.as_str() {
            "diffusion" => LayerKind::Diffusion,
            "poly" => LayerKind::Poly,
            "metal" => LayerKind::Metal,
            "contact" => LayerKind::Contact,
            "implant" => LayerKind::Implant,
            "buried" => LayerKind::Buried,
            "isolation" => LayerKind::Isolation,
            "base" => LayerKind::Base,
            "emitter" => LayerKind::Emitter,
            "glass" => LayerKind::Glass,
            other => {
                return Err(
                    DeckError::new(format!("unknown layer kind `{other}`"), t.span).expecting([
                        "`diffusion`",
                        "`poly`",
                        "`metal`",
                        "`contact`",
                        "`implant`",
                        "`buried`",
                        "`isolation`",
                        "`base`",
                        "`emitter`",
                        "`glass`",
                    ]),
                )
            }
        };
        Ok(Spanned::new(kind, name.span))
    }

    /// `space a b d;` or `space a b d { same_net d; unrelated_device d; }`
    fn space_decl(&mut self) -> Result<SpaceDecl, DeckError> {
        let kw = self.bump();
        let a = self.ident("a layer name")?;
        let b = self.ident("a layer name")?;
        let diff_net = self.dist()?;
        let (mut same_net, mut unrelated_device) = (None, None);
        let end = if self.peek().kind == TokenKind::LBrace {
            self.bump();
            loop {
                let t = self.peek();
                if t.kind == TokenKind::RBrace {
                    break;
                }
                const OPTIONS: [&str; 3] = ["`same_net`", "`unrelated_device`", "`}`"];
                if t.kind != TokenKind::Ident {
                    return Err(self.unexpected(&OPTIONS));
                }
                match self.text(t) {
                    "same_net" if same_net.is_none() => {
                        self.bump();
                        same_net = Some(self.dist()?);
                        self.semi()?;
                    }
                    "unrelated_device" if unrelated_device.is_none() => {
                        self.bump();
                        unrelated_device = Some(self.dist()?);
                        self.semi()?;
                    }
                    dup @ ("same_net" | "unrelated_device") => {
                        return Err(DeckError::new(
                            format!("duplicate `{dup}` in space rule"),
                            t.span,
                        ))
                    }
                    other => {
                        return Err(DeckError::new(
                            format!("unknown space option `{other}`"),
                            t.span,
                        )
                        .expecting(OPTIONS.iter().copied()))
                    }
                }
            }
            self.bump() // the closing `}`
        } else {
            self.semi()?
        };
        Ok(SpaceDecl {
            a,
            b,
            diff_net,
            same_net,
            unrelated_device,
            span: kw.span.to(end.span),
        })
    }

    /// `same_mask layer d;`
    fn same_mask_decl(&mut self) -> Result<SameMaskDecl, DeckError> {
        let kw = self.bump();
        let layer = self.ident("a layer name")?;
        let min_space = self.dist()?;
        let end = self.semi()?;
        Ok(SameMaskDecl {
            layer,
            min_space,
            span: kw.span.to(end.span),
        })
    }

    /// `device NAME class { item… }`
    fn device_decl(&mut self) -> Result<DeviceDecl, DeckError> {
        let kw = self.bump();
        let name = self.ident("a device type name")?;
        let class = self.device_class()?;
        self.punct(TokenKind::LBrace, "`{`")?;
        let mut items = Vec::new();
        loop {
            let t = self.peek();
            if t.kind == TokenKind::RBrace {
                break;
            }
            if t.kind != TokenKind::Ident {
                return Err(self.unexpected(&DEVICE_ALTERNATIVES));
            }
            items.push(self.device_item()?);
        }
        let rb = self.bump(); // the closing `}`
        Ok(DeviceDecl {
            name,
            class,
            items,
            span: kw.span.to(rb.span),
        })
    }

    fn device_class(&mut self) -> Result<Spanned<DeviceClass>, DeckError> {
        let t = self.peek();
        let name = self.ident("a device class")?;
        let class = match name.node.as_str() {
            "mos_enhancement" => DeviceClass::MosEnhancement,
            "mos_depletion" => DeviceClass::MosDepletion,
            "resistor" => DeviceClass::Resistor,
            "contact" => DeviceClass::Contact,
            "butting_contact" => DeviceClass::ButtingContact,
            "buried_contact" => DeviceClass::BuriedContact,
            "bipolar_npn" => DeviceClass::BipolarNpn,
            "capacitor" => DeviceClass::Capacitor,
            other => {
                return Err(
                    DeckError::new(format!("unknown device class `{other}`"), t.span).expecting([
                        "`mos_enhancement`",
                        "`mos_depletion`",
                        "`resistor`",
                        "`contact`",
                        "`butting_contact`",
                        "`buried_contact`",
                        "`bipolar_npn`",
                        "`capacitor`",
                    ]),
                )
            }
        };
        Ok(Spanned::new(class, name.span))
    }

    fn device_item(&mut self) -> Result<DeviceItem, DeckError> {
        let t = self.peek();
        let item = match self.text(t) {
            "requires_overlap" => {
                self.bump();
                DeviceItem::RequiresOverlap {
                    a: self.ident("a layer name")?,
                    b: self.ident("a layer name")?,
                }
            }
            "requires_layer" => {
                self.bump();
                DeviceItem::RequiresLayer {
                    layer: self.ident("a layer name")?,
                }
            }
            "enclosure" => {
                self.bump();
                let inner = self.ident("a layer name")?;
                self.keyword("in")?;
                DeviceItem::Enclosure {
                    inner,
                    outer: self.ident("a layer name")?,
                    margin: self.dist()?,
                }
            }
            "overlap_enclosure" => {
                self.bump();
                let a = self.ident("a layer name")?;
                let b = self.ident("a layer name")?;
                self.keyword("in")?;
                DeviceItem::OverlapEnclosure {
                    a,
                    b,
                    outer: self.ident("a layer name")?,
                    margin: self.dist()?,
                }
            }
            "gate_extension" => {
                self.bump();
                DeviceItem::GateExtension {
                    layer: self.ident("a layer name")?,
                    a: self.ident("a layer name")?,
                    b: self.ident("a layer name")?,
                    amount: self.dist()?,
                }
            }
            "no_layer_over_gate" => {
                self.bump();
                DeviceItem::NoLayerOverGate {
                    layer: self.ident("a layer name")?,
                    a: self.ident("a layer name")?,
                    b: self.ident("a layer name")?,
                }
            }
            "min_width" => {
                self.bump();
                DeviceItem::MinWidth {
                    layer: self.ident("a layer name")?,
                    width: self.dist()?,
                }
            }
            "override" => {
                self.bump();
                let own = self.ident("a layer name")?;
                let other = self.ident("a layer name")?;
                let spacing = if self.at_kw("waived") {
                    self.bump();
                    None
                } else {
                    Some(self.dist()?)
                };
                let same_net = if self.at_kw("same_net") {
                    self.bump();
                    true
                } else {
                    false
                };
                DeviceItem::Override {
                    own,
                    other,
                    spacing,
                    same_net,
                }
            }
            "terminals" => {
                self.bump();
                DeviceItem::Terminals(self.name_list("a terminal name")?)
            }
            other => {
                return Err(
                    DeckError::new(format!("unknown device item `{other}`"), t.span)
                        .expecting(DEVICE_ALTERNATIVES.iter().copied()),
                )
            }
        };
        self.semi()?;
        Ok(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        # a minimal deck
        tech "mini" {
            lambda 100;
            layer m { cif "M1"; kind metal; min_width 3 lambda; }
            space m m 3 lambda;
            same_mask m 5 lambda;
            power VDD;
        }
    "#;

    #[test]
    fn parses_a_minimal_deck() {
        let deck = parse(MINI).unwrap_or_else(|e| panic!("{}", e.render("mini", MINI)));
        assert_eq!(deck.name.node, "mini");
        assert_eq!(deck.lambda.node, 100);
        assert_eq!(deck.statements.len(), 4);
        let Stmt::Layer(l) = &deck.statements[0] else {
            panic!("first statement should be the layer");
        };
        assert_eq!(l.name.node, "m");
        assert_eq!(l.kind.node, LayerKind::Metal);
        assert_eq!(
            (l.min_width.num, l.min_width.den, l.min_width.lambda),
            (3, 1, true)
        );
    }

    #[test]
    fn space_block_and_shorthand_agree() {
        let short = parse(
            "tech \"t\" { lambda 1; layer a { cif \"A\"; kind metal; min_width 1; } space a a 3; }",
        )
        .unwrap();
        let block = parse("tech \"t\" { lambda 1; layer a { cif \"A\"; kind metal; min_width 1; } space a a 3 { } }").unwrap();
        let (mut s, mut b) = (short, block);
        s.strip_spans();
        b.strip_spans();
        assert_eq!(s, b);
    }

    #[test]
    fn fractional_distances() {
        let deck = parse(
            "tech \"t\" { lambda 250; layer a { cif \"A\"; kind poly; min_width 3/2 lambda; } }",
        )
        .unwrap();
        let Stmt::Layer(l) = &deck.statements[0] else {
            panic!()
        };
        assert_eq!(
            (l.min_width.num, l.min_width.den, l.min_width.lambda),
            (3, 2, true)
        );
    }

    #[test]
    fn unknown_statement_lists_alternatives() {
        let e = parse("tech \"t\" { lambda 1; frobnicate; }").unwrap_err();
        assert!(e.message.contains("unknown statement `frobnicate`"));
        assert!(e.expected.iter().any(|x| x == "`layer`"));
        let src = "tech \"t\" { lambda 1; frobnicate; }";
        assert_eq!(&src[e.span.start..e.span.end], "frobnicate");
    }

    #[test]
    fn missing_layer_field_is_reported() {
        let e = parse("tech \"t\" { lambda 1; layer a { cif \"A\"; kind metal; } }").unwrap_err();
        assert!(e.message.contains("missing its `min_width`"));
    }

    #[test]
    fn duplicate_layer_field_is_reported() {
        let e = parse(
            "tech \"t\" { lambda 1; layer a { cif \"A\"; cif \"B\"; kind metal; min_width 1; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate `cif`"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let e = parse("tech \"t\" { lambda 1; } extra").unwrap_err();
        assert!(e.expected.iter().any(|x| x == "end of file"));
    }

    #[test]
    fn device_items_round_trip_through_the_ast() {
        let src = r#"tech "t" { lambda 2;
            layer p { cif "P"; kind poly; min_width 1; }
            layer d { cif "D"; kind diffusion; min_width 1; }
            device T mos_enhancement {
                requires_overlap p d;
                enclosure p in d 1 lambda;
                override p d waived same_net;
                terminals G S D;
            }
        }"#;
        let deck = parse(src).unwrap_or_else(|e| panic!("{}", e.render("t", src)));
        let Stmt::Device(dev) = &deck.statements[2] else {
            panic!()
        };
        assert_eq!(dev.class.node, DeviceClass::MosEnhancement);
        assert_eq!(dev.items.len(), 4);
        assert!(matches!(
            &dev.items[2],
            DeviceItem::Override {
                spacing: None,
                same_net: true,
                ..
            }
        ));
    }
}
