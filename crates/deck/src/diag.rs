//! Source spans and rustc-style diagnostics.
//!
//! Every AST node carries the byte range it was parsed from, and every
//! [`DeckError`] — lexical, syntactic, or semantic (compile-time) —
//! points at one. [`DeckError::render`] turns that into the familiar
//! three-line `error: … / --> file:line:col / caret underline` shape, so
//! a malformed deck reads like a malformed Rust file.

use std::fmt;

/// A half-open byte range into the deck source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// The empty placeholder span (synthetic nodes, stripped ASTs).
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// An error in a deck: a message anchored to a source span, plus the
/// constructs the parser would have accepted at that point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeckError {
    /// What went wrong.
    pub message: String,
    /// Where in the source.
    pub span: Span,
    /// Expected-token hints (empty for lexical and compile errors).
    pub expected: Vec<String>,
}

impl DeckError {
    /// Creates an error with no expected-token hints.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        DeckError {
            message: message.into(),
            span,
            expected: Vec::new(),
        }
    }

    /// Attaches expected-token hints.
    pub fn expecting<S: Into<String>>(mut self, expected: impl IntoIterator<Item = S>) -> Self {
        self.expected = expected.into_iter().map(Into::into).collect();
        self
    }

    /// 1-based `(line, column)` of the span start in `source`. Columns
    /// count bytes (deck sources are ASCII in practice).
    pub fn line_column(&self, source: &str) -> (usize, usize) {
        let start = self.span.start.min(source.len());
        let before = &source[..start];
        let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = start - before.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        (line, column)
    }

    /// Renders the error rustc-style: message, `file:line:col`, the
    /// offending source line, and a caret underline carrying the
    /// expected-token hint.
    pub fn render(&self, file: &str, source: &str) -> String {
        use std::fmt::Write as _;
        let (line, column) = self.line_column(source);
        let line_start = self.span.start.min(source.len()) - (column - 1);
        let line_text = source[line_start..].lines().next().unwrap_or("");
        let mut s = String::new();
        let _ = writeln!(s, "error: {}", self.message);
        let _ = writeln!(s, " --> {file}:{line}:{column}");
        let gutter = line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(s, "{pad} |");
        let _ = writeln!(s, "{gutter} | {line_text}");
        // Underline the span, clipped to the rendered line; always at
        // least one caret (end-of-file errors point past the last byte).
        let avail = line_text.len().saturating_sub(column - 1).max(1);
        let carets = self
            .span
            .end
            .saturating_sub(self.span.start)
            .clamp(1, avail);
        let hint = if self.expected.is_empty() {
            String::new()
        } else {
            format!(" expected {}", self.expected.join(" or "))
        };
        let _ = writeln!(
            s,
            "{pad} | {}{}{hint}",
            " ".repeat(column - 1),
            "^".repeat(carets)
        );
        s
    }
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if !self.expected.is_empty() {
            write!(f, " (expected {})", self.expected.join(" or "))?;
        }
        Ok(())
    }
}

impl std::error::Error for DeckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_column_counts_from_one() {
        let src = "abc\ndef\n";
        let e = DeckError::new("x", Span::new(5, 6));
        assert_eq!(e.line_column(src), (2, 2));
        let first = DeckError::new("x", Span::new(0, 1));
        assert_eq!(first.line_column(src), (1, 1));
    }

    #[test]
    fn render_shape() {
        let src = "tech \"x\" {\n    lambda;\n}\n";
        let e = DeckError::new("expected a number, found `;`", Span::new(21, 22))
            .expecting(["a number"]);
        let out = e.render("t.deck", src);
        assert_eq!(
            out,
            "error: expected a number, found `;`\n \
             --> t.deck:2:11\n  \
             |\n\
             2 |     lambda;\n  \
             |           ^ expected a number\n"
        );
    }

    #[test]
    fn render_clamps_past_eof() {
        let src = "tech";
        let e = DeckError::new("unexpected end of file", Span::new(4, 4));
        let out = e.render("t.deck", src);
        assert!(out.contains("t.deck:1:5"));
        assert!(out.contains('^'));
    }
}
