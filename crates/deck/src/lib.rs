//! # diic-deck — rule decks as data
//!
//! The paper's thesis is that layout verification is *driven by a
//! technology description*: layers, widths, spacings, device rules. In
//! the rest of this workspace that description is a compiled-in Rust
//! value ([`diic_tech::Technology`]) — this crate makes it a **text
//! artifact**. A rule deck is a small declarative file:
//!
//! ```text
//! tech "nmos" {
//!     lambda 250;
//!     layer metal { cif "NM"; kind metal; min_width 3 lambda; }
//!     space metal metal 3 lambda;
//!     same_mask metal 5 lambda;   # multi-patterning decomposability
//! }
//! ```
//!
//! and the crate provides the full front end for it:
//!
//! * a lexer and recursive-descent [`parser`] producing a span-carrying
//!   AST ([`ast`]);
//! * rustc-style diagnostics — source line, caret underline,
//!   expected-token hints ([`DeckError::render`]);
//! * a canonical [`printer`] with the round-trip property
//!   `parse ∘ print ∘ parse = parse` (up to spans);
//! * a [`compile()`] pass lowering a deck to the
//!   [`diic_tech::Technology`] every checking stage consumes.
//!
//! The built-in NMOS process ships as `decks/nmos.deck` ([`NMOS_DECK`]);
//! compiling it reproduces `diic_tech::nmos::nmos_technology()` exactly,
//! and the tenth differential leg (`tests/differential.rs` at the
//! workspace root) pins the two to byte-identical check reports over the
//! faulted-chip proptest corpus. The `same_mask` statement is the first
//! post-paper rule family: it feeds the multi-patterning conflict-graph
//! check in `diic-core` (odd cycles are undecomposable). The language
//! reference lives in `docs/deck-language.md`.
//!
//! ```
//! use diic_deck::{compile_str, NMOS_DECK};
//!
//! let tech = compile_str(NMOS_DECK)?;
//! assert_eq!(tech.name(), "nmos");
//! assert_eq!(tech.lambda(), 250);
//! # Ok::<(), diic_deck::DeckError>(())
//! ```

pub mod ast;
pub mod compile;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{
    Deck, DeviceDecl, DeviceItem, Dist, LayerDecl, SameMaskDecl, SpaceDecl, Spanned, Stmt,
};
pub use compile::{compile, compile_str};
pub use diag::{DeckError, Span};
pub use parser::parse;
pub use printer::print;

/// The built-in NMOS rule deck (`decks/nmos.deck`): the Mead–Conway
/// λ-rule process of `diic_tech::nmos`, expressed as data.
pub const NMOS_DECK: &str = include_str!("../decks/nmos.deck");
