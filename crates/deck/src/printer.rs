//! The canonical deck printer.
//!
//! [`print()`] renders an AST in one fixed surface style (four-space
//! indent, shorthand `space` form when no options are set, `}` on its
//! own line for blocks). Because the AST is semantic, printing is
//! injective up to spans: `parse(print(parse(s)))` equals `parse(s)`
//! with spans stripped — the round-trip property
//! `tests/roundtrip.rs` pins on random decks.

use crate::ast::{class_name, kind_name, Deck, DeviceItem, Dist, Spanned, Stmt};
use std::fmt::Write as _;

fn dist(d: &Dist) -> String {
    let mut s = d.num.to_string();
    if d.den != 1 {
        let _ = write!(s, "/{}", d.den);
    }
    if d.lambda {
        s.push_str(" lambda");
    }
    s
}

fn names(list: &[Spanned<String>]) -> String {
    list.iter()
        .map(|n| n.node.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a deck in canonical form.
pub fn print(deck: &Deck) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "tech \"{}\" {{", deck.name.node);
    let _ = writeln!(s, "    lambda {};", deck.lambda.node);
    for stmt in &deck.statements {
        match stmt {
            Stmt::Layer(l) => {
                let _ = writeln!(
                    s,
                    "    layer {} {{ cif \"{}\"; kind {}; min_width {}; }}",
                    l.name.node,
                    l.cif.node,
                    kind_name(l.kind.node),
                    dist(&l.min_width)
                );
            }
            Stmt::Space(sp) => {
                let _ = write!(
                    s,
                    "    space {} {} {}",
                    sp.a.node,
                    sp.b.node,
                    dist(&sp.diff_net)
                );
                if sp.same_net.is_none() && sp.unrelated_device.is_none() {
                    s.push_str(";\n");
                } else {
                    s.push_str(" {");
                    if let Some(d) = &sp.same_net {
                        let _ = write!(s, " same_net {};", dist(d));
                    }
                    if let Some(d) = &sp.unrelated_device {
                        let _ = write!(s, " unrelated_device {};", dist(d));
                    }
                    s.push_str(" }\n");
                }
            }
            Stmt::SameMask(m) => {
                let _ = writeln!(s, "    same_mask {} {};", m.layer.node, dist(&m.min_space));
            }
            Stmt::Device(dev) => {
                let _ = writeln!(
                    s,
                    "    device {} {} {{",
                    dev.name.node,
                    class_name(dev.class.node)
                );
                for item in &dev.items {
                    let line = match item {
                        DeviceItem::RequiresOverlap { a, b } => {
                            format!("requires_overlap {} {}", a.node, b.node)
                        }
                        DeviceItem::RequiresLayer { layer } => {
                            format!("requires_layer {}", layer.node)
                        }
                        DeviceItem::Enclosure {
                            inner,
                            outer,
                            margin,
                        } => format!(
                            "enclosure {} in {} {}",
                            inner.node,
                            outer.node,
                            dist(margin)
                        ),
                        DeviceItem::OverlapEnclosure {
                            a,
                            b,
                            outer,
                            margin,
                        } => format!(
                            "overlap_enclosure {} {} in {} {}",
                            a.node,
                            b.node,
                            outer.node,
                            dist(margin)
                        ),
                        DeviceItem::GateExtension {
                            layer,
                            a,
                            b,
                            amount,
                        } => format!(
                            "gate_extension {} {} {} {}",
                            layer.node,
                            a.node,
                            b.node,
                            dist(amount)
                        ),
                        DeviceItem::NoLayerOverGate { layer, a, b } => {
                            format!("no_layer_over_gate {} {} {}", layer.node, a.node, b.node)
                        }
                        DeviceItem::MinWidth { layer, width } => {
                            format!("min_width {} {}", layer.node, dist(width))
                        }
                        DeviceItem::Override {
                            own,
                            other,
                            spacing,
                            same_net,
                        } => {
                            let mut line = format!("override {} {}", own.node, other.node);
                            match spacing {
                                Some(d) => {
                                    let _ = write!(line, " {}", dist(d));
                                }
                                None => line.push_str(" waived"),
                            }
                            if *same_net {
                                line.push_str(" same_net");
                            }
                            line
                        }
                        DeviceItem::Terminals(list) => format!("terminals {}", names(list)),
                    };
                    let _ = writeln!(s, "        {line};");
                }
                s.push_str("    }\n");
            }
            Stmt::Power(list) => {
                let _ = writeln!(s, "    power {};", names(list));
            }
            Stmt::Ground(list) => {
                let _ = writeln!(s, "    ground {};", names(list));
            }
            Stmt::BusPrefix(p) => {
                let _ = writeln!(s, "    bus_prefix \"{}\";", p.node);
            }
            Stmt::IoPrefix(p) => {
                let _ = writeln!(s, "    io_prefix \"{}\";", p.node);
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;
    use crate::printer::print;

    #[test]
    fn printing_is_idempotent() {
        let src = r#"tech "t" { lambda 250;
            layer m { cif "M"; kind metal; min_width 3 lambda; }
            space m m 3 lambda { same_net 3 lambda; }
            same_mask m 5 lambda;
            device R resistor { requires_layer m; override m m waived; terminals A B; }
            ground GND VSS;
        }"#;
        let once = print(&parse(src).unwrap());
        let twice = print(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn shorthand_space_prints_without_a_block() {
        let src = "tech \"t\" { lambda 1; layer a { cif \"A\"; kind metal; min_width 1; } space a a 3 { } }";
        let out = print(&parse(src).unwrap());
        assert!(out.contains("space a a 3;"), "{out}");
    }
}
