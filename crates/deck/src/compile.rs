//! Lowering a deck to a [`Technology`].
//!
//! Two passes over the statements: layers first (declaration order fixes
//! [`diic_tech::LayerId`] assignment, and later rules may reference
//! layers declared after them), then everything else in source order.
//! Every semantic error — unknown layer, duplicate rule, a fractional
//! distance that does not land on a database unit — is a [`DeckError`]
//! anchored to the offending span, so `render` points at deck source,
//! not at compiled-in Rust.

use crate::ast::{Deck, DeviceItem, Dist, Spanned, Stmt};
use crate::diag::DeckError;
use crate::parser::parse;
use diic_tech::{
    DeviceArchetype, InteractionOverride, InternalRule, Layer, LayerId, SpacingRule, Technology,
};

/// Parses and compiles a deck source in one step.
///
/// # Errors
///
/// Any [`DeckError`] from [`parse`] or [`compile`].
pub fn compile_str(source: &str) -> Result<Technology, DeckError> {
    compile(&parse(source)?)
}

/// Lowers a parsed deck to a [`Technology`].
///
/// # Errors
///
/// [`DeckError`] on semantic problems: duplicate layers, rules, or
/// devices; unknown layer references; distances that do not resolve to
/// whole database units.
pub fn compile(deck: &Deck) -> Result<Technology, DeckError> {
    let lambda = deck.lambda.node;
    if lambda <= 0 {
        return Err(DeckError::new(
            "lambda must be a positive number of database units",
            deck.lambda.span,
        ));
    }
    let mut tech = Technology::new(&deck.name.node, lambda);

    // Pass 1: layers, in declaration order.
    for stmt in &deck.statements {
        let Stmt::Layer(l) = stmt else { continue };
        if tech.layer_by_name(&l.name.node).is_some() {
            return Err(DeckError::new(
                format!("duplicate layer `{}`", l.name.node),
                l.name.span,
            ));
        }
        if tech.layer_by_cif(&l.cif.node).is_some() {
            return Err(DeckError::new(
                format!("duplicate CIF layer name `{}`", l.cif.node),
                l.cif.span,
            ));
        }
        let width = resolve(&l.min_width, lambda)?;
        tech.add_layer(Layer::new(&l.name.node, &l.cif.node, l.kind.node, width));
    }

    // Pass 2: everything else.
    for stmt in &deck.statements {
        match stmt {
            Stmt::Layer(_) => {}
            Stmt::Space(sp) => {
                let a = layer_id(&tech, &sp.a)?;
                let b = layer_id(&tech, &sp.b)?;
                if tech.rules().spacing(a, b).is_some() {
                    return Err(DeckError::new(
                        format!(
                            "duplicate spacing rule for `{}` / `{}`",
                            sp.a.node, sp.b.node
                        ),
                        sp.span,
                    ));
                }
                let rule = SpacingRule {
                    diff_net: resolve(&sp.diff_net, lambda)?,
                    same_net: opt(&sp.same_net, lambda)?,
                    unrelated_device: opt(&sp.unrelated_device, lambda)?,
                };
                tech.rules_mut().set_spacing(a, b, rule);
            }
            Stmt::SameMask(m) => {
                let layer = layer_id(&tech, &m.layer)?;
                if tech.rules().same_mask(layer).is_some() {
                    return Err(DeckError::new(
                        format!("duplicate same_mask rule for `{}`", m.layer.node),
                        m.span,
                    ));
                }
                let d = resolve(&m.min_space, lambda)?;
                tech.rules_mut().set_same_mask(layer, d);
            }
            Stmt::Device(decl) => {
                if tech.device(&decl.name.node).is_some() {
                    return Err(DeckError::new(
                        format!("duplicate device `{}`", decl.name.node),
                        decl.name.span,
                    ));
                }
                let mut dev = DeviceArchetype::new(&decl.name.node, decl.class.node);
                for item in &decl.items {
                    match item {
                        DeviceItem::RequiresOverlap { a, b } => {
                            dev.internal_rules.push(InternalRule::RequiresOverlap {
                                a: layer_id(&tech, a)?,
                                b: layer_id(&tech, b)?,
                            });
                        }
                        DeviceItem::RequiresLayer { layer } => {
                            dev.internal_rules.push(InternalRule::RequiresLayer {
                                layer: layer_id(&tech, layer)?,
                            });
                        }
                        DeviceItem::Enclosure {
                            inner,
                            outer,
                            margin,
                        } => {
                            dev.internal_rules.push(InternalRule::Enclosure {
                                inner: layer_id(&tech, inner)?,
                                outer: layer_id(&tech, outer)?,
                                margin: resolve(margin, lambda)?,
                            });
                        }
                        DeviceItem::OverlapEnclosure {
                            a,
                            b,
                            outer,
                            margin,
                        } => {
                            dev.internal_rules.push(InternalRule::OverlapEnclosure {
                                a: layer_id(&tech, a)?,
                                b: layer_id(&tech, b)?,
                                outer: layer_id(&tech, outer)?,
                                margin: resolve(margin, lambda)?,
                            });
                        }
                        DeviceItem::GateExtension {
                            layer,
                            a,
                            b,
                            amount,
                        } => {
                            dev.internal_rules.push(InternalRule::GateExtension {
                                layer: layer_id(&tech, layer)?,
                                a: layer_id(&tech, a)?,
                                b: layer_id(&tech, b)?,
                                amount: resolve(amount, lambda)?,
                            });
                        }
                        DeviceItem::NoLayerOverGate { layer, a, b } => {
                            dev.internal_rules.push(InternalRule::NoLayerOverGate {
                                layer: layer_id(&tech, layer)?,
                                a: layer_id(&tech, a)?,
                                b: layer_id(&tech, b)?,
                            });
                        }
                        DeviceItem::MinWidth { layer, width } => {
                            dev.internal_rules.push(InternalRule::MinWidth {
                                layer: layer_id(&tech, layer)?,
                                width: resolve(width, lambda)?,
                            });
                        }
                        DeviceItem::Override {
                            own,
                            other,
                            spacing,
                            same_net,
                        } => {
                            dev.overrides.push(InteractionOverride {
                                own_layer: layer_id(&tech, own)?,
                                other_layer: layer_id(&tech, other)?,
                                spacing: opt(spacing, lambda)?,
                                applies_same_net: *same_net,
                            });
                        }
                        DeviceItem::Terminals(list) => {
                            dev.terminal_names = list.iter().map(|n| n.node.clone()).collect();
                        }
                    }
                }
                tech.add_device(dev);
            }
            Stmt::Power(list) => {
                tech.power_nets = list.iter().map(|n| n.node.clone()).collect();
            }
            Stmt::Ground(list) => {
                tech.ground_nets = list.iter().map(|n| n.node.clone()).collect();
            }
            Stmt::BusPrefix(p) => {
                tech.bus_prefix = p.node.clone();
            }
            Stmt::IoPrefix(p) => {
                tech.io_prefix = p.node.clone();
            }
        }
    }

    // Pass 3: cross-rule sanity. A same-mask distance that does not
    // exceed the layer's ordinary spacing rule can never contribute a
    // new conflict — every pair it would connect already violates
    // spacing — so the declaration is almost certainly a typo.
    for stmt in &deck.statements {
        let Stmt::SameMask(m) = stmt else { continue };
        let layer = layer_id(&tech, &m.layer)?;
        if let Some(rule) = tech.rules().spacing(layer, layer) {
            let d = resolve(&m.min_space, lambda)?;
            if d <= rule.diff_net {
                return Err(DeckError::new(
                    format!(
                        "same_mask distance {d} on `{}` does not exceed its spacing \
                         rule ({}): every conflict it could flag already violates \
                         spacing",
                        m.layer.node, rule.diff_net
                    ),
                    m.span,
                ));
            }
        }
    }
    Ok(tech)
}

fn layer_id(tech: &Technology, name: &Spanned<String>) -> Result<LayerId, DeckError> {
    tech.layer_by_name(&name.node)
        .ok_or_else(|| DeckError::new(format!("unknown layer `{}`", name.node), name.span))
}

/// Resolves a distance literal to database units.
fn resolve(d: &Dist, lambda: i64) -> Result<i64, DeckError> {
    if d.den == 0 {
        return Err(DeckError::new("zero denominator in distance", d.span));
    }
    let unit = if d.lambda { lambda } else { 1 };
    let scaled = d
        .num
        .checked_mul(unit)
        .ok_or_else(|| DeckError::new("distance overflows database units", d.span))?;
    if scaled % d.den != 0 {
        return Err(DeckError::new(
            format!(
                "distance does not resolve to whole database units \
                 ({scaled} is not divisible by {}; lambda = {lambda})",
                d.den
            ),
            d.span,
        ));
    }
    Ok(scaled / d.den)
}

fn opt(d: &Option<Dist>, lambda: i64) -> Result<Option<i64>, DeckError> {
    d.as_ref().map(|d| resolve(d, lambda)).transpose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_tech::nmos::nmos_technology;

    /// The tentpole parity pin: compiling the checked-in NMOS deck
    /// reproduces the hardcoded technology *exactly* — `Technology`
    /// derives `PartialEq` over every field, so this single assert
    /// covers layers, the rule matrix, devices, and ERC configuration.
    #[test]
    fn nmos_deck_compiles_to_the_hardcoded_technology() {
        let tech = compile_str(crate::NMOS_DECK)
            .unwrap_or_else(|e| panic!("{}", e.render("decks/nmos.deck", crate::NMOS_DECK)));
        assert_eq!(tech, nmos_technology());
    }

    #[test]
    fn fractional_lambda_distances_resolve() {
        let tech = compile_str(
            "tech \"t\" { lambda 250; layer i { cif \"I\"; kind implant; min_width 3/2 lambda; } }",
        )
        .unwrap();
        let i = tech.layer_by_name("i").unwrap();
        assert_eq!(tech.layer(i).min_width, 375);
    }

    #[test]
    fn non_integral_distance_is_an_error() {
        let e = compile_str(
            "tech \"t\" { lambda 251; layer i { cif \"I\"; kind implant; min_width 3/2 lambda; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("whole database units"), "{e}");
    }

    #[test]
    fn unknown_layer_is_spanned() {
        let src = "tech \"t\" { lambda 1; space ghost ghost 3; }";
        let e = compile_str(src).unwrap_err();
        assert_eq!(&src[e.span.start..e.span.end], "ghost");
        assert!(e.message.contains("unknown layer `ghost`"));
    }

    #[test]
    fn duplicate_rules_are_rejected() {
        let layer = "layer a { cif \"A\"; kind metal; min_width 1; }";
        let dup_space = format!("tech \"t\" {{ lambda 1; {layer} space a a 3; space a a 4; }}");
        assert!(compile_str(&dup_space)
            .unwrap_err()
            .message
            .contains("duplicate spacing rule"));
        let dup_mask = format!("tech \"t\" {{ lambda 1; {layer} same_mask a 3; same_mask a 4; }}");
        assert!(compile_str(&dup_mask)
            .unwrap_err()
            .message
            .contains("duplicate same_mask"));
        let dup_layer = format!("tech \"t\" {{ lambda 1; {layer} {layer} }}");
        assert!(compile_str(&dup_layer)
            .unwrap_err()
            .message
            .contains("duplicate layer"));
    }

    #[test]
    fn same_mask_lands_in_the_rule_set() {
        let tech = compile_str(
            "tech \"t\" { lambda 250; layer m { cif \"M\"; kind metal; min_width 3 lambda; } \
             space m m 3 lambda; same_mask m 5 lambda; }",
        )
        .unwrap();
        let m = tech.layer_by_name("m").unwrap();
        assert_eq!(tech.rules().same_mask(m), Some(1250));
        assert!(tech.rules().has_same_mask());
    }

    #[test]
    fn erc_defaults_survive_when_unstated() {
        let tech =
            compile_str("tech \"t\" { lambda 1; layer m { cif \"M\"; kind metal; min_width 1; } }")
                .unwrap();
        assert!(tech.is_power("VDD"));
        assert!(tech.is_ground("VSS"));
    }
}
