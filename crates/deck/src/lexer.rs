//! The deck tokenizer.
//!
//! Five token shapes cover the whole language: identifiers, unsigned
//! numbers, double-quoted strings, the three punctuators `{` `}` `;`,
//! and `/` (fractional distances like `3/2 lambda`). Keywords are not
//! reserved — the parser matches identifier text in context, which is
//! what lets it offer expected-token hints instead of a generic
//! "reserved word" error. `#` and `//` start line comments.

use crate::diag::{DeckError, Span};

/// Kind of a lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `[A-Za-z_][A-Za-z0-9_]*` — names and keywords alike.
    Ident,
    /// `[0-9]+`.
    Number,
    /// `"..."` (no escapes, no newlines).
    Str,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `/`
    Slash,
    /// End of input (always the last token).
    Eof,
}

/// A token: its kind and source span (text is sliced from the source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
}

/// Tokenizes a whole deck source.
///
/// # Errors
///
/// [`DeckError`] on an unterminated string literal or a character
/// outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, DeckError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut push = |kind, start, end| {
        tokens.push(Token {
            kind,
            span: Span::new(start, end),
        })
    };
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                push(TokenKind::LBrace, i, i + 1);
                i += 1;
            }
            b'}' => {
                push(TokenKind::RBrace, i, i + 1);
                i += 1;
            }
            b';' => {
                push(TokenKind::Semi, i, i + 1);
                i += 1;
            }
            b'/' => {
                push(TokenKind::Slash, i, i + 1);
                i += 1;
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'\n' {
                    i += 1;
                }
                if bytes.get(i) != Some(&b'"') {
                    return Err(DeckError::new(
                        "unterminated string literal",
                        Span::new(start, i),
                    ));
                }
                i += 1;
                push(TokenKind::Str, start, i);
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                push(TokenKind::Number, start, i);
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push(TokenKind::Ident, start, i);
            }
            other => {
                return Err(DeckError::new(
                    format!("unexpected character `{}`", other as char),
                    Span::new(i, i + 1),
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_the_alphabet() {
        use TokenKind::*;
        assert_eq!(
            kinds("tech \"nmos\" { lambda 250; space 3/2 }"),
            vec![
                Ident, Str, LBrace, Ident, Number, Semi, Ident, Number, Slash, Number, RBrace, Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("# a comment\nx // trailing\ny"),
            vec![Ident, Ident, Eof]
        );
    }

    #[test]
    fn unterminated_string_is_spanned() {
        let e = lex("power \"VDD\nx").unwrap_err();
        assert_eq!(e.span, Span::new(6, 10));
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn stray_character_is_an_error() {
        let e = lex("space @").unwrap_err();
        assert_eq!(e.span, Span::new(6, 7));
        assert!(e.message.contains('@'));
    }
}
