//! The printer round-trip property: `parse ∘ print ∘ parse = parse`
//! (up to spans). The canonical printer must emit text that parses
//! back to the very same AST — for the checked-in NMOS deck, for every
//! generator-produced deck variation, and idempotently (printing the
//! reparsed deck reproduces the first printed text byte for byte).

use diic_deck::{compile_str, parse, print, NMOS_DECK};
use proptest::prelude::*;

/// Parses, strips spans, and returns the AST — the comparable form.
fn ast_of(source: &str) -> diic_deck::Deck {
    let mut deck = parse(source).unwrap_or_else(|e| panic!("{}", e.render("<test>", source)));
    deck.strip_spans();
    deck
}

#[test]
fn nmos_deck_round_trips() {
    let first = ast_of(NMOS_DECK);
    let printed = print(&first);
    let second = ast_of(&printed);
    assert_eq!(first, second, "print() lost or mangled a statement");
    // Idempotence: the canonical form is a fixed point.
    assert_eq!(printed, print(&second));
    // And the canonical form still compiles to the same technology.
    assert_eq!(
        compile_str(&printed).unwrap(),
        compile_str(NMOS_DECK).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated deck round-trips through the canonical printer
    /// and compiles to the same technology either way.
    #[test]
    fn generated_decks_round_trip(seed in 0u64..1_000_000) {
        let source = diic_gen::random_deck(seed);
        let first = ast_of(&source);
        let printed = print(&first);
        let second = ast_of(&printed);
        prop_assert_eq!(&first, &second, "seed {}: round trip diverged", seed);
        prop_assert_eq!(&printed, &print(&second), "seed {}: print not idempotent", seed);
        prop_assert_eq!(
            compile_str(&printed).unwrap(),
            compile_str(&source).unwrap(),
            "seed {}: canonical form compiles differently", seed
        );
    }
}
