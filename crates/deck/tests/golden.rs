//! Golden-file tests for deck diagnostics: every class of malformed
//! deck must produce a **spanned** `DeckError` (never a panic), and the
//! rendered rustc-style diagnostic must match the blessed text in
//! `tests/golden/<case>.txt` byte for byte.
//!
//! To bless new output after an intentional diagnostic change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p diic-deck --test golden
//! ```

use diic_deck::compile_str;
use std::path::PathBuf;

/// One malformed deck per diagnostic class the front end can emit.
const CASES: &[(&str, &str)] = &[
    // Lexer: a string literal that never closes.
    ("unterminated-string", "tech \"nmos\n"),
    // Lexer: a byte outside the language.
    (
        "stray-character",
        "tech \"t\" {\n    lambda 250;\n    @layer m;\n}\n",
    ),
    // Parser: a statement keyword the grammar does not know.
    (
        "unknown-statement",
        "tech \"t\" {\n    lambda 250;\n    widget metal 3 lambda;\n}\n",
    ),
    // Parser: a number where the grammar wants one but the token is `;`.
    ("missing-number", "tech \"t\" {\n    lambda;\n}\n"),
    // Parser: a missing semicolon mid-block.
    (
        "missing-semicolon",
        "tech \"t\" {\n    lambda 250\n    space a a 3 lambda;\n}\n",
    ),
    // Parser: truncated input — the file ends inside the tech block.
    ("unexpected-eof", "tech \"t\" {\n    lambda 250;\n"),
    // Parser: a layer kind outside the enumeration.
    (
        "bad-layer-kind",
        "tech \"t\" {\n    lambda 250;\n    layer m { cif \"NM\"; kind plutonium; min_width 2 lambda; }\n}\n",
    ),
    // Parser: a device class outside the enumeration.
    (
        "bad-device-class",
        "tech \"t\" {\n    lambda 250;\n    layer m { cif \"NM\"; kind metal; min_width 2 lambda; }\n    device X flux_capacitor { terminals A B; }\n}\n",
    ),
    // Compile: a rule naming a layer the deck never declared.
    (
        "unknown-layer",
        "tech \"t\" {\n    lambda 250;\n    space metal metal 3 lambda;\n}\n",
    ),
    // Compile: the same layer declared twice.
    (
        "duplicate-layer",
        "tech \"t\" {\n    lambda 250;\n    layer m { cif \"NM\"; kind metal; min_width 2 lambda; }\n    layer m { cif \"NM\"; kind metal; min_width 2 lambda; }\n}\n",
    ),
    // Compile: a same_mask distance no tighter than the spacing rule
    // (the conflict graph would be empty by construction).
    (
        "same-mask-not-tighter",
        "tech \"t\" {\n    lambda 250;\n    layer m { cif \"NM\"; kind metal; min_width 2 lambda; }\n    space m m 3 lambda;\n    same_mask m 3 lambda;\n}\n",
    ),
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn malformed_decks_render_blessed_diagnostics() {
    let bless = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (name, source) in CASES {
        let err = match compile_str(source) {
            Err(e) => e,
            Ok(_) => panic!("{name}: malformed deck compiled successfully"),
        };
        // Every diagnostic is anchored: a real span inside the source
        // (or just past its end for EOF errors), never the dummy.
        assert!(
            err.span.end >= err.span.start && err.span.start <= source.len(),
            "{name}: span {:?} escapes the source",
            err.span
        );
        let rendered = err.render(&format!("{name}.deck"), source);
        assert!(rendered.contains('^'), "{name}: no caret underline");
        let path = golden_path(name);
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!("{name}: missing golden file {path:?} — bless with UPDATE_GOLDEN=1")
        });
        if rendered != want {
            failures.push(format!(
                "{name}: diagnostic drifted from {path:?}\n--- blessed\n{want}\n--- got\n{rendered}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The whole malformed-deck surface is panic-free: truncating or
/// corrupting the NMOS deck at any byte boundary yields `Ok` or a
/// spanned `Err`, never a panic.
#[test]
fn no_input_panics_the_front_end() {
    let src = diic_deck::NMOS_DECK;
    for cut in (0..src.len()).step_by(37) {
        if !src.is_char_boundary(cut) {
            continue;
        }
        let truncated = &src[..cut];
        if let Err(e) = compile_str(truncated) {
            assert!(e.span.start <= truncated.len() + 1, "cut {cut}");
        }
        let corrupted = format!("{}?{}", &src[..cut], &src[cut..]);
        let _ = compile_str(&corrupted);
    }
}
