//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the slice of JSON machinery the `diic-api` wire
//! layer needs: a self-describing [`Value`], a strict recursive-descent
//! [`from_str`] parser (position-carrying errors, bounded depth, never
//! panics on any input — `crates/api` fuzzes this in its golden
//! error-path tests), and a deterministic [`to_string`] writer.
//!
//! Two deliberate departures from the real crate, both in the service's
//! favour:
//!
//! * Numbers keep an exact [`i64`] variant ([`Value::Int`]) next to the
//!   float one — layout coordinates are database units and must survive
//!   a round trip bit-exactly.
//! * Objects preserve **insertion order** (a `Vec` of pairs, not a
//!   map), so every wire response the service renders is byte-stable
//!   across runs — the same canonical-bytes discipline the report
//!   pipeline follows.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer without fractional part or exponent, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order; duplicate keys are rejected by
    /// the parser.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs, preserving their order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Appends a member to an object (builder style; panics on
    /// non-objects — a construction bug, not a data error).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Object(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("Value::with on a non-object"),
        }
        self
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value of either number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Int(n as i64)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        // Wire counters are far below 2^63; saturate instead of wrapping.
        Value::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Why a document failed to parse: a message and the byte offset it
/// was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting ceiling: deeper documents are rejected, so hostile input
/// cannot overflow the parser's recursion.
const MAX_DEPTH: usize = 128;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(first)
                            };
                            match ch {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character in string")),
                _ => {
                    // Re-sync to char boundaries: pos-1 started a UTF-8
                    // sequence (the input is a &str, so it is valid).
                    let start = self.pos - 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    // invariant: the input came from &str, so any
                    // byte-run between boundaries is valid UTF-8.
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        let mut exact = true;
        if self.peek() == Some(b'.') {
            exact = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            exact = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        // invariant: the scanned range is ASCII digits/sign/dot/exp.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if exact {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Float(x)),
            _ => Err(self.err("number out of range")),
        }
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digit"));
        }
        Ok(self.pos - start)
    }
}

/// Renders a document in compact form (no whitespace), deterministically.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

impl std::fmt::Display for Value {
    /// Compact rendering, identical to [`to_string`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Renders a document with two-space indentation, deterministically.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            use fmt::Write as _;
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            use fmt::Write as _;
            // Finite by construction; Display for f64 round-trips.
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("0", Value::Int(0)),
            ("-42", Value::Int(-42)),
            ("9223372036854775807", Value::Int(i64::MAX)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(from_str(text).unwrap(), v, "{text}");
            assert_eq!(to_string(&v), text, "{text}");
        }
    }

    #[test]
    fn floats_and_exponents_parse() {
        assert_eq!(from_str("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(from_str("-2e3").unwrap(), Value::Float(-2000.0));
        assert_eq!(
            from_str("1e999"),
            Err(JsonError {
                message: "number out of range".into(),
                offset: 5,
            })
        );
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let text = r#"{"b":[1,2,{"x":null}],"a":"z"}"#;
        let v = from_str(text).unwrap();
        assert_eq!(to_string(&v), text, "object member order is preserved");
        assert_eq!(v.get("a").and_then(Value::as_str), Some("z"));
        assert_eq!(
            v.get("b").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let text = r#""a\"b\\c\nd\u00e9 \ud83d\ude00""#;
        let v = from_str(text).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndé 😀"));
        let re = from_str(&to_string(&v)).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "-",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\u{0007}\"",
            "[1]]",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            "nullx",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn pretty_printing_is_reparseable() {
        let v = Value::object([
            ("list", Value::array([Value::Int(1), Value::Null])),
            ("empty", Value::Array(vec![])),
            ("name", Value::from("x")),
        ]);
        let pretty = to_string_pretty(&v);
        assert_eq!(from_str(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"list\""));
    }
}
