//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! vendors the subset of proptest's API the workspace's property tests
//! use: numeric range strategies, tuple and `Vec` composition,
//! `prop_map`, simple `[a-z]{m,n}`-style string patterns, the
//! [`proptest!`] macro, and the `prop_assert*` assertions.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * inputs are generated from a deterministic per-test seed (derived
//!   from the test's module path and name), so runs are reproducible
//!   without a persistence file;
//! * there is no shrinking — a failing case panics with the assertion
//!   message directly.

use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG handed to strategies (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case: seeded from the test identity and case
    /// index so every run of the suite sees the same inputs.
    pub fn for_case(test_hash: u64, case: u32) -> Self {
        TestRng {
            state: test_hash ^ ((case as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..bound` (`bound > 0`), rejection-sampled.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a test path, used to derive per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = if span <= u64::MAX as u128 {
                    rng.below(span as u64) as u128
                } else {
                    // Only reachable for full-width 128-bit-span ranges,
                    // which the workspace never uses; sample coarsely.
                    rng.next_u64() as u128
                };
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String pattern strategies: a `&'static str` of the form
/// `[lo-hi]{m,n}` (for example `"[a-z]{1,8}"`) generates strings of
/// `m..=n` characters drawn uniformly from the inclusive class.
/// This is the only regex shape the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (expected \"[x-y]{{m,n}}\")")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class_text, rest) = rest.split_once(']')?;
    let mut class = Vec::new();
    let chars: Vec<char> = class_text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            class.extend((lo..=hi).collect::<Vec<char>>());
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        (m.trim().parse().ok()?, n.trim().parse().ok()?)
    };
    if min > max {
        return None;
    }
    Some((class, min, max))
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` with a length drawn from `len` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs a block of property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0i64..100, y in 0i64..100) {
///         prop_assert!(x + y >= x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__seed, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test (panics on failure; this
/// stand-in has no shrinking, so it is `assert!` with another name).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let f = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0i64..10, 0i64..10).prop_map(|(a, b)| a * 10 + b);
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0..100).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let strat = crate::collection::vec(0u8..4, 2..5);
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn string_pattern_class_and_length() {
        let strat = "[a-c]{2,4}";
        let mut rng = TestRng::for_case(4, 0);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0i64..100, y in 1i64..100) {
            prop_assert!(x / y <= x || x == 0);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
