//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so the bench
//! targets link against this minimal harness instead. It mirrors the
//! slice of criterion's API the workspace uses — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `iter`, and the `criterion_group!`/`criterion_main!` macros — and
//! reports median wall-clock time per iteration to stdout. There is no
//! statistical analysis; the numbers are honest but unsmoothed.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&id.to_string(), self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_samples(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

fn run_samples(label: &str, samples: usize, mut run: impl FnMut(&mut Bencher)) {
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    // One warm-up sample, then the timed ones.
    for i in 0..=samples {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        run(&mut b);
        if i > 0 {
            per_iter.push(b.per_iter);
        }
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    println!("  {label}: median {median:?} over {samples} samples");
}

/// Timer handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Times the closure. Each sample runs it a small fixed number of
    /// times and records the mean, to amortise timer overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        const ITERS: u32 = 3;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            std_black_box(f());
        }
        self.per_iter = t0.elapsed() / ITERS;
    }
}

/// Declares a bench-group function, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, as criterion does (bench targets must set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
