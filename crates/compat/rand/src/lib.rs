//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny slice of `rand`'s API that it actually
//! uses: a seedable PRNG ([`rngs::StdRng`]) and in-place slice shuffling
//! ([`seq::SliceRandom`]). The generator is a splitmix64 core — not
//! cryptographic, but deterministic per seed, which is all the synthetic
//! chip generator needs.

/// Core random-number source: the subset of `rand::RngCore` we rely on.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `0..bound` (`bound > 0`), via rejection sampling
    /// to avoid modulo bias.
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Construction of RNGs from seeds: the subset of `rand::SeedableRng`
/// we rely on.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit PRNG (splitmix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush and is
            // a single add + three xor-shift-multiplies.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// In-place shuffling, standing in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(42);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }
}
