//! Offline stand-in for the `axum` (+ `hyper`) crates.
//!
//! The build environment has no crates registry, so the workspace
//! vendors the slice of an HTTP framework `diic-api` needs, shaped
//! like axum where the shapes coincide:
//!
//! * [`Router`] with `{param}` path captures and per-method routing
//!   ([`get`] / [`post`] / [`delete`] method routers);
//! * [`Request`] / [`Response`] types, with a **streaming** response
//!   body variant ([`Body::Writer`]) — a closure handed the connection
//!   writer, which is how the service streams a canonical report
//!   through a `StreamingSink` without materialising it;
//! * [`Router::oneshot`] in-process dispatch (the tower idiom the
//!   differential and soak tests drive — no sockets involved);
//! * [`serve`], a small blocking HTTP/1.1 server over
//!   [`std::net::TcpListener`] — thread per connection, bounded by a
//!   connection cap that sheds load with `503` instead of queueing
//!   unboundedly.
//!
//! There is deliberately no async runtime: the checker engine is
//! CPU-bound and already owns a deterministic worker pool, so service
//! concurrency is plain OS threads; "async" arrives at the wire as
//! close-delimited streaming bodies.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An HTTP method (the subset the service routes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `DELETE`
    Delete,
}

impl Method {
    /// Parses a request-line method token.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    /// The canonical token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

/// An HTTP status code with its canonical reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200
    pub const OK: StatusCode = StatusCode(200);
    /// 201
    pub const CREATED: StatusCode = StatusCode(201);
    /// 400
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 404
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 405
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    /// 410
    pub const GONE: StatusCode = StatusCode(410);
    /// 413
    pub const PAYLOAD_TOO_LARGE: StatusCode = StatusCode(413);
    /// 422
    pub const UNPROCESSABLE_ENTITY: StatusCode = StatusCode(422);
    /// 429
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// 500
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// The reason phrase written on the status line.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            410 => "Gone",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// A parsed request as a handler sees it.
#[derive(Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// The decoded path, query string stripped.
    pub path: String,
    /// Query pairs in order of appearance (`?a=1&b=2`), values
    /// percent-decoded minimally (`%xx` and `+`).
    pub query: Vec<(String, String)>,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Path captures bound by the matched route pattern, in pattern
    /// order (`{id}` → `("id", "…")`).
    pub params: Vec<(String, String)>,
}

impl Request {
    /// A request with the given method and target (path plus optional
    /// `?query`) and no body — the oneshot-test constructor.
    pub fn new(method: Method, target: &str) -> Request {
        let (path, query) = split_target(target);
        Request {
            method,
            path,
            query,
            headers: Vec::new(),
            body: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Sets the body.
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// First value of a path capture.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query key.
    pub fn query_get(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A streaming body writer: handed the connection's writer, returns
/// the first I/O error it hit (a client hanging up mid-stream shows up
/// here, not as a panic).
pub type BodyWriter = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

/// A response body: either materialised bytes or a streaming writer.
pub enum Body {
    /// Fully materialised body (gets a `Content-Length`).
    Bytes(Vec<u8>),
    /// Streamed body: written straight to the connection and delimited
    /// by connection close (no `Content-Length`). Over
    /// [`Router::oneshot`] the stream is collected into bytes.
    Writer(BodyWriter),
}

impl std::fmt::Debug for Body {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Body::Bytes(b) => write!(f, "Body::Bytes({} bytes)", b.len()),
            Body::Writer(_) => write!(f, "Body::Writer(..)"),
        }
    }
}

/// A handler's response.
#[derive(Debug)]
pub struct Response {
    /// The status code.
    pub status: StatusCode,
    /// Extra headers (content-type etc.).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Body,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: StatusCode) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Body::Bytes(Vec::new()),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets a byte body.
    pub fn body(mut self, bytes: impl Into<Vec<u8>>) -> Response {
        self.body = Body::Bytes(bytes.into());
        self
    }

    /// Sets a streaming body.
    pub fn body_writer(mut self, writer: BodyWriter) -> Response {
        self.body = Body::Writer(writer);
        self
    }

    /// Plain-text convenience.
    pub fn text(status: StatusCode, text: impl Into<String>) -> Response {
        Response::new(status)
            .header("content-type", "text/plain; charset=utf-8")
            .body(text.into().into_bytes())
    }

    /// Collects the body into bytes (runs a streaming writer to
    /// completion). The in-process test path.
    pub fn into_bytes(self) -> io::Result<Vec<u8>> {
        match self.body {
            Body::Bytes(b) => Ok(b),
            Body::Writer(w) => {
                let mut buf = Vec::new();
                w(&mut buf)?;
                Ok(buf)
            }
        }
    }
}

/// The boxed handler type: request in, response out.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// Per-path method table, axum-style: `get(h)`, `post(h).delete(h2)`…
#[derive(Clone, Default)]
pub struct MethodRouter {
    entries: Vec<(Method, Handler)>,
}

impl MethodRouter {
    fn on(
        mut self,
        method: Method,
        handler: impl Fn(Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.entries.push((method, Arc::new(handler)));
        self
    }

    /// Adds a `GET` handler.
    pub fn get(self, h: impl Fn(Request) -> Response + Send + Sync + 'static) -> Self {
        self.on(Method::Get, h)
    }

    /// Adds a `POST` handler.
    pub fn post(self, h: impl Fn(Request) -> Response + Send + Sync + 'static) -> Self {
        self.on(Method::Post, h)
    }

    /// Adds a `DELETE` handler.
    pub fn delete(self, h: impl Fn(Request) -> Response + Send + Sync + 'static) -> Self {
        self.on(Method::Delete, h)
    }
}

/// A `GET` method router.
pub fn get(h: impl Fn(Request) -> Response + Send + Sync + 'static) -> MethodRouter {
    MethodRouter::default().get(h)
}

/// A `POST` method router.
pub fn post(h: impl Fn(Request) -> Response + Send + Sync + 'static) -> MethodRouter {
    MethodRouter::default().post(h)
}

/// A `DELETE` method router.
pub fn delete(h: impl Fn(Request) -> Response + Send + Sync + 'static) -> MethodRouter {
    MethodRouter::default().delete(h)
}

/// One pattern segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Seg {
    Literal(String),
    Param(String),
}

struct Route {
    segments: Vec<Seg>,
    methods: MethodRouter,
}

/// The path router. Patterns are `/`-separated with `{name}` captures:
/// `/sessions/{id}/report`. Matching is exact on segment count;
/// literal segments win over captures only by registration order, so
/// register specific routes first.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    fallback: Option<Handler>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a pattern with its method table.
    pub fn route(mut self, pattern: &str, methods: MethodRouter) -> Router {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                    Seg::Param(name.to_string())
                } else {
                    Seg::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push(Route { segments, methods });
        self
    }

    /// Handler for unmatched paths (defaults to a plain `404`).
    pub fn fallback(mut self, h: impl Fn(Request) -> Response + Send + Sync + 'static) -> Router {
        self.fallback = Some(Arc::new(h));
        self
    }

    /// Dispatches one request in-process — the tower `oneshot` idiom.
    /// `405` carries an `allow` header listing the path's methods.
    pub fn oneshot(&self, mut request: Request) -> Response {
        let segs: Vec<&str> = request
            .path
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        let mut path_matched = false;
        let mut allowed: Vec<&'static str> = Vec::new();
        for route in &self.routes {
            let Some(params) = match_segments(&route.segments, &segs) else {
                continue;
            };
            path_matched = true;
            for (m, h) in &route.methods.entries {
                if *m == request.method {
                    request.params = params;
                    return h(request);
                }
                allowed.push(m.as_str());
            }
        }
        if path_matched {
            allowed.sort_unstable();
            allowed.dedup();
            return Response::text(StatusCode::METHOD_NOT_ALLOWED, "method not allowed\n")
                .header("allow", &allowed.join(", "));
        }
        match &self.fallback {
            Some(h) => h(request),
            None => Response::text(StatusCode::NOT_FOUND, "not found\n"),
        }
    }
}

fn match_segments(pattern: &[Seg], path: &[&str]) -> Option<Vec<(String, String)>> {
    if pattern.len() != path.len() {
        return None;
    }
    let mut params = Vec::new();
    for (seg, got) in pattern.iter().zip(path) {
        match seg {
            Seg::Literal(lit) if lit == got => {}
            Seg::Literal(_) => return None,
            Seg::Param(name) => params.push((name.clone(), (*got).to_string())),
        }
    }
    Some(params)
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(p), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = |b: u8| match b {
                    b'0'..=b'9' => Some(b - b'0'),
                    b'a'..=b'f' => Some(b - b'a' + 10),
                    b'A'..=b'F' => Some(b - b'A' + 10),
                    _ => None,
                };
                match (
                    bytes.get(i + 1).and_then(|&b| hex(b)),
                    bytes.get(i + 2).and_then(|&b| hex(b)),
                ) {
                    (Some(h), Some(l)) => {
                        out.push(h * 16 + l);
                        i += 2;
                    }
                    _ => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Limits for the wire parser.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Concurrent connections before the accept loop sheds load with
    /// an immediate `503` (never an unbounded thread/queue pile-up).
    pub max_connections: usize,
    /// Request body ceiling in bytes (`413` beyond it).
    pub max_body_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_connections: 64,
            max_body_bytes: 64 << 20,
        }
    }
}

/// Serves `router` on `listener`, one thread per connection, until the
/// listener errors. Streaming bodies are close-delimited
/// (`Connection: close` on every response — the service is an
/// edit-session API, not a keep-alive file server).
pub fn serve(listener: TcpListener, router: Router, options: ServeOptions) -> io::Result<()> {
    let router = Arc::new(router);
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        let (stream, _) = listener.accept()?;
        if live.load(Ordering::Relaxed) >= options.max_connections {
            // Shed load without spawning: the 503 is written inline.
            let mut stream = stream;
            let resp = Response::text(StatusCode::SERVICE_UNAVAILABLE, "server at capacity\n");
            let _ = write_response(&mut stream, resp);
            continue;
        }
        live.fetch_add(1, Ordering::Relaxed);
        let router = Arc::clone(&router);
        let live = Arc::clone(&live);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &router, options);
            live.fetch_sub(1, Ordering::Relaxed);
        });
    }
}

fn handle_connection(stream: TcpStream, router: &Router, options: ServeOptions) -> io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let response = match read_request(&mut reader, options) {
        Ok(request) => router.oneshot(request),
        Err(ReadError::TooLarge) => {
            Response::text(StatusCode::PAYLOAD_TOO_LARGE, "request body too large\n")
        }
        Err(ReadError::Malformed(why)) => Response::text(
            StatusCode::BAD_REQUEST,
            format!("malformed request: {why}\n"),
        ),
        Err(ReadError::Io(e)) => return Err(e),
    };
    write_response(&mut stream, response)
}

enum ReadError {
    Malformed(&'static str),
    TooLarge,
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

fn read_request(reader: &mut impl BufRead, options: ServeOptions) -> Result<Request, ReadError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.trim_end().split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(ReadError::Malformed("unsupported method"))?;
    let target = parts.next().ok_or(ReadError::Malformed("missing target"))?;
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(ReadError::Malformed("missing HTTP version"));
    }
    let (path, query) = split_target(target);

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if headers.len() >= 256 {
            return Err(ReadError::Malformed("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed("header without colon"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed("bad content-length"))?;
        }
        headers.push((name, value));
    }
    if content_length > options.max_body_bytes {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        params: Vec::new(),
    })
}

fn write_response(stream: &mut TcpStream, response: Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status.0,
        response.status.reason()
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("connection: close\r\n");
    match response.body {
        Body::Bytes(bytes) => {
            head.push_str(&format!("content-length: {}\r\n\r\n", bytes.len()));
            stream.write_all(head.as_bytes())?;
            stream.write_all(&bytes)?;
        }
        Body::Writer(writer) => {
            head.push_str("\r\n");
            stream.write_all(head.as_bytes())?;
            writer(stream)?;
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn demo_router() -> Router {
        Router::new()
            .route("/healthz", get(|_| Response::text(StatusCode::OK, "ok\n")))
            .route(
                "/sessions/{id}/edits",
                post(|req| {
                    let id = req.param("id").unwrap_or("?").to_string();
                    let body = String::from_utf8_lossy(&req.body).into_owned();
                    Response::text(StatusCode::OK, format!("{id}:{body}"))
                }),
            )
            .route(
                "/stream",
                get(|_| {
                    Response::new(StatusCode::OK).body_writer(Box::new(|w| {
                        for i in 0..3 {
                            writeln!(w, "line {i}")?;
                        }
                        Ok(())
                    }))
                }),
            )
    }

    #[test]
    fn routes_with_params_dispatch() {
        let router = demo_router();
        let resp = router.oneshot(Request::new(Method::Post, "/sessions/7/edits").with_body("x"));
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.into_bytes().unwrap(), b"7:x");
    }

    #[test]
    fn unknown_path_404_wrong_method_405() {
        let router = demo_router();
        assert_eq!(
            router.oneshot(Request::new(Method::Get, "/nope")).status,
            StatusCode::NOT_FOUND
        );
        let resp = router.oneshot(Request::new(Method::Get, "/sessions/7/edits"));
        assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "allow" && v == "POST"));
    }

    #[test]
    fn streaming_bodies_collect_in_process() {
        let router = demo_router();
        let resp = router.oneshot(Request::new(Method::Get, "/stream"));
        assert_eq!(
            String::from_utf8(resp.into_bytes().unwrap()).unwrap(),
            "line 0\nline 1\nline 2\n"
        );
    }

    #[test]
    fn query_strings_parse_and_decode() {
        let req = Request::new(Method::Get, "/r?budget=64&name=a%20b+c&flag");
        assert_eq!(req.query_get("budget"), Some("64"));
        assert_eq!(req.query_get("name"), Some("a b c"));
        assert_eq!(req.query_get("flag"), Some(""));
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = serve(listener, demo_router(), ServeOptions::default());
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        let body = b"hello";
        write!(
            conn,
            "POST /sessions/42/edits HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        conn.write_all(body).unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("42:hello"), "{reply}");

        // A streamed body is close-delimited and arrives in full.
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET /stream HTTP/1.1\r\n\r\n").unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(
            reply.contains("\r\n\r\nline 0\nline 1\nline 2\n"),
            "{reply}"
        );
    }
}
