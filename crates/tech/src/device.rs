//! Device archetypes: declared device types and their rules.
//!
//! "We are requiring that all 'devices' or elemental symbols be called out
//! specifically and their type defined. Implied devices are not allowed."
//! — the paper, §"Structured Design".
//!
//! An archetype describes what a well-formed device of a given `9D` type
//! looks like (its internal construction rules, checked once per primitive
//! symbol) and how its elements interact with the outside world
//! (device-dependent interaction overrides — the paper's Fig. 6).

use crate::layer::LayerId;
use diic_geom::Coord;

/// Electrical class of a device type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Enhancement-mode MOS transistor.
    MosEnhancement,
    /// Depletion-mode MOS transistor (load).
    MosDepletion,
    /// Resistor (diffusion or base).
    Resistor,
    /// Simple contact (metal to poly or diffusion).
    Contact,
    /// Butting contact (poly + diffusion + cut + metal).
    ButtingContact,
    /// Buried contact (poly to diffusion via buried window).
    BuriedContact,
    /// Bipolar NPN transistor.
    BipolarNpn,
    /// Capacitor.
    Capacitor,
}

impl DeviceClass {
    /// True for transistors (devices whose gate/implant "cannot be assigned
    /// to a net" — the *related* interaction subcase of Fig. 12).
    pub fn is_transistor(self) -> bool {
        matches!(
            self,
            DeviceClass::MosEnhancement | DeviceClass::MosDepletion | DeviceClass::BipolarNpn
        )
    }
}

/// A device-internal construction rule, checked once per primitive symbol
/// (the paper's "check primitive symbols" stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InternalRule {
    /// Geometry on `inner` must be enclosed by geometry on `outer` with at
    /// least `margin` on every side (e.g. contact cut inside metal).
    Enclosure {
        /// The enclosed layer.
        inner: LayerId,
        /// The enclosing layer.
        outer: LayerId,
        /// Required margin.
        margin: Coord,
    },
    /// The intersection `a ∩ b` (e.g. the MOS gate: poly ∩ diffusion) must
    /// be enclosed by geometry on `outer` with at least `margin` — the
    /// *overlap-of-overlap* rule (e.g. depletion implant over the gate).
    OverlapEnclosure {
        /// First intersecting layer.
        a: LayerId,
        /// Second intersecting layer.
        b: LayerId,
        /// The layer that must enclose the intersection.
        outer: LayerId,
        /// Required margin.
        margin: Coord,
    },
    /// Geometry on `layer` must extend beyond the gate region (`a ∩ b`) by
    /// at least `amount` on the sides where it crosses (e.g. poly gate
    /// overhang, diffusion source/drain extension). Checked as: the region
    /// `layer` minus the gate must reach `amount` from the gate on the
    /// crossing axis.
    GateExtension {
        /// The layer that must extend (poly or diffusion).
        layer: LayerId,
        /// First gate layer.
        a: LayerId,
        /// Second gate layer.
        b: LayerId,
        /// Required extension.
        amount: Coord,
    },
    /// The device must contain a non-empty intersection `a ∩ b` (e.g. a
    /// transistor must actually have a gate).
    RequiresOverlap {
        /// First layer.
        a: LayerId,
        /// Second layer.
        b: LayerId,
    },
    /// Geometry on `layer` must not intersect the gate region `a ∩ b`
    /// (e.g. no contact over the active gate — paper Fig. 7).
    NoLayerOverGate {
        /// The forbidden layer.
        layer: LayerId,
        /// First gate layer.
        a: LayerId,
        /// Second gate layer.
        b: LayerId,
    },
    /// The device must contain geometry on `layer`.
    RequiresLayer {
        /// The required layer.
        layer: LayerId,
    },
    /// Minimum width for device geometry on `layer` (devices may have
    /// tighter or looser width rules than interconnect).
    MinWidth {
        /// The constrained layer.
        layer: LayerId,
        /// Required width.
        width: Coord,
    },
}

/// A device-dependent interaction override (the paper's Fig. 6).
///
/// When an element inside this device (on `own_layer`) interacts with an
/// outside element on `other_layer`, the override replaces the matrix rule:
/// `spacing: None` waives the check (the resistor-to-isolation tie);
/// `spacing: Some(s)` enforces `s` even where the matrix has no rule or the
/// elements share a net (the resistor same-net exception of Fig. 5b).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionOverride {
    /// Layer of the element inside this device.
    pub own_layer: LayerId,
    /// Layer of the other element.
    pub other_layer: LayerId,
    /// Required spacing; `None` waives the check entirely.
    pub spacing: Option<Coord>,
    /// If true the override applies even when both elements are on the same
    /// net (Fig. 5b: a short across a resistor is critical although it is
    /// electrically "equivalent").
    pub applies_same_net: bool,
}

/// A declared device type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceArchetype {
    /// The `9D` type name (e.g. `NMOS_ENH`).
    pub type_name: String,
    /// Electrical class.
    pub class: DeviceClass,
    /// Internal construction rules.
    pub internal_rules: Vec<InternalRule>,
    /// Device-dependent interaction overrides.
    pub overrides: Vec<InteractionOverride>,
    /// Terminal names the netlister expects (e.g. `["G", "S", "D"]`).
    pub terminal_names: Vec<String>,
}

impl DeviceArchetype {
    /// Creates an archetype with no rules.
    pub fn new(type_name: &str, class: DeviceClass) -> Self {
        DeviceArchetype {
            type_name: type_name.to_string(),
            class,
            internal_rules: Vec::new(),
            overrides: Vec::new(),
            terminal_names: Vec::new(),
        }
    }

    /// Adds an internal rule (builder style).
    pub fn with_rule(mut self, rule: InternalRule) -> Self {
        self.internal_rules.push(rule);
        self
    }

    /// Adds an interaction override (builder style).
    pub fn with_override(mut self, o: InteractionOverride) -> Self {
        self.overrides.push(o);
        self
    }

    /// Sets the expected terminal names (builder style).
    pub fn with_terminals(mut self, names: &[&str]) -> Self {
        self.terminal_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Finds an interaction override for the given layer pair.
    pub fn find_override(
        &self,
        own_layer: LayerId,
        other_layer: LayerId,
    ) -> Option<&InteractionOverride> {
        self.overrides
            .iter()
            .find(|o| o.own_layer == own_layer && o.other_layer == other_layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let base = LayerId(0);
        let iso = LayerId(1);
        let dev = DeviceArchetype::new("NPN", DeviceClass::BipolarNpn)
            .with_rule(InternalRule::RequiresLayer { layer: base })
            .with_override(InteractionOverride {
                own_layer: base,
                other_layer: iso,
                spacing: Some(500),
                applies_same_net: true,
            })
            .with_terminals(&["B", "E", "C"]);
        assert!(dev.class.is_transistor());
        assert_eq!(dev.internal_rules.len(), 1);
        let o = dev.find_override(base, iso).unwrap();
        assert_eq!(o.spacing, Some(500));
        assert!(dev.find_override(iso, base).is_none());
        assert_eq!(dev.terminal_names, vec!["B", "E", "C"]);
    }

    #[test]
    fn class_transistor_flags() {
        assert!(DeviceClass::MosEnhancement.is_transistor());
        assert!(DeviceClass::MosDepletion.is_transistor());
        assert!(!DeviceClass::Resistor.is_transistor());
        assert!(!DeviceClass::Contact.is_transistor());
    }
}
