//! Mask layers and their interconnect rules.

use diic_geom::Coord;

/// Identifier of a layer within a [`crate::Technology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub u16);

/// Process role of a layer. The checker uses the kind to decide which
/// elements are interconnect (checked in "check elements") and which only
/// occur inside devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Diffusion (source/drain/interconnect).
    Diffusion,
    /// Polysilicon.
    Poly,
    /// Metal.
    Metal,
    /// Contact cut — only legal inside contact devices.
    Contact,
    /// Depletion implant — only legal inside depletion-mode transistors.
    Implant,
    /// Buried-contact window — only legal inside buried-contact devices.
    Buried,
    /// Bipolar: isolation diffusion.
    Isolation,
    /// Bipolar: base diffusion.
    Base,
    /// Bipolar: emitter diffusion.
    Emitter,
    /// Overglass / pad openings (not checked geometrically).
    Glass,
}

impl LayerKind {
    /// True if elements on this kind of layer are interconnect that may
    /// appear outside device symbols (the paper's "check elements" stage
    /// checks only interconnect).
    pub fn is_interconnect(self) -> bool {
        matches!(
            self,
            LayerKind::Diffusion
                | LayerKind::Poly
                | LayerKind::Metal
                | LayerKind::Base
                | LayerKind::Isolation
        )
    }

    /// True if elements on this kind of layer may exist **only** inside a
    /// declared device symbol (contacts, implants, buried windows —
    /// "implied devices are not allowed").
    pub fn is_device_only(self) -> bool {
        matches!(
            self,
            LayerKind::Contact | LayerKind::Implant | LayerKind::Buried | LayerKind::Emitter
        )
    }
}

/// A mask layer: names, role, and interconnect width rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Canonical short name (e.g. `diff`, `poly`, `metal`).
    pub name: String,
    /// The CIF `L` command name (e.g. `ND`, `NP`, `NM`).
    pub cif_name: String,
    /// Process role.
    pub kind: LayerKind,
    /// Minimum feature width in database units.
    pub min_width: Coord,
}

impl Layer {
    /// Creates a layer.
    pub fn new(name: &str, cif_name: &str, kind: LayerKind, min_width: Coord) -> Self {
        Layer {
            name: name.to_string(),
            cif_name: cif_name.to_string(),
            kind,
            min_width,
        }
    }

    /// Half the minimum width — the skeleton shrink amount (paper Fig. 11).
    pub fn half_min_width(&self) -> Coord {
        self.min_width / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interconnect_classification() {
        assert!(LayerKind::Metal.is_interconnect());
        assert!(LayerKind::Poly.is_interconnect());
        assert!(LayerKind::Diffusion.is_interconnect());
        assert!(!LayerKind::Contact.is_interconnect());
        assert!(LayerKind::Contact.is_device_only());
        assert!(LayerKind::Implant.is_device_only());
        assert!(!LayerKind::Metal.is_device_only());
    }

    #[test]
    fn half_min_width() {
        let l = Layer::new("poly", "NP", LayerKind::Poly, 500);
        assert_eq!(l.half_min_width(), 250);
    }
}
