//! The interaction rule matrix (paper Fig. 12).
//!
//! "The possible cases can be enumerated as the elements of an upper
//! triangular matrix \[...\] Each of these cases can be broken into two
//! subcases depending on whether or not the elements are on the same net.
//! If the element is part of a transistor, the subcases depend on whether
//! or not the elements are related."

use crate::layer::LayerId;
use diic_geom::Coord;
use std::collections::HashMap;

/// One entry of the interaction matrix for an (unordered) layer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpacingRule {
    /// Spacing required between elements on **different** nets.
    pub diff_net: Coord,
    /// Spacing required between elements on the **same** net
    /// (`None` = not checked — electrically equivalent, the usual case).
    pub same_net: Option<Coord>,
    /// Spacing required between an element and a transistor's un-netted
    /// parts (gate, implant) it is *not related* to; `None` falls back to
    /// `diff_net`. ("Related" pairs — a transistor and its own terminals —
    /// are never checked.)
    pub unrelated_device: Option<Coord>,
}

impl SpacingRule {
    /// A plain different-net-only rule.
    pub fn simple(diff_net: Coord) -> Self {
        SpacingRule {
            diff_net,
            same_net: None,
            unrelated_device: None,
        }
    }

    /// The spacing to apply for a pair on the same net.
    pub fn for_same_net(&self) -> Option<Coord> {
        self.same_net
    }

    /// The spacing to apply against unrelated transistor parts.
    pub fn for_unrelated_device(&self) -> Coord {
        self.unrelated_device.unwrap_or(self.diff_net)
    }
}

/// The upper-triangular interaction matrix plus helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSet {
    spacing: HashMap<(LayerId, LayerId), SpacingRule>,
    /// Per-layer same-mask spacing: two features of the layer closer than
    /// this (but not touching) cannot share one mask of a two-mask
    /// (double-patterning) decomposition, so they form an edge of the
    /// layer's conflict graph. A post-paper rule family — the built-in
    /// technologies declare none.
    same_mask: HashMap<LayerId, Coord>,
}

fn key(a: LayerId, b: LayerId) -> (LayerId, LayerId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Sets the rule for a layer pair (order-insensitive).
    pub fn set_spacing(&mut self, a: LayerId, b: LayerId, rule: SpacingRule) {
        self.spacing.insert(key(a, b), rule);
    }

    /// The rule for a layer pair, if any ("most of these cases are not
    /// necessary; either there is no rule between those two mask layers or
    /// the only rules relate to primitive symbols which are checked
    /// already").
    pub fn spacing(&self, a: LayerId, b: LayerId) -> Option<&SpacingRule> {
        self.spacing.get(&key(a, b))
    }

    /// Number of layer-pair entries.
    pub fn len(&self) -> usize {
        self.spacing.len()
    }

    /// True if the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.spacing.is_empty()
    }

    /// Enumerates the matrix entries in deterministic (sorted) order —
    /// the Fig. 12 table.
    pub fn entries(&self) -> Vec<(LayerId, LayerId, SpacingRule)> {
        let mut v: Vec<(LayerId, LayerId, SpacingRule)> =
            self.spacing.iter().map(|(&(a, b), &r)| (a, b, r)).collect();
        v.sort_by_key(|&(a, b, _)| (a, b));
        v
    }

    /// Sets the same-mask spacing for a layer (multi-patterning
    /// decomposability — see [`RuleSet::same_mask`]).
    pub fn set_same_mask(&mut self, layer: LayerId, min_space: Coord) {
        self.same_mask.insert(layer, min_space);
    }

    /// The same-mask spacing for a layer, if declared.
    pub fn same_mask(&self, layer: LayerId) -> Option<Coord> {
        self.same_mask.get(&layer).copied()
    }

    /// True if any layer declares a same-mask spacing — the gate the
    /// multi-patterning check runs behind.
    pub fn has_same_mask(&self) -> bool {
        !self.same_mask.is_empty()
    }

    /// Enumerates the same-mask entries in deterministic (sorted) order.
    pub fn same_mask_entries(&self) -> Vec<(LayerId, Coord)> {
        let mut v: Vec<(LayerId, Coord)> = self.same_mask.iter().map(|(&l, &d)| (l, d)).collect();
        v.sort_by_key(|&(l, _)| l);
        v
    }

    /// Counts the subcases of the matrix: for `n` layers there are
    /// `n(n+1)/2` potential pairs, each with same-net and different-net
    /// subcases; returns `(pairs_with_rules, pairs_checked_same_net)`.
    /// The pruning the paper describes is the gap between the full matrix
    /// and these counts.
    pub fn subcase_counts(&self) -> (usize, usize) {
        let with_rules = self.spacing.len();
        let same_net_checked = self
            .spacing
            .values()
            .filter(|r| r.same_net.is_some())
            .count();
        (with_rules, same_net_checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_insensitive_lookup() {
        let mut rs = RuleSet::new();
        let a = LayerId(0);
        let b = LayerId(3);
        rs.set_spacing(b, a, SpacingRule::simple(750));
        assert_eq!(rs.spacing(a, b).unwrap().diff_net, 750);
        assert_eq!(rs.spacing(b, a).unwrap().diff_net, 750);
        assert!(rs.spacing(a, LayerId(9)).is_none());
    }

    #[test]
    fn same_net_default_unchecked() {
        let r = SpacingRule::simple(500);
        assert_eq!(r.for_same_net(), None);
        assert_eq!(r.for_unrelated_device(), 500);
        let strict = SpacingRule {
            diff_net: 500,
            same_net: Some(500),
            unrelated_device: Some(250),
        };
        assert_eq!(strict.for_same_net(), Some(500));
        assert_eq!(strict.for_unrelated_device(), 250);
    }

    #[test]
    fn same_mask_entries_sorted() {
        let mut rs = RuleSet::new();
        assert!(!rs.has_same_mask());
        rs.set_same_mask(LayerId(3), 1250);
        rs.set_same_mask(LayerId(1), 1000);
        assert!(rs.has_same_mask());
        assert_eq!(rs.same_mask(LayerId(3)), Some(1250));
        assert_eq!(rs.same_mask(LayerId(0)), None);
        assert_eq!(
            rs.same_mask_entries(),
            vec![(LayerId(1), 1000), (LayerId(3), 1250)]
        );
    }

    #[test]
    fn entries_sorted_and_counts() {
        let mut rs = RuleSet::new();
        rs.set_spacing(LayerId(2), LayerId(1), SpacingRule::simple(100));
        rs.set_spacing(LayerId(0), LayerId(0), SpacingRule::simple(200));
        rs.set_spacing(
            LayerId(0),
            LayerId(1),
            SpacingRule {
                diff_net: 300,
                same_net: Some(300),
                unrelated_device: None,
            },
        );
        let e = rs.entries();
        assert_eq!(e.len(), 3);
        assert!(e[0].0 <= e[0].1);
        assert_eq!(e[0].2.diff_net, 200);
        assert_eq!(rs.subcase_counts(), (3, 1));
    }
}
