//! The default silicon-gate NMOS technology (Mead–Conway λ rules).
//!
//! λ = 250 database units (2.5 µm at 1 unit = 1 centimicron), the process
//! generation of the paper's era. Layer CIF names follow the Mead–Conway
//! book: `ND` diffusion, `NP` poly, `NC` contact cut, `NM` metal, `NI`
//! depletion implant, `NB` buried window, `NG` overglass.

use crate::device::{DeviceArchetype, DeviceClass, InteractionOverride, InternalRule};
use crate::layer::{Layer, LayerKind};
use crate::rules::SpacingRule;
use crate::Technology;

/// Builds the NMOS technology.
///
/// Interconnect rules: diffusion 2λ wide / 3λ space, poly 2λ / 2λ, metal
/// 3λ / 3λ, poly-to-unrelated-diffusion 1λ. Devices: enhancement and
/// depletion transistors, poly/diffusion contacts, butting and buried
/// contacts, and a diffusion resistor with the Fig. 5b same-net exception.
pub fn nmos_technology() -> Technology {
    let lambda = 250;
    let mut t = Technology::new("nmos", lambda);

    let diff = t.add_layer(Layer::new("diff", "ND", LayerKind::Diffusion, 2 * lambda));
    let poly = t.add_layer(Layer::new("poly", "NP", LayerKind::Poly, 2 * lambda));
    let contact = t.add_layer(Layer::new("contact", "NC", LayerKind::Contact, 2 * lambda));
    let metal = t.add_layer(Layer::new("metal", "NM", LayerKind::Metal, 3 * lambda));
    let implant = t.add_layer(Layer::new("implant", "NI", LayerKind::Implant, 2 * lambda));
    let buried = t.add_layer(Layer::new("buried", "NB", LayerKind::Buried, 2 * lambda));
    let _glass = t.add_layer(Layer::new("glass", "NG", LayerKind::Glass, 2 * lambda));

    // Fig. 12: the upper-triangular interaction matrix. Unlisted pairs are
    // not checked ("either there is no rule between those two mask layers —
    // as in metal and diffusion — or the only rules relate to primitive
    // symbols which are checked already — as in contact and poly").
    {
        let r = t.rules_mut();
        r.set_spacing(diff, diff, SpacingRule::simple(3 * lambda));
        r.set_spacing(poly, poly, SpacingRule::simple(2 * lambda));
        r.set_spacing(metal, metal, SpacingRule::simple(3 * lambda));
        r.set_spacing(
            poly,
            diff,
            SpacingRule {
                diff_net: lambda,
                same_net: None,
                // Poly near an unrelated transistor's diffusion (or vice
                // versa) keeps the same 1λ rule.
                unrelated_device: Some(lambda),
            },
        );
        r.set_spacing(contact, contact, SpacingRule::simple(2 * lambda));
        r.set_spacing(buried, buried, SpacingRule::simple(2 * lambda));
        // The paper's pet "complex rule" neighbourhood: buried contact to
        // unrelated diffusion.
        r.set_spacing(buried, diff, SpacingRule::simple(2 * lambda));
    }

    // Devices.
    t.add_device(
        DeviceArchetype::new("NMOS_ENH", DeviceClass::MosEnhancement)
            .with_rule(InternalRule::RequiresOverlap { a: poly, b: diff })
            .with_rule(InternalRule::GateExtension {
                layer: poly,
                a: poly,
                b: diff,
                amount: 2 * lambda,
            })
            .with_rule(InternalRule::GateExtension {
                layer: diff,
                a: poly,
                b: diff,
                amount: 2 * lambda,
            })
            .with_rule(InternalRule::NoLayerOverGate {
                layer: contact,
                a: poly,
                b: diff,
            })
            .with_terminals(&["G", "S", "D"]),
    );
    t.add_device(
        DeviceArchetype::new("NMOS_DEP", DeviceClass::MosDepletion)
            .with_rule(InternalRule::RequiresOverlap { a: poly, b: diff })
            .with_rule(InternalRule::RequiresLayer { layer: implant })
            .with_rule(InternalRule::GateExtension {
                layer: poly,
                a: poly,
                b: diff,
                amount: 2 * lambda,
            })
            .with_rule(InternalRule::GateExtension {
                layer: diff,
                a: poly,
                b: diff,
                amount: 2 * lambda,
            })
            .with_rule(InternalRule::OverlapEnclosure {
                a: poly,
                b: diff,
                outer: implant,
                margin: 3 * lambda / 2,
            })
            .with_rule(InternalRule::NoLayerOverGate {
                layer: contact,
                a: poly,
                b: diff,
            })
            .with_terminals(&["G", "S", "D"]),
    );
    t.add_device(
        DeviceArchetype::new("CONTACT_D", DeviceClass::Contact)
            .with_rule(InternalRule::RequiresLayer { layer: contact })
            .with_rule(InternalRule::MinWidth {
                layer: contact,
                width: 2 * lambda,
            })
            .with_rule(InternalRule::Enclosure {
                inner: contact,
                outer: diff,
                margin: lambda,
            })
            .with_rule(InternalRule::Enclosure {
                inner: contact,
                outer: metal,
                margin: lambda,
            })
            .with_terminals(&["A", "B"]),
    );
    t.add_device(
        DeviceArchetype::new("CONTACT_P", DeviceClass::Contact)
            .with_rule(InternalRule::RequiresLayer { layer: contact })
            .with_rule(InternalRule::MinWidth {
                layer: contact,
                width: 2 * lambda,
            })
            .with_rule(InternalRule::Enclosure {
                inner: contact,
                outer: poly,
                margin: lambda,
            })
            .with_rule(InternalRule::Enclosure {
                inner: contact,
                outer: metal,
                margin: lambda,
            })
            .with_terminals(&["A", "B"]),
    );
    // Butting contact (paper Fig. 7, right): poly and diffusion overlap,
    // the cut covers the overlap, metal covers the cut. Crucially there is
    // NO NoLayerOverGate rule — the poly∩diff region here is not a gate.
    t.add_device(
        DeviceArchetype::new("BUTTING_CONTACT", DeviceClass::ButtingContact)
            .with_rule(InternalRule::RequiresLayer { layer: contact })
            .with_rule(InternalRule::RequiresOverlap { a: poly, b: diff })
            .with_rule(InternalRule::Enclosure {
                inner: contact,
                outer: metal,
                margin: lambda,
            })
            .with_terminals(&["A", "B"]),
    );
    t.add_device(
        DeviceArchetype::new("BURIED_CONTACT", DeviceClass::BuriedContact)
            .with_rule(InternalRule::RequiresLayer { layer: buried })
            .with_rule(InternalRule::RequiresOverlap { a: poly, b: diff })
            .with_rule(InternalRule::OverlapEnclosure {
                a: poly,
                b: diff,
                outer: buried,
                margin: lambda,
            })
            .with_terminals(&["A", "B"]),
    );
    // Diffusion resistor: Fig. 5b — spacing across the resistor must be
    // checked even between electrically equivalent (same-net) elements.
    t.add_device(
        DeviceArchetype::new("RESISTOR_D", DeviceClass::Resistor)
            .with_rule(InternalRule::RequiresLayer { layer: diff })
            .with_override(InteractionOverride {
                own_layer: diff,
                other_layer: diff,
                spacing: Some(3 * lambda),
                applies_same_net: true,
            })
            .with_terminals(&["A", "B"]),
    );

    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn layers_present_with_lambda_rules() {
        let t = nmos_technology();
        let diff = t.layer_by_name("diff").unwrap();
        let poly = t.layer_by_name("poly").unwrap();
        let metal = t.layer_by_name("metal").unwrap();
        assert_eq!(t.layer(diff).min_width, 500);
        assert_eq!(t.layer(poly).min_width, 500);
        assert_eq!(t.layer(metal).min_width, 750);
        assert_eq!(t.layer(metal).kind, LayerKind::Metal);
    }

    #[test]
    fn matrix_entries_match_mead_conway() {
        let t = nmos_technology();
        let diff = t.layer_by_name("diff").unwrap();
        let poly = t.layer_by_name("poly").unwrap();
        let metal = t.layer_by_name("metal").unwrap();
        assert_eq!(t.rules().spacing(diff, diff).unwrap().diff_net, 750);
        assert_eq!(t.rules().spacing(poly, poly).unwrap().diff_net, 500);
        assert_eq!(t.rules().spacing(poly, diff).unwrap().diff_net, 250);
        // Metal-diffusion: no rule (metal crosses everything).
        assert!(t.rules().spacing(metal, diff).is_none());
        assert!(t.rules().spacing(metal, poly).is_none());
        // Same-net pairs unchecked by default.
        assert_eq!(t.rules().spacing(diff, diff).unwrap().same_net, None);
    }

    #[test]
    fn enhancement_transistor_archetype() {
        let t = nmos_technology();
        let dev = t.device("NMOS_ENH").unwrap();
        assert_eq!(dev.class, DeviceClass::MosEnhancement);
        assert!(dev
            .internal_rules
            .iter()
            .any(|r| matches!(r, InternalRule::NoLayerOverGate { .. })));
        assert!(dev
            .internal_rules
            .iter()
            .any(|r| matches!(r, InternalRule::RequiresOverlap { .. })));
        assert_eq!(dev.terminal_names, vec!["G", "S", "D"]);
    }

    #[test]
    fn butting_contact_allows_contact_over_overlap() {
        let t = nmos_technology();
        let butting = t.device("BUTTING_CONTACT").unwrap();
        assert!(!butting
            .internal_rules
            .iter()
            .any(|r| matches!(r, InternalRule::NoLayerOverGate { .. })));
    }

    #[test]
    fn resistor_same_net_exception() {
        let t = nmos_technology();
        let diff = t.layer_by_name("diff").unwrap();
        let res = t.device("RESISTOR_D").unwrap();
        let o = res.find_override(diff, diff).unwrap();
        assert!(o.applies_same_net);
        assert_eq!(o.spacing, Some(750));
    }

    #[test]
    fn depletion_has_implant_enclosure() {
        let t = nmos_technology();
        let dep = t.device("NMOS_DEP").unwrap();
        assert!(dep
            .internal_rules
            .iter()
            .any(|r| matches!(r, InternalRule::OverlapEnclosure { margin: 375, .. })));
    }
}
