//! A small text format for technology rule files.
//!
//! "A means is required to inform the circuit designer of those
//! limitations" — and the verification tools. The DSL lets process
//! engineers state rules in the paper's four categories without
//! recompiling. Line-oriented; `#` starts a comment.
//!
//! ```text
//! tech nmos lambda 250
//! layer diff ND diffusion width 500
//! layer poly NP poly width 500
//! space diff diff 750
//! space poly diff 250 unrelated 250
//! samemask metal 1250
//! power VDD
//! ground GND VSS
//! busprefix BUS_
//! device NMOS_ENH mos_enh
//!   requires_overlap poly diff
//!   gate_extension poly poly diff 500
//!   no_layer_over_gate contact poly diff
//!   enclosure contact metal 250
//!   overlap_enclosure poly diff implant 375
//!   requires_layer implant
//!   min_width contact 500
//!   override diff diff 750 samenet
//!   override base iso none
//!   terminals G S D
//! end
//! ```

use crate::device::{DeviceArchetype, DeviceClass, InteractionOverride, InternalRule};
use crate::layer::{Layer, LayerId, LayerKind};
use crate::rules::SpacingRule;
use crate::Technology;
use std::fmt;

/// An error in a rule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

fn err(line: usize, message: impl Into<String>) -> DslError {
    DslError {
        line,
        message: message.into(),
    }
}

/// Parses a rule file into a [`Technology`].
///
/// # Errors
///
/// [`DslError`] with the offending line number.
pub fn parse_rules(text: &str) -> Result<Technology, DslError> {
    let mut tech: Option<Technology> = None;
    let mut device: Option<DeviceArchetype> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let cmd = parts[0];

        if cmd == "tech" {
            let [_, name, kw, lambda] = parts.as_slice() else {
                return Err(err(line_no, "tech wants: tech <name> lambda <units>"));
            };
            if *kw != "lambda" {
                return Err(err(line_no, "tech wants: tech <name> lambda <units>"));
            }
            let lambda: i64 = lambda
                .parse()
                .map_err(|_| err(line_no, format!("bad lambda {lambda:?}")))?;
            tech = Some(Technology::new(name, lambda));
            continue;
        }

        let t = tech
            .as_mut()
            .ok_or_else(|| err(line_no, "first directive must be `tech`"))?;

        if let Some(dev) = device.as_mut() {
            // Inside a device block.
            match cmd {
                "end" => {
                    let d = device.take().expect("checked above");
                    t.add_device(d);
                }
                "requires_overlap" => {
                    let [a, b] = args(&parts, 2, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::RequiresOverlap {
                        a: layer_of(t, a, line_no)?,
                        b: layer_of(t, b, line_no)?,
                    });
                }
                "requires_layer" => {
                    let [l] = args(&parts, 1, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::RequiresLayer {
                        layer: layer_of(t, l, line_no)?,
                    });
                }
                "enclosure" => {
                    let [inner, outer, m] = args(&parts, 3, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::Enclosure {
                        inner: layer_of(t, inner, line_no)?,
                        outer: layer_of(t, outer, line_no)?,
                        margin: num(m, line_no)?,
                    });
                }
                "overlap_enclosure" => {
                    let [a, b, outer, m] = args(&parts, 4, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::OverlapEnclosure {
                        a: layer_of(t, a, line_no)?,
                        b: layer_of(t, b, line_no)?,
                        outer: layer_of(t, outer, line_no)?,
                        margin: num(m, line_no)?,
                    });
                }
                "gate_extension" => {
                    let [l, a, b, m] = args(&parts, 4, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::GateExtension {
                        layer: layer_of(t, l, line_no)?,
                        a: layer_of(t, a, line_no)?,
                        b: layer_of(t, b, line_no)?,
                        amount: num(m, line_no)?,
                    });
                }
                "no_layer_over_gate" => {
                    let [l, a, b] = args(&parts, 3, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::NoLayerOverGate {
                        layer: layer_of(t, l, line_no)?,
                        a: layer_of(t, a, line_no)?,
                        b: layer_of(t, b, line_no)?,
                    });
                }
                "min_width" => {
                    let [l, w] = args(&parts, 2, line_no)?[..] else {
                        unreachable!()
                    };
                    dev.internal_rules.push(InternalRule::MinWidth {
                        layer: layer_of(t, l, line_no)?,
                        width: num(w, line_no)?,
                    });
                }
                "override" => {
                    // override <own> <other> <spacing|none> [samenet]
                    if parts.len() < 4 {
                        return Err(err(
                            line_no,
                            "override wants: own other spacing|none [samenet]",
                        ));
                    }
                    let own = layer_of(t, parts[1], line_no)?;
                    let other = layer_of(t, parts[2], line_no)?;
                    let spacing = if parts[3] == "none" {
                        None
                    } else {
                        Some(num(parts[3], line_no)?)
                    };
                    let applies_same_net = parts.get(4) == Some(&"samenet");
                    dev.overrides.push(InteractionOverride {
                        own_layer: own,
                        other_layer: other,
                        spacing,
                        applies_same_net,
                    });
                }
                "terminals" => {
                    dev.terminal_names = parts[1..].iter().map(|s| s.to_string()).collect();
                }
                other => return Err(err(line_no, format!("unknown device directive {other:?}"))),
            }
            continue;
        }

        match cmd {
            "layer" => {
                // layer <name> <cif> <kind> width <w>
                let [_, name, cif, kind, kw, w] = parts.as_slice() else {
                    return Err(err(line_no, "layer wants: layer name cif kind width <w>"));
                };
                if *kw != "width" {
                    return Err(err(line_no, "layer wants: layer name cif kind width <w>"));
                }
                let kind = kind_of(kind, line_no)?;
                let w = num(w, line_no)?;
                t.add_layer(Layer::new(name, cif, kind, w));
            }
            "space" => {
                // space <a> <b> <diff_net> [samenet <s>] [unrelated <u>]
                if parts.len() < 4 {
                    return Err(err(
                        line_no,
                        "space wants: space a b diffnet [samenet s] [unrelated u]",
                    ));
                }
                let a = layer_of(t, parts[1], line_no)?;
                let b = layer_of(t, parts[2], line_no)?;
                let diff_net = num(parts[3], line_no)?;
                let mut rule = SpacingRule::simple(diff_net);
                let mut i = 4;
                while i < parts.len() {
                    match parts[i] {
                        "samenet" => {
                            let v = parts
                                .get(i + 1)
                                .ok_or_else(|| err(line_no, "samenet wants a value"))?;
                            rule.same_net = Some(num(v, line_no)?);
                            i += 2;
                        }
                        "unrelated" => {
                            let v = parts
                                .get(i + 1)
                                .ok_or_else(|| err(line_no, "unrelated wants a value"))?;
                            rule.unrelated_device = Some(num(v, line_no)?);
                            i += 2;
                        }
                        other => {
                            return Err(err(line_no, format!("unknown space option {other:?}")))
                        }
                    }
                }
                t.rules_mut().set_spacing(a, b, rule);
            }
            "samemask" => {
                // samemask <layer> <min_space>
                let [l, d] = args(&parts, 2, line_no)?[..] else {
                    unreachable!()
                };
                let layer = layer_of(t, l, line_no)?;
                let d = num(d, line_no)?;
                t.rules_mut().set_same_mask(layer, d);
            }
            "power" => {
                t.power_nets = parts[1..].iter().map(|s| s.to_string()).collect();
            }
            "ground" => {
                t.ground_nets = parts[1..].iter().map(|s| s.to_string()).collect();
            }
            "busprefix" => {
                let [_, p] = parts.as_slice() else {
                    return Err(err(line_no, "busprefix wants one argument"));
                };
                t.bus_prefix = p.to_string();
            }
            "ioprefix" => {
                let [_, p] = parts.as_slice() else {
                    return Err(err(line_no, "ioprefix wants one argument"));
                };
                t.io_prefix = p.to_string();
            }
            "device" => {
                let [_, name, class] = parts.as_slice() else {
                    return Err(err(line_no, "device wants: device <name> <class>"));
                };
                device = Some(DeviceArchetype::new(name, class_of(class, line_no)?));
            }
            "end" => return Err(err(line_no, "end without device")),
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }
    if device.is_some() {
        return Err(err(
            text.lines().count(),
            "device block never closed with `end`",
        ));
    }
    tech.ok_or_else(|| err(0, "empty rule file (missing `tech`)"))
}

/// Serialises a technology to the rule-file format (round-trippable).
pub fn to_rules(t: &Technology) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "tech {} lambda {}", t.name(), t.lambda());
    for layer in t.layers() {
        let _ = writeln!(
            s,
            "layer {} {} {} width {}",
            layer.name,
            layer.cif_name,
            kind_name(layer.kind),
            layer.min_width
        );
    }
    for (a, b, rule) in t.rules().entries() {
        let _ = write!(
            s,
            "space {} {} {}",
            t.layer(a).name,
            t.layer(b).name,
            rule.diff_net
        );
        if let Some(sn) = rule.same_net {
            let _ = write!(s, " samenet {sn}");
        }
        if let Some(u) = rule.unrelated_device {
            let _ = write!(s, " unrelated {u}");
        }
        s.push('\n');
    }
    for (layer, d) in t.rules().same_mask_entries() {
        let _ = writeln!(s, "samemask {} {d}", t.layer(layer).name);
    }
    let _ = writeln!(s, "power {}", t.power_nets.join(" "));
    let _ = writeln!(s, "ground {}", t.ground_nets.join(" "));
    let _ = writeln!(s, "busprefix {}", t.bus_prefix);
    let _ = writeln!(s, "ioprefix {}", t.io_prefix);
    for dev in t.devices() {
        let _ = writeln!(s, "device {} {}", dev.type_name, class_name(dev.class));
        for rule in &dev.internal_rules {
            match rule {
                InternalRule::Enclosure {
                    inner,
                    outer,
                    margin,
                } => {
                    let _ = writeln!(
                        s,
                        "  enclosure {} {} {margin}",
                        t.layer(*inner).name,
                        t.layer(*outer).name
                    );
                }
                InternalRule::OverlapEnclosure {
                    a,
                    b,
                    outer,
                    margin,
                } => {
                    let _ = writeln!(
                        s,
                        "  overlap_enclosure {} {} {} {margin}",
                        t.layer(*a).name,
                        t.layer(*b).name,
                        t.layer(*outer).name
                    );
                }
                InternalRule::GateExtension {
                    layer,
                    a,
                    b,
                    amount,
                } => {
                    let _ = writeln!(
                        s,
                        "  gate_extension {} {} {} {amount}",
                        t.layer(*layer).name,
                        t.layer(*a).name,
                        t.layer(*b).name
                    );
                }
                InternalRule::RequiresOverlap { a, b } => {
                    let _ = writeln!(
                        s,
                        "  requires_overlap {} {}",
                        t.layer(*a).name,
                        t.layer(*b).name
                    );
                }
                InternalRule::NoLayerOverGate { layer, a, b } => {
                    let _ = writeln!(
                        s,
                        "  no_layer_over_gate {} {} {}",
                        t.layer(*layer).name,
                        t.layer(*a).name,
                        t.layer(*b).name
                    );
                }
                InternalRule::RequiresLayer { layer } => {
                    let _ = writeln!(s, "  requires_layer {}", t.layer(*layer).name);
                }
                InternalRule::MinWidth { layer, width } => {
                    let _ = writeln!(s, "  min_width {} {width}", t.layer(*layer).name);
                }
            }
        }
        for o in &dev.overrides {
            let spacing = o
                .spacing
                .map(|v| v.to_string())
                .unwrap_or_else(|| "none".to_string());
            let tail = if o.applies_same_net { " samenet" } else { "" };
            let _ = writeln!(
                s,
                "  override {} {} {spacing}{tail}",
                t.layer(o.own_layer).name,
                t.layer(o.other_layer).name
            );
        }
        if !dev.terminal_names.is_empty() {
            let _ = writeln!(s, "  terminals {}", dev.terminal_names.join(" "));
        }
        s.push_str("end\n");
    }
    s
}

fn args<'a>(parts: &[&'a str], n: usize, line: usize) -> Result<Vec<&'a str>, DslError> {
    if parts.len() != n + 1 {
        return Err(err(
            line,
            format!("{} wants {n} arguments, got {}", parts[0], parts.len() - 1),
        ));
    }
    Ok(parts[1..].to_vec())
}

fn num(s: &str, line: usize) -> Result<i64, DslError> {
    s.parse()
        .map_err(|_| err(line, format!("bad number {s:?}")))
}

fn layer_of(t: &Technology, name: &str, line: usize) -> Result<LayerId, DslError> {
    t.layer_by_name(name)
        .ok_or_else(|| err(line, format!("unknown layer {name:?}")))
}

fn kind_of(s: &str, line: usize) -> Result<LayerKind, DslError> {
    Ok(match s {
        "diffusion" => LayerKind::Diffusion,
        "poly" => LayerKind::Poly,
        "metal" => LayerKind::Metal,
        "contact" => LayerKind::Contact,
        "implant" => LayerKind::Implant,
        "buried" => LayerKind::Buried,
        "isolation" => LayerKind::Isolation,
        "base" => LayerKind::Base,
        "emitter" => LayerKind::Emitter,
        "glass" => LayerKind::Glass,
        other => return Err(err(line, format!("unknown layer kind {other:?}"))),
    })
}

fn kind_name(k: LayerKind) -> &'static str {
    match k {
        LayerKind::Diffusion => "diffusion",
        LayerKind::Poly => "poly",
        LayerKind::Metal => "metal",
        LayerKind::Contact => "contact",
        LayerKind::Implant => "implant",
        LayerKind::Buried => "buried",
        LayerKind::Isolation => "isolation",
        LayerKind::Base => "base",
        LayerKind::Emitter => "emitter",
        LayerKind::Glass => "glass",
    }
}

fn class_of(s: &str, line: usize) -> Result<DeviceClass, DslError> {
    Ok(match s {
        "mos_enh" => DeviceClass::MosEnhancement,
        "mos_dep" => DeviceClass::MosDepletion,
        "resistor" => DeviceClass::Resistor,
        "contact" => DeviceClass::Contact,
        "butting_contact" => DeviceClass::ButtingContact,
        "buried_contact" => DeviceClass::BuriedContact,
        "npn" => DeviceClass::BipolarNpn,
        "capacitor" => DeviceClass::Capacitor,
        other => return Err(err(line, format!("unknown device class {other:?}"))),
    })
}

fn class_name(c: DeviceClass) -> &'static str {
    match c {
        DeviceClass::MosEnhancement => "mos_enh",
        DeviceClass::MosDepletion => "mos_dep",
        DeviceClass::Resistor => "resistor",
        DeviceClass::Contact => "contact",
        DeviceClass::ButtingContact => "butting_contact",
        DeviceClass::BuriedContact => "buried_contact",
        DeviceClass::BipolarNpn => "npn",
        DeviceClass::Capacitor => "capacitor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bipolar::bipolar_technology, nmos::nmos_technology};

    #[test]
    fn roundtrip_nmos() {
        let t = nmos_technology();
        let text = to_rules(&t);
        let back = parse_rules(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_bipolar() {
        let t = bipolar_technology();
        let text = to_rules(&t);
        let back = parse_rules(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn parse_minimal() {
        let t = parse_rules("tech demo lambda 100\nlayer m M1 metal width 300\nspace m m 300\n")
            .unwrap();
        assert_eq!(t.lambda(), 100);
        let m = t.layer_by_name("m").unwrap();
        assert_eq!(t.rules().spacing(m, m).unwrap().diff_net, 300);
    }

    #[test]
    fn samemask_round_trips() {
        let mut t = nmos_technology();
        let metal = t.layer_by_name("metal").unwrap();
        t.rules_mut().set_same_mask(metal, 1250);
        let text = to_rules(&t);
        assert!(text.contains("samemask metal 1250"));
        let back = parse_rules(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blank_lines() {
        let t = parse_rules("# header\n\ntech x lambda 1\n# done\n").unwrap();
        assert_eq!(t.name(), "x");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_rules("tech x lambda 1\nlayer bad\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_rules("layer a A metal width 1\n").unwrap_err();
        assert!(e.message.contains("tech"));
        let e = parse_rules("tech x lambda 1\nspace a b 100\n").unwrap_err();
        assert!(e.message.contains("unknown layer"));
        let e = parse_rules("tech x lambda 1\ndevice D mos_enh\n").unwrap_err();
        assert!(e.message.contains("never closed"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse_rules("tech x lambda 1\nfrobnicate\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }
}
