//! A minimal bipolar technology exercising device-dependent rules
//! (paper Fig. 6).
//!
//! The same base-diffusion mask makes both transistor bases and resistors.
//! Shorting a transistor's base region to the surrounding isolation
//! "destroys the integrity of the device" — an error — while connecting a
//! base *resistor* to isolation "is a common technique to tie one end of a
//! resistor to ground and is quite legal".

use crate::device::{DeviceArchetype, DeviceClass, InteractionOverride, InternalRule};
use crate::layer::{Layer, LayerKind};
use crate::rules::SpacingRule;
use crate::Technology;

/// Builds the bipolar technology (λ = 250 database units).
pub fn bipolar_technology() -> Technology {
    let lambda = 250;
    let mut t = Technology::new("bipolar", lambda);

    let iso = t.add_layer(Layer::new("iso", "BI", LayerKind::Isolation, 2 * lambda));
    let base = t.add_layer(Layer::new("base", "BB", LayerKind::Base, 2 * lambda));
    let emit = t.add_layer(Layer::new("emitter", "BE", LayerKind::Emitter, 2 * lambda));
    let contact = t.add_layer(Layer::new("contact", "BC", LayerKind::Contact, 2 * lambda));
    let metal = t.add_layer(Layer::new("metal", "BM", LayerKind::Metal, 3 * lambda));

    {
        let r = t.rules_mut();
        r.set_spacing(base, base, SpacingRule::simple(3 * lambda));
        r.set_spacing(iso, iso, SpacingRule::simple(3 * lambda));
        // The mask-level rule the paper criticises: base to isolation. The
        // matrix carries the generic rule; device overrides specialise it.
        r.set_spacing(base, iso, SpacingRule::simple(2 * lambda));
        r.set_spacing(metal, metal, SpacingRule::simple(3 * lambda));
        r.set_spacing(contact, contact, SpacingRule::simple(2 * lambda));
    }

    // Fig. 6a: the transistor base must keep clear of isolation even when
    // nets match — integrity of the device.
    t.add_device(
        DeviceArchetype::new("NPN", DeviceClass::BipolarNpn)
            .with_rule(InternalRule::RequiresLayer { layer: base })
            .with_rule(InternalRule::RequiresLayer { layer: emit })
            .with_rule(InternalRule::Enclosure {
                inner: emit,
                outer: base,
                margin: lambda,
            })
            .with_override(InteractionOverride {
                own_layer: base,
                other_layer: iso,
                spacing: Some(2 * lambda),
                applies_same_net: true,
            })
            .with_terminals(&["B", "E", "C"]),
    );

    // Fig. 6b: the base resistor may touch isolation (ground tie) — the
    // base/iso check is waived for this device.
    t.add_device(
        DeviceArchetype::new("BASE_RESISTOR", DeviceClass::Resistor)
            .with_rule(InternalRule::RequiresLayer { layer: base })
            .with_override(InteractionOverride {
                own_layer: base,
                other_layer: iso,
                spacing: None,
                applies_same_net: false,
            })
            // Fig. 5b: spacing across the resistor body is checked even on
            // the same net.
            .with_override(InteractionOverride {
                own_layer: base,
                other_layer: base,
                spacing: Some(3 * lambda),
                applies_same_net: true,
            })
            .with_terminals(&["A", "B"]),
    );

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_device_dependent_overrides() {
        let t = bipolar_technology();
        let base = t.layer_by_name("base").unwrap();
        let iso = t.layer_by_name("iso").unwrap();
        // Transistor: strict spacing, same-net included.
        let npn = t.device("NPN").unwrap();
        let o = npn.find_override(base, iso).unwrap();
        assert_eq!(o.spacing, Some(500));
        assert!(o.applies_same_net);
        // Resistor: waived.
        let res = t.device("BASE_RESISTOR").unwrap();
        let o = res.find_override(base, iso).unwrap();
        assert_eq!(o.spacing, None);
    }

    #[test]
    fn generic_matrix_rule_exists() {
        let t = bipolar_technology();
        let base = t.layer_by_name("base").unwrap();
        let iso = t.layer_by_name("iso").unwrap();
        assert_eq!(t.rules().spacing(base, iso).unwrap().diff_net, 500);
    }

    #[test]
    fn npn_structure_rules() {
        let t = bipolar_technology();
        let npn = t.device("NPN").unwrap();
        assert!(npn.class.is_transistor());
        assert!(npn
            .internal_rules
            .iter()
            .any(|r| matches!(r, InternalRule::Enclosure { margin: 250, .. })));
    }
}
