//! # diic-tech — technology descriptions and design rules for DIIC
//!
//! The paper (§"Design Rules") argues design rules should be organised not
//! by mask level but by:
//!
//! 1. legal **devices** and related rules,
//! 2. legal **interconnect**: width and connection rules,
//! 3. **interaction** rules between devices and interconnect,
//! 4. **non-geometric construction** rules.
//!
//! This crate encodes exactly that structure:
//!
//! * [`Layer`]/[`LayerKind`] — mask layers with interconnect width rules;
//! * [`RuleSet`] — the upper-triangular layer-pair **interaction matrix**
//!   of the paper's Fig. 12, each entry split into *same-net* /
//!   *different-net* / *device-related* subcases;
//! * [`DeviceArchetype`]/[`InternalRule`] — declared device types (the
//!   `9D` extension) with their internal construction rules (enclosure,
//!   extension, overlap-of-overlap, forbidden layers) and their
//!   device-dependent interaction overrides (the paper's Fig. 6:
//!   a base-to-isolation short is an error for a transistor but legal for
//!   a resistor tie);
//! * [`Technology`] — the bundle, plus non-geometric rule configuration
//!   (power/ground net names, bus prefix);
//! * [`nmos::nmos_technology`] — a Mead–Conway λ-rule silicon-gate NMOS
//!   process (λ = 250 centimicrons = 2.5 µm), the process family the
//!   paper's examples use;
//! * [`bipolar::bipolar_technology`] — a minimal bipolar process exercising
//!   the device-dependent rules of Fig. 6;
//! * [`dsl`] — a small text format for rule files, so rules can "become
//!   increasingly more specific" without recompiling.

pub mod bipolar;
pub mod device;
pub mod dsl;
pub mod layer;
pub mod nmos;
pub mod rules;

pub use device::{DeviceArchetype, DeviceClass, InteractionOverride, InternalRule};
pub use layer::{Layer, LayerId, LayerKind};
pub use rules::{RuleSet, SpacingRule};

use std::collections::HashMap;

/// A complete process technology: layers, rules, devices, ERC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Technology {
    name: String,
    lambda: i64,
    layers: Vec<Layer>,
    by_cif: HashMap<String, LayerId>,
    by_name: HashMap<String, LayerId>,
    rules: RuleSet,
    devices: HashMap<String, DeviceArchetype>,
    /// Net names treated as power for ERC.
    pub power_nets: Vec<String>,
    /// Net names treated as ground for ERC.
    pub ground_nets: Vec<String>,
    /// Net-name prefix identifying buses for ERC.
    pub bus_prefix: String,
    /// Net-name prefix identifying chip I/O ports, exempt from the
    /// dangling-net rule (ports connect off chip).
    pub io_prefix: String,
}

impl Technology {
    /// Creates an empty technology with the given name and λ (in database
    /// units).
    pub fn new(name: &str, lambda: i64) -> Self {
        Technology {
            name: name.to_string(),
            lambda,
            layers: Vec::new(),
            by_cif: HashMap::new(),
            by_name: HashMap::new(),
            rules: RuleSet::default(),
            devices: HashMap::new(),
            power_nets: vec!["VDD".to_string()],
            ground_nets: vec!["GND".to_string(), "VSS".to_string()],
            bus_prefix: "BUS_".to_string(),
            io_prefix: "IO_".to_string(),
        }
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// λ in database units.
    pub fn lambda(&self) -> i64 {
        self.lambda
    }

    /// Adds a layer; returns its id.
    pub fn add_layer(&mut self, layer: Layer) -> LayerId {
        let id = LayerId(self.layers.len() as u16);
        self.by_cif.insert(layer.cif_name.clone(), id);
        self.by_name.insert(layer.name.clone(), id);
        self.layers.push(layer);
        id
    }

    /// All layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer by id.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0 as usize]
    }

    /// Looks up a layer by its CIF name (e.g. `ND`).
    pub fn layer_by_cif(&self, cif_name: &str) -> Option<LayerId> {
        self.by_cif.get(cif_name).copied()
    }

    /// Looks up a layer by its canonical name (e.g. `diff`).
    pub fn layer_by_name(&self, name: &str) -> Option<LayerId> {
        self.by_name.get(name).copied()
    }

    /// The interaction rule set (mutable access for construction).
    pub fn rules_mut(&mut self) -> &mut RuleSet {
        &mut self.rules
    }

    /// The interaction rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Registers a device archetype under its `9D` type name.
    pub fn add_device(&mut self, dev: DeviceArchetype) {
        self.devices.insert(dev.type_name.clone(), dev);
    }

    /// Looks up a device archetype by `9D` type name.
    pub fn device(&self, type_name: &str) -> Option<&DeviceArchetype> {
        self.devices.get(type_name)
    }

    /// All registered device archetypes (sorted by type name for
    /// deterministic iteration).
    pub fn devices(&self) -> Vec<&DeviceArchetype> {
        let mut v: Vec<&DeviceArchetype> = self.devices.values().collect();
        v.sort_by(|a, b| a.type_name.cmp(&b.type_name));
        v
    }

    /// True if `net` is a power net name.
    pub fn is_power(&self, net: &str) -> bool {
        self.power_nets.iter().any(|n| n == net)
    }

    /// True if `net` is a ground net name.
    pub fn is_ground(&self, net: &str) -> bool {
        self.ground_nets.iter().any(|n| n == net)
    }

    /// True if `net` is a bus by naming convention.
    pub fn is_bus(&self, net: &str) -> bool {
        net.starts_with(&self.bus_prefix)
    }

    /// True if `net` is a chip I/O port by naming convention.
    pub fn is_io(&self, net: &str) -> bool {
        net.starts_with(&self.io_prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_lookup() {
        let t = nmos::nmos_technology();
        assert_eq!(t.name(), "nmos");
        assert_eq!(t.lambda(), 250);
        let diff = t.layer_by_cif("ND").unwrap();
        assert_eq!(t.layer(diff).name, "diff");
        assert_eq!(t.layer_by_name("diff"), Some(diff));
        assert!(t.layer_by_cif("XX").is_none());
    }

    #[test]
    fn erc_net_classification() {
        let t = nmos::nmos_technology();
        assert!(t.is_power("VDD"));
        assert!(t.is_ground("GND"));
        assert!(t.is_ground("VSS"));
        assert!(t.is_bus("BUS_A"));
        assert!(!t.is_bus("A"));
        assert!(!t.is_power("GND"));
    }

    #[test]
    fn devices_sorted() {
        let t = nmos::nmos_technology();
        let names: Vec<&str> = t.devices().iter().map(|d| d.type_name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(!names.is_empty());
    }
}
