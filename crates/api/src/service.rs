//! The HTTP surface: routes, handlers, and the streamed report body.
//!
//! | Route                        | Method | Does                                                    |
//! |------------------------------|--------|---------------------------------------------------------|
//! | `/healthz`                   | GET    | liveness                                                |
//! | `/stats`                     | GET    | registry counters and pool memory                       |
//! | `/sessions`                  | POST   | open a [`CheckSession`]; body `{cif, deck?, options?}`  |
//! | `/sessions/{id}/edits`       | POST   | apply an edit set; returns the report **delta**         |
//! | `/sessions/{id}/report`      | GET    | stream the full canonical report (`?spill_budget=N`)    |
//! | `/sessions/{id}`             | DELETE | close a session                                         |
//! | `/library`                   | POST   | batch-verify cells over the shared content-keyed cache  |
//!
//! Handlers are synchronous (the engine is CPU-bound; service
//! concurrency is the compat server's thread-per-connection model) and
//! every one admits itself against the registry's request budget
//! first, so overload degrades to fast `503`s instead of a queue.
//!
//! `GET /sessions/{id}/report` does not materialise the report: the
//! response carries a [`axum::Body::Writer`] closure owning the session pin
//! and the request permit, and the bytes go connection-ward through a
//! [`StreamingSink`] — or a [`SpillingSink`] holding at most
//! `spill_budget` violations in memory — chunk by canonically sorted
//! chunk. A client hanging up mid-stream latches as the sink's I/O
//! error inside the closure; the pin drops, the registry is untouched.

use crate::error::{json_response, ApiError};
use crate::registry::{RegistryConfig, SessionRegistry};
use crate::wire;
use axum::{delete, get, post, Request, Response, Router, StatusCode};
use diic_core::{CheckSession, DiagnosticSink, LibraryOptions, SpillingSink, StreamingSink};
use serde_json::Value;
use std::sync::Arc;

/// Violations rendered per chunk by the streamed report path (the same
/// default the CLI streaming path uses; override per request with
/// `?chunk=N`).
pub const DEFAULT_REPORT_CHUNK: usize = 4096;

/// The service state: just the registry (it owns every bound).
pub struct App {
    /// The shared session registry.
    pub registry: SessionRegistry,
}

impl App {
    /// A fresh service.
    pub fn new(config: RegistryConfig) -> Arc<App> {
        Arc::new(App {
            registry: SessionRegistry::new(config),
        })
    }
}

/// Builds the router over shared state. The result is `Send + Sync`:
/// hand it to [`axum::serve`] for TCP, or drive it in-process with
/// [`Router::oneshot`] (what the differential and soak tests do).
pub fn router(app: Arc<App>) -> Router {
    let open = {
        let app = Arc::clone(&app);
        move |req: Request| respond(open_session(&app, &req))
    };
    let edits = {
        let app = Arc::clone(&app);
        move |req: Request| respond(apply_edits(&app, &req))
    };
    let report = {
        let app = Arc::clone(&app);
        move |req: Request| match stream_report(&app, &req) {
            Ok(resp) => resp,
            Err(e) => e.into_response(),
        }
    };
    let close = {
        let app = Arc::clone(&app);
        move |req: Request| respond(delete_session(&app, &req))
    };
    let library = {
        let app = Arc::clone(&app);
        move |req: Request| respond(check_library(&app, &req))
    };
    let stats = {
        let app = Arc::clone(&app);
        move |_req: Request| json_response(StatusCode::OK, &app.registry.stats())
    };
    Router::new()
        .route("/healthz", get(healthz))
        .route("/stats", get(stats))
        .route("/sessions", post(open))
        .route("/sessions/{id}/edits", post(edits))
        .route("/sessions/{id}/report", get(report))
        .route("/sessions/{id}", delete(close))
        .route("/library", post(library))
}

fn respond(result: Result<Response, ApiError>) -> Response {
    result.unwrap_or_else(ApiError::into_response)
}

fn healthz(_req: Request) -> Response {
    json_response(StatusCode::OK, &Value::object([("ok", Value::from(true))]))
}

fn session_id(req: &Request) -> Result<u64, ApiError> {
    let raw = req
        .param("id")
        .ok_or_else(|| ApiError::bad_request_shape("missing session id"))?;
    raw.parse::<u64>().map_err(|_| {
        ApiError::new(
            StatusCode::NOT_FOUND,
            "unknown-session",
            format!("`{raw}` is not a session id"),
        )
    })
}

/// `POST /sessions` — body `{"cif": "...", "deck"?: "...",
/// "options"?: {...}}`. The deck defaults to the built-in NMOS
/// process. Responds `201` with `{"id", "report"}`; the open runs the
/// full initial check, so the summary is live from the first byte.
fn open_session(app: &App, req: &Request) -> Result<Response, ApiError> {
    let _permit = app.registry.admit()?;
    let body = wire::parse_body(&req.body)?;
    let cif = wire::required(&body, "cif")?
        .as_str()
        .ok_or_else(|| ApiError::bad_request_shape("`cif` must be a string"))?;
    let options = wire::check_options_from_json(body.get("options"))?;
    let tech =
        match body.get("deck").and_then(Value::as_str) {
            Some(deck) => diic_deck::compile_str(deck)
                .map_err(|e| ApiError::bad_deck(e.render("deck", deck)))?,
            None => diic_deck::compile_str(diic_deck::NMOS_DECK)
                .expect("the built-in deck always compiles"),
        };
    let layout = diic_cif::parse(cif).map_err(|e| ApiError::bad_cif(e.to_string()))?;
    let session = CheckSession::new(layout, &tech, &options);
    let summary = wire::report_summary(session.report());
    let id = app.registry.open(session);
    Ok(json_response(
        StatusCode::CREATED,
        &Value::object([("id", Value::from(id)), ("report", summary)]),
    ))
}

/// `POST /sessions/{id}/edits` — body is the wire [`EditSet`]
/// ([`wire::edit_set_from_json`]). Responds with the applied delta:
/// the violations the edit added and removed (canonical order,
/// rendered exactly like report lines), the engine's [`EditStats`],
/// and the fresh summary. A rejected edit set (`422`) leaves the
/// session untouched, exactly as [`CheckSession::apply`] guarantees.
///
/// [`EditStats`]: diic_core::EditStats
fn apply_edits(app: &App, req: &Request) -> Result<Response, ApiError> {
    let _permit = app.registry.admit()?;
    let id = session_id(req)?;
    let body = wire::parse_body(&req.body)?;
    let pin = app.registry.pin(id)?;
    let mut session = pin.lock()?;
    let edits = wire::edit_set_from_json(&body, session.layout())?;
    let old = session.report().violations.clone();
    let stats = session
        .apply(&edits)
        .map_err(|e| ApiError::bad_edit(e.to_string()))?;
    let (added, removed) = wire::violation_delta(&old, &session.report().violations);
    let response = Value::object([
        ("applied", Value::from(edits.edits.len())),
        ("added", string_array(added)),
        ("removed", string_array(removed)),
        ("stats", wire::edit_stats_to_json(&stats)),
        ("report", wire::report_summary(session.report())),
    ]);
    Ok(json_response(StatusCode::OK, &response))
}

fn string_array(items: Vec<String>) -> Value {
    Value::array(items.into_iter().map(Value::from))
}

/// `GET /sessions/{id}/report` — streams the canonical report as
/// plain text, one violation per line, byte-identical to rendering
/// [`diic_core::canonical_check`] locally. `?chunk=N` bounds the per-chunk
/// violation count; `?spill_budget=N` switches to the external-sort
/// [`SpillingSink`] so peak memory is `N` violations regardless of
/// report size.
fn stream_report(app: &App, req: &Request) -> Result<Response, ApiError> {
    let permit = app.registry.admit()?;
    let id = session_id(req)?;
    let chunk = match req.query_get("chunk") {
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| ApiError::bad_request_shape("`chunk` must be a positive integer"))?,
        None => DEFAULT_REPORT_CHUNK,
    };
    let spill_budget = match req.query_get("spill_budget") {
        Some(raw) => Some(raw.parse::<usize>().map_err(|_| {
            ApiError::bad_request_shape("`spill_budget` must be a non-negative integer")
        })?),
        None => None,
    };
    let pin = app.registry.pin(id)?;
    let writer: axum::BodyWriter = Box::new(move |out| {
        // The pin and the permit live exactly as long as the stream:
        // eviction cannot touch the session mid-body, and the request
        // budget counts the body, not just the headers.
        let _permit = permit;
        let session = pin.lock().map_err(|e| {
            // Admission failed after headers went out; truncating the
            // close-delimited body is the only remaining signal.
            std::io::Error::other(e.to_string())
        })?;
        match spill_budget {
            Some(budget) => {
                let mut sink = SpillingSink::new(&mut *out, budget);
                session.emit_report(&mut sink);
                sink.finish().map(|_| ())
            }
            None => {
                let mut sink = StreamingSink::new(&mut *out, chunk);
                session.emit_report(&mut sink);
                sink.finish().map(|_| ())
            }
        }
    });
    Ok(Response::new(StatusCode::OK)
        .header("content-type", "text/plain; charset=utf-8")
        .body_writer(writer))
}

/// `DELETE /sessions/{id}` — closes the session; later requests for
/// the id get `410`.
fn delete_session(app: &App, req: &Request) -> Result<Response, ApiError> {
    let _permit = app.registry.admit()?;
    let id = session_id(req)?;
    app.registry.delete(id)?;
    Ok(json_response(
        StatusCode::OK,
        &Value::object([("deleted", Value::from(id))]),
    ))
}

/// `POST /library` — body `{"cells": ["cif", ...], "deck"?: "...",
/// "options"?: {"parallelism"?: N, "shared_interner"?: bool}}`. Runs
/// the batch through the shared per-deck [`LibrarySession`]: repeated
/// requests over the same deck keep its content-keyed cache warm
/// across requests. Each cell's response report is canonical and
/// byte-identical (line for line) to a standalone check of that cell.
///
/// [`LibrarySession`]: diic_core::LibrarySession
fn check_library(app: &App, req: &Request) -> Result<Response, ApiError> {
    let _permit = app.registry.admit()?;
    let body = wire::parse_body(&req.body)?;
    let Some(cells) = wire::required(&body, "cells")?.as_array() else {
        return Err(ApiError::bad_request_shape("`cells` must be an array"));
    };
    let deck_source = body
        .get("deck")
        .map(|d| {
            d.as_str()
                .map(str::to_string)
                .ok_or_else(|| ApiError::bad_request_shape("`deck` must be a string"))
        })
        .transpose()?
        .unwrap_or_else(|| diic_deck::NMOS_DECK.to_string());
    let mut options = LibraryOptions::default();
    if let Some(opts) = body.get("options") {
        let Some(pairs) = opts.as_object() else {
            return Err(ApiError::bad_request_shape("`options` must be an object"));
        };
        for (key, v) in pairs {
            match key.as_str() {
                "parallelism" => {
                    options.parallelism = v
                        .as_i64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| {
                            ApiError::bad_request_shape("`options.parallelism` must be an integer")
                        })?
                }
                "shared_interner" => {
                    options.shared_interner = v.as_bool().ok_or_else(|| {
                        ApiError::bad_request_shape("`options.shared_interner` must be a boolean")
                    })?
                }
                other => {
                    return Err(ApiError::bad_request_shape(format!(
                        "unknown option `{other}`"
                    )))
                }
            }
        }
    }

    let mut layouts = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let cif = cell
            .as_str()
            .ok_or_else(|| ApiError::bad_request_shape(format!("cells[{i}] must be a string")))?;
        layouts
            .push(diic_cif::parse(cif).map_err(|e| ApiError::bad_cif(format!("cells[{i}]: {e}")))?);
    }

    let library = app.registry.library_for_deck(&deck_source)?;
    let batch =
        diic_core::check_library_in(&library.session, &layouts, &library.tech, &options, |_| {
            DiagnosticSink::new()
        });
    let cells_out = Value::array(batch.reports.iter().map(|report| {
        let mut violations = report.violations.clone();
        diic_core::canonical_sort(&mut violations);
        Value::object([
            ("violations", Value::from(violations.len())),
            (
                "report",
                Value::array(
                    violations
                        .iter()
                        .map(|v| Value::from(wire::render_violation(v))),
                ),
            ),
        ])
    }));
    let response = Value::object([
        ("cells", cells_out),
        (
            "stats",
            Value::object([
                ("cache_hits", Value::from(batch.stats.shared_cache_hits)),
                ("cache_misses", Value::from(batch.stats.shared_cache_misses)),
                (
                    "cache_entries",
                    Value::from(batch.stats.shared_cache_entries),
                ),
            ]),
        ),
    ]);
    Ok(json_response(StatusCode::OK, &response))
}
