//! The service's error type: every failure a handler can hit, mapped
//! to a status code and a small JSON body.
//!
//! The contract the error-path tests pin (`tests/api.rs`): malformed
//! input is always a 4xx with a rendered explanation — never a panic,
//! never a bare 500 — and the session id space discriminates `404 Not
//! Found` (an id the service never issued) from `410 Gone` (an id that
//! existed and was evicted or deleted; ids are sequential, so any id
//! below the allocator watermark was once live).

use axum::{Response, StatusCode};
use serde_json::Value;

/// A handler failure: status plus a machine-readable code and a
/// human-readable detail (the rendered parse diagnostic, the eviction
/// explanation, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status.
    pub status: StatusCode,
    /// Stable machine-readable error code (`"bad-json"`, `"gone"`, …).
    pub code: &'static str,
    /// Human-readable detail; multi-line for rendered diagnostics.
    pub detail: String,
}

impl ApiError {
    /// A new error.
    pub fn new(status: StatusCode, code: &'static str, detail: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            detail: detail.into(),
        }
    }

    /// `400`: the request body is not valid JSON.
    pub fn bad_json(detail: impl Into<String>) -> ApiError {
        ApiError::new(StatusCode::BAD_REQUEST, "bad-json", detail)
    }

    /// `422`: well-formed JSON that does not decode to the expected
    /// shape (missing field, wrong type, unknown enum tag, …).
    pub fn bad_request_shape(detail: impl Into<String>) -> ApiError {
        ApiError::new(StatusCode::UNPROCESSABLE_ENTITY, "bad-shape", detail)
    }

    /// `422`: the CIF source failed to parse.
    pub fn bad_cif(detail: impl Into<String>) -> ApiError {
        ApiError::new(StatusCode::UNPROCESSABLE_ENTITY, "bad-cif", detail)
    }

    /// `422`: the rule deck failed to compile; `detail` carries the
    /// caret-rendered [`diic_deck::DeckError`] diagnostic.
    pub fn bad_deck(detail: impl Into<String>) -> ApiError {
        ApiError::new(StatusCode::UNPROCESSABLE_ENTITY, "bad-deck", detail)
    }

    /// `422`: the edit set was rejected by the session (the session is
    /// untouched, exactly as [`diic_core::CheckSession::apply`]
    /// guarantees).
    pub fn bad_edit(detail: impl Into<String>) -> ApiError {
        ApiError::new(StatusCode::UNPROCESSABLE_ENTITY, "bad-edit", detail)
    }

    /// `404`: a session id the service never issued.
    pub fn unknown_session(id: u64) -> ApiError {
        ApiError::new(
            StatusCode::NOT_FOUND,
            "unknown-session",
            format!("session {id} was never created"),
        )
    }

    /// `410`: a session id that existed but was evicted or deleted.
    pub fn session_gone(id: u64) -> ApiError {
        ApiError::new(
            StatusCode::GONE,
            "session-gone",
            format!("session {id} was evicted or deleted"),
        )
    }

    /// `429`: too many writers queued on one session.
    pub fn session_busy(id: u64) -> ApiError {
        ApiError::new(
            StatusCode::TOO_MANY_REQUESTS,
            "session-busy",
            format!("session {id} has too many queued requests"),
        )
    }

    /// `503`: the service-wide concurrent-request bound is hit.
    pub fn overloaded() -> ApiError {
        ApiError::new(
            StatusCode::SERVICE_UNAVAILABLE,
            "overloaded",
            "service at concurrent-request capacity",
        )
    }

    /// Renders the error as its JSON response.
    pub fn into_response(self) -> Response {
        let body = Value::object([
            ("error", Value::from(self.code)),
            ("detail", Value::from(self.detail.as_str())),
        ]);
        json_response(self.status, &body)
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.status.0, self.code, self.detail)
    }
}

impl std::error::Error for ApiError {}

/// A JSON response with the right content type.
pub fn json_response(status: StatusCode, body: &Value) -> Response {
    Response::new(status)
        .header("content-type", "application/json")
        .body(body.to_string().into_bytes())
}
