//! The wire format: JSON codecs between service bodies and the core
//! types.
//!
//! Everything here is **deterministic and round-trippable**: encoding
//! an [`EditSet`] and decoding the bytes yields the same edits (the
//! twelfth differential leg drives `diic_gen`-generated edit sets
//! through this codec and demands byte-identical reports on the other
//! side), and every encode emits object members in a fixed order so
//! response bytes are stable across runs and worker counts.
//!
//! Layer references cross the wire **by CIF name** (`"NM"`), not by
//! the layout's internal [`diic_cif::LayerRef`] index: `add_element` edits
//! intern unknown names on application (exactly like the core
//! [`Edit::AddElement`]), while `replace_symbol` body items must name
//! layers the layout already knows — a fresh layer inside a replaced
//! definition is rejected as a shape error rather than silently
//! binding to nothing.

use crate::error::ApiError;
use diic_cif::{Call, Element, Item, Layout, Shape, SymbolId};
use diic_core::{category_of, CheckOptions, CheckReport, Edit, EditSet, EditStats, Violation};
use diic_geom::{Orientation, Point, Rect, Transform, Vector};
use serde_json::Value;
use std::collections::BTreeMap;

/// Parses a request body as JSON (`400` with the parse offset on
/// failure).
pub fn parse_body(body: &[u8]) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| ApiError::bad_json(format!("body is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ApiError::bad_json(format!("{} at byte {}", e.message, e.offset)))
}

/// Looks up a required object member.
pub fn required<'v>(body: &'v Value, key: &str) -> Result<&'v Value, ApiError> {
    body.get(key)
        .ok_or_else(|| ApiError::bad_request_shape(format!("missing required field `{key}`")))
}

fn as_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, ApiError> {
    v.as_str()
        .ok_or_else(|| ApiError::bad_request_shape(format!("`{what}` must be a string")))
}

fn as_i64(v: &Value, what: &str) -> Result<i64, ApiError> {
    v.as_i64()
        .ok_or_else(|| ApiError::bad_request_shape(format!("`{what}` must be an integer")))
}

fn as_usize(v: &Value, what: &str) -> Result<usize, ApiError> {
    let n = as_i64(v, what)?;
    usize::try_from(n)
        .map_err(|_| ApiError::bad_request_shape(format!("`{what}` must be non-negative")))
}

fn as_bool(v: &Value, what: &str) -> Result<bool, ApiError> {
    v.as_bool()
        .ok_or_else(|| ApiError::bad_request_shape(format!("`{what}` must be a boolean")))
}

/// Decodes the optional `options` object of a session or library
/// request into [`CheckOptions`]. Unknown keys are rejected — a typoed
/// option silently falling back to a default is the worst kind of
/// verification bug.
pub fn check_options_from_json(options: Option<&Value>) -> Result<CheckOptions, ApiError> {
    let mut out = CheckOptions::default();
    let Some(value) = options else {
        return Ok(out);
    };
    let Some(pairs) = value.as_object() else {
        return Err(ApiError::bad_request_shape("`options` must be an object"));
    };
    for (key, v) in pairs {
        match key.as_str() {
            "parallelism" => out.parallelism = as_usize(v, "options.parallelism")?,
            "erc" => out.erc = as_bool(v, "options.erc")?,
            "hierarchical" => out.hierarchical = as_bool(v, "options.hierarchical")?,
            "same_net_suppression" => {
                out.same_net_suppression = as_bool(v, "options.same_net_suppression")?
            }
            "tiled_interactions" => {
                out.tiled_interactions = as_bool(v, "options.tiled_interactions")?
            }
            other => {
                return Err(ApiError::bad_request_shape(format!(
                    "unknown option `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Geometry atoms.

fn point_to_json(p: Point) -> Value {
    Value::array([Value::from(p.x), Value::from(p.y)])
}

fn point_from_json(v: &Value, what: &str) -> Result<Point, ApiError> {
    match v.as_array() {
        Some([x, y]) => Ok(Point::new(as_i64(x, what)?, as_i64(y, what)?)),
        _ => Err(ApiError::bad_request_shape(format!(
            "`{what}` must be a `[x, y]` pair"
        ))),
    }
}

fn rect_to_json(r: &Rect) -> Value {
    Value::array([
        Value::from(r.x1),
        Value::from(r.y1),
        Value::from(r.x2),
        Value::from(r.y2),
    ])
}

fn rect_from_json(v: &Value, what: &str) -> Result<Rect, ApiError> {
    match v.as_array() {
        Some([x1, y1, x2, y2]) => Ok(Rect::new(
            as_i64(x1, what)?,
            as_i64(y1, what)?,
            as_i64(x2, what)?,
            as_i64(y2, what)?,
        )),
        _ => Err(ApiError::bad_request_shape(format!(
            "`{what}` must be a `[x1, y1, x2, y2]` quad"
        ))),
    }
}

fn shape_to_json(shape: &Shape) -> Value {
    match shape {
        Shape::Box(r) => Value::object([("box", rect_to_json(r))]),
        Shape::Wire(w) => Value::object([(
            "wire",
            Value::object([
                ("width", Value::from(w.width())),
                (
                    "points",
                    Value::array(w.points().iter().map(|&p| point_to_json(p))),
                ),
            ]),
        )]),
        Shape::Polygon(p) => Value::object([(
            "polygon",
            Value::array(p.points().iter().map(|&p| point_to_json(p))),
        )]),
    }
}

fn shape_from_json(v: &Value) -> Result<Shape, ApiError> {
    let Some([(tag, body)]) = v.as_object() else {
        return Err(ApiError::bad_request_shape(
            "`shape` must be a single-member object tagged `box`, `wire`, or `polygon`",
        ));
    };
    match tag.as_str() {
        "box" => Ok(Shape::Box(rect_from_json(body, "shape.box")?)),
        "wire" => {
            let width = as_i64(required(body, "width")?, "shape.wire.width")?;
            let points = points_from_json(required(body, "points")?, "shape.wire.points")?;
            let wire = diic_geom::Wire::new(width, points)
                .map_err(|e| ApiError::bad_request_shape(format!("invalid wire: {e}")))?;
            Ok(Shape::Wire(wire))
        }
        "polygon" => {
            let points = points_from_json(body, "shape.polygon")?;
            let poly = diic_geom::Polygon::new(points)
                .map_err(|e| ApiError::bad_request_shape(format!("invalid polygon: {e}")))?;
            Ok(Shape::Polygon(poly))
        }
        other => Err(ApiError::bad_request_shape(format!(
            "unknown shape tag `{other}`"
        ))),
    }
}

fn points_from_json(v: &Value, what: &str) -> Result<Vec<Point>, ApiError> {
    let Some(items) = v.as_array() else {
        return Err(ApiError::bad_request_shape(format!(
            "`{what}` must be an array of points"
        )));
    };
    items.iter().map(|p| point_from_json(p, what)).collect()
}

fn orientation_to_str(o: Orientation) -> &'static str {
    match o {
        Orientation::R0 => "R0",
        Orientation::R90 => "R90",
        Orientation::R180 => "R180",
        Orientation::R270 => "R270",
        Orientation::MR0 => "MR0",
        Orientation::MR90 => "MR90",
        Orientation::MR180 => "MR180",
        Orientation::MR270 => "MR270",
    }
}

fn orientation_from_str(s: &str) -> Result<Orientation, ApiError> {
    Orientation::ALL
        .into_iter()
        .find(|&o| orientation_to_str(o) == s)
        .ok_or_else(|| ApiError::bad_request_shape(format!("unknown orientation `{s}`")))
}

fn transform_to_json(t: &Transform) -> Value {
    Value::object([
        ("orient", Value::from(orientation_to_str(t.orient))),
        ("offset", point_to_json(Point::new(t.offset.x, t.offset.y))),
    ])
}

fn transform_from_json(v: &Value) -> Result<Transform, ApiError> {
    let orient = orientation_from_str(as_str(required(v, "orient")?, "transform.orient")?)?;
    let offset = point_from_json(required(v, "offset")?, "transform.offset")?;
    Ok(Transform::new(orient, Vector::new(offset.x, offset.y)))
}

// ---------------------------------------------------------------------
// Edits.

/// Encodes an edit set against its layout (layer names come from the
/// layout's table).
pub fn edit_set_to_json(edits: &EditSet, layout: &Layout) -> Value {
    Value::object([(
        "edits",
        Value::array(edits.edits.iter().map(|e| edit_to_json(e, layout))),
    )])
}

fn edit_to_json(edit: &Edit, layout: &Layout) -> Value {
    match edit {
        Edit::AddElement {
            cif_layer,
            shape,
            net,
        } => Value::object([
            ("op", Value::from("add_element")),
            ("layer", Value::from(cif_layer.as_str())),
            ("shape", shape_to_json(shape)),
            ("net", Value::from(net.as_deref())),
        ]),
        Edit::AddCall {
            symbol,
            transform,
            name,
        } => Value::object([
            ("op", Value::from("add_call")),
            ("symbol", Value::from(i64::from(symbol.0))),
            ("transform", transform_to_json(transform)),
            ("name", Value::from(name.as_str())),
        ]),
        Edit::RemoveItem { index } => Value::object([
            ("op", Value::from("remove")),
            ("index", Value::from(*index)),
        ]),
        Edit::MoveItem { index, by } => Value::object([
            ("op", Value::from("move")),
            ("index", Value::from(*index)),
            ("by", point_to_json(Point::new(by.x, by.y))),
        ]),
        Edit::ReplaceSymbol { symbol, items } => Value::object([
            ("op", Value::from("replace_symbol")),
            ("symbol", Value::from(i64::from(symbol.0))),
            (
                "items",
                Value::array(items.iter().map(|i| item_to_json(i, layout))),
            ),
        ]),
    }
}

fn item_to_json(item: &Item, layout: &Layout) -> Value {
    match item {
        Item::Element(e) => Value::object([(
            "element",
            Value::object([
                ("layer", Value::from(layout.layer_name(e.layer))),
                ("shape", shape_to_json(&e.shape)),
                ("net", Value::from(e.net.as_deref())),
            ]),
        )]),
        Item::Call(c) => Value::object([(
            "call",
            Value::object([
                ("symbol", Value::from(i64::from(c.target.0))),
                ("transform", transform_to_json(&c.transform)),
                ("name", Value::from(c.name.as_str())),
            ]),
        )]),
    }
}

/// Decodes an edit-set body against the session's current layout (the
/// layer-name table `replace_symbol` items resolve through).
pub fn edit_set_from_json(body: &Value, layout: &Layout) -> Result<EditSet, ApiError> {
    let Some(items) = required(body, "edits")?.as_array() else {
        return Err(ApiError::bad_request_shape("`edits` must be an array"));
    };
    let mut out = EditSet::new();
    for (i, item) in items.iter().enumerate() {
        out.edits.push(
            edit_from_json(item, layout)
                .map_err(|e| ApiError::bad_request_shape(format!("edits[{i}]: {}", e.detail)))?,
        );
    }
    Ok(out)
}

fn edit_from_json(v: &Value, layout: &Layout) -> Result<Edit, ApiError> {
    match as_str(required(v, "op")?, "op")? {
        "add_element" => Ok(Edit::AddElement {
            cif_layer: as_str(required(v, "layer")?, "layer")?.to_string(),
            shape: shape_from_json(required(v, "shape")?)?,
            net: optional_string(v, "net")?,
        }),
        "add_call" => Ok(Edit::AddCall {
            symbol: symbol_from_json(required(v, "symbol")?, layout)?,
            transform: transform_from_json(required(v, "transform")?)?,
            name: as_str(required(v, "name")?, "name")?.to_string(),
        }),
        "remove" => Ok(Edit::RemoveItem {
            index: as_usize(required(v, "index")?, "index")?,
        }),
        "move" => {
            let by = point_from_json(required(v, "by")?, "by")?;
            Ok(Edit::MoveItem {
                index: as_usize(required(v, "index")?, "index")?,
                by: Vector::new(by.x, by.y),
            })
        }
        "replace_symbol" => {
            let Some(items) = required(v, "items")?.as_array() else {
                return Err(ApiError::bad_request_shape("`items` must be an array"));
            };
            Ok(Edit::ReplaceSymbol {
                symbol: symbol_from_json(required(v, "symbol")?, layout)?,
                items: items
                    .iter()
                    .map(|i| item_from_json(i, layout))
                    .collect::<Result<_, _>>()?,
            })
        }
        other => Err(ApiError::bad_request_shape(format!(
            "unknown edit op `{other}`"
        ))),
    }
}

fn optional_string(v: &Value, key: &str) -> Result<Option<String>, ApiError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(s) => Ok(Some(as_str(s, key)?.to_string())),
    }
}

fn symbol_from_json(v: &Value, layout: &Layout) -> Result<SymbolId, ApiError> {
    let raw = as_i64(v, "symbol")?;
    let id = u32::try_from(raw)
        .map_err(|_| ApiError::bad_request_shape("`symbol` must be a non-negative id"))?;
    // Range-check here for the precise message; apply() re-validates.
    if (id as usize) >= layout.symbols().len() {
        return Err(ApiError::bad_request_shape(format!(
            "unknown symbol id {id} (layout has {})",
            layout.symbols().len()
        )));
    }
    Ok(SymbolId(id))
}

fn item_from_json(v: &Value, layout: &Layout) -> Result<Item, ApiError> {
    let Some([(tag, body)]) = v.as_object() else {
        return Err(ApiError::bad_request_shape(
            "symbol body items must be single-member objects tagged `element` or `call`",
        ));
    };
    match tag.as_str() {
        "element" => {
            let layer_name = as_str(required(body, "layer")?, "element.layer")?;
            let layer = layout
                .layer_names()
                .iter()
                .position(|n| n == layer_name)
                .map(|i| diic_cif::LayerRef(i as u16))
                .ok_or_else(|| {
                    ApiError::bad_request_shape(format!(
                        "replace_symbol element names unknown layer `{layer_name}`"
                    ))
                })?;
            Ok(Item::Element(Element {
                layer,
                shape: shape_from_json(required(body, "shape")?)?,
                net: optional_string(body, "net")?,
            }))
        }
        "call" => Ok(Item::Call(Call {
            target: symbol_from_json(required(body, "symbol")?, layout)?,
            transform: transform_from_json(required(body, "transform")?)?,
            name: as_str(required(body, "name")?, "call.name")?.to_string(),
        })),
        other => Err(ApiError::bad_request_shape(format!(
            "unknown item tag `{other}`"
        ))),
    }
}

// ---------------------------------------------------------------------
// Reports.

/// Renders one violation exactly as the streaming report does (one
/// `Debug` line, no trailing newline) — the unit the delta arrays and
/// the per-cell library reports are made of, byte-compatible with
/// [`diic_core::StreamingSink`] output lines.
pub fn render_violation(v: &Violation) -> String {
    format!("{v:?}")
}

/// The summary object every session response embeds: violation count,
/// per-category counts (sorted by category name), and the view size.
pub fn report_summary(report: &CheckReport) -> Value {
    let mut by_category: BTreeMap<&'static str, i64> = BTreeMap::new();
    for v in &report.violations {
        *by_category.entry(category_of(v)).or_default() += 1;
    }
    Value::object([
        ("violations", Value::from(report.violations.len())),
        (
            "by_category",
            Value::object(by_category.into_iter().map(|(k, n)| (k, Value::from(n)))),
        ),
        ("elements", Value::from(report.element_count)),
        ("devices", Value::from(report.device_count)),
    ])
}

/// The observability half of an edit response: what the incremental
/// engine actually did ([`EditStats`]), stripped of wall-clock noise
/// (timings are not deterministic and do not belong on a
/// byte-compared wire).
pub fn edit_stats_to_json(stats: &EditStats) -> Value {
    Value::object([
        ("dirty_items", Value::from(stats.dirty_items)),
        ("dirty_elements", Value::from(stats.dirty_elements)),
        ("net_dirty_elements", Value::from(stats.net_dirty_elements)),
        ("seed_elements", Value::from(stats.seed_elements)),
        ("rechecked_pairs", Value::from(stats.rechecked_pairs)),
        ("retracted", Value::from(stats.retracted)),
        ("spliced", Value::from(stats.spliced)),
        ("full_rebuild", Value::from(stats.full_rebuild)),
        ("netlist_reused", Value::from(stats.netlist_reused)),
        ("index_compacted", Value::from(stats.index_compacted)),
    ])
}

/// The `added` / `removed` violation delta between two canonical
/// reports, as rendered lines: a multiset diff, with `added` in the
/// new report's canonical order and `removed` in the old one's.
pub fn violation_delta(old: &[Violation], new: &[Violation]) -> (Vec<String>, Vec<String>) {
    let mut counts: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
    for v in old {
        *counts.entry(render_violation(v)).or_default() -= 1;
    }
    for v in new {
        *counts.entry(render_violation(v)).or_default() += 1;
    }
    let mut added = Vec::new();
    for v in new {
        let line = render_violation(v);
        if let Some(n) = counts.get_mut(&line) {
            if *n > 0 {
                *n -= 1;
                added.push(line);
            }
        }
    }
    let mut removed = Vec::new();
    for v in old {
        let line = render_violation(v);
        if let Some(n) = counts.get_mut(&line) {
            if *n < 0 {
                *n += 1;
                removed.push(line);
            }
        }
    }
    (added, removed)
}
