//! The session registry: the service's shared state.
//!
//! One [`CheckSession`] per open layout, keyed by a **sequential**
//! `u64` id — sequential so the id space itself discriminates the two
//! miss cases: an id at or above the allocator watermark was never
//! issued (`404`), an id below it that is no longer present was
//! evicted or deleted (`410`). No tombstone set to grow without bound.
//!
//! # Locking discipline
//!
//! The registry map lock is held only for map operations — never
//! across a check. Each entry carries its own session mutex (one
//! writer per session; distinct sessions check fully in parallel) plus
//! a **pin count**: a request pins its entry for its whole lifetime —
//! including a streamed report body still being written after the
//! handler returned — and the sweeper never evicts a pinned entry, so
//! eviction cannot yank a session mid-request. Backpressure is
//! two-level: a service-wide concurrent-request bound (`503` from
//! [`SessionRegistry::admit`]) and a per-session queued-writer bound
//! (`429` from [`SessionPin::lock`]).
//!
//! # Eviction
//!
//! [`SessionRegistry::sweep`] runs opportunistically (every open, plus
//! on demand): idle-TTL eviction first, then — when the pool is still
//! over its memory budget — **compaction before eviction**:
//! [`CheckSession::compact_memory`] reclaims edit-churn garbage
//! (spatial-index tombstones, orphaned interner strings) from
//! least-recently-used sessions, and only if the pool is *still* over
//! budget (or over the session-count cap) does the LRU session get
//! evicted outright.

use crate::error::ApiError;
use diic_core::{CheckSession, LibraryOptions, LibrarySession};
use diic_tech::Technology;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Bounds and budgets for the registry.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Open-session cap; beyond it the LRU unpinned session is evicted.
    pub max_sessions: usize,
    /// Idle eviction: sessions untouched this long are evicted by the
    /// sweep.
    pub idle_ttl: Duration,
    /// Pool memory budget (sum of [`CheckSession::memory_bytes`]):
    /// past it the sweep compacts LRU-first, then evicts.
    pub memory_budget_bytes: usize,
    /// Service-wide concurrent-request bound (`503` beyond it).
    pub max_concurrent_requests: usize,
    /// Per-session queued-request bound (`429` beyond it).
    pub max_session_queue: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_sessions: 64,
            idle_ttl: Duration::from_secs(600),
            memory_budget_bytes: 1 << 30,
            max_concurrent_requests: 256,
            max_session_queue: 8,
        }
    }
}

/// One open session and its bookkeeping.
struct SessionEntry {
    id: u64,
    session: Mutex<CheckSession>,
    /// Millisecond monotonic stamp of the last touch (LRU order).
    last_used: AtomicU64,
    /// Requests currently holding this entry (never evict while > 0).
    pins: AtomicUsize,
    /// Requests queued on (or holding) the session mutex.
    queue: AtomicUsize,
}

/// A pinned reference to a live session: holding one keeps the entry
/// safe from eviction (deletion only unlinks the id — the session
/// itself lives until the last pin drops).
pub struct SessionPin {
    entry: Arc<SessionEntry>,
    max_queue: usize,
}

impl SessionPin {
    /// The session id.
    pub fn id(&self) -> u64 {
        self.entry.id
    }

    /// Acquires the per-session writer lock, or fails with `429` when
    /// the session's queue is already at its bound. (The bound counts
    /// both the holder and the waiters; the check-then-increment is
    /// approximate under races, which can only let a short burst
    /// through — it never deadlocks and never under-admits.)
    pub fn lock(&self) -> Result<MutexGuard<'_, CheckSession>, ApiError> {
        if self.entry.queue.load(Ordering::Relaxed) >= self.max_queue {
            return Err(ApiError::session_busy(self.entry.id));
        }
        self.entry.queue.fetch_add(1, Ordering::Relaxed);
        let guard = self
            .entry
            .session
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.entry.queue.fetch_sub(1, Ordering::Relaxed);
        Ok(guard)
    }
}

impl Drop for SessionPin {
    fn drop(&mut self) {
        self.entry.pins.fetch_sub(1, Ordering::Release);
    }
}

/// A slot in the service-wide request budget; dropping it releases the
/// slot. Streamed responses move theirs into the body writer so the
/// budget covers the whole stream, not just the handler.
pub struct RequestPermit {
    active: Arc<AtomicUsize>,
}

impl Drop for RequestPermit {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::Release);
    }
}

/// Counters the `/stats` endpoint reports.
#[derive(Debug, Default)]
struct Counters {
    evicted_idle: AtomicU64,
    evicted_pressure: AtomicU64,
    compactions: AtomicU64,
    sessions_opened: AtomicU64,
}

/// The registry itself. All methods take `&self`; internal locking is
/// per the module doc.
pub struct SessionRegistry {
    config: RegistryConfig,
    sessions: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    next_id: AtomicU64,
    active_requests: Arc<AtomicUsize>,
    counters: Counters,
    /// Shared library sessions keyed by deck source: batch verification
    /// over the same deck reuses one content-keyed cache across
    /// requests (and across concurrent requests — the cache is
    /// internally concurrent).
    libraries: Mutex<HashMap<String, Arc<LibraryEntry>>>,
    epoch: Instant,
}

/// A shared batch-verification context for one compiled deck.
pub struct LibraryEntry {
    /// The compiled technology.
    pub tech: Technology,
    /// The shared session (content-keyed cache inside).
    pub session: LibrarySession,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> SessionRegistry {
        SessionRegistry {
            config,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            active_requests: Arc::new(AtomicUsize::new(0)),
            counters: Counters::default(),
            libraries: Mutex::new(HashMap::new()),
            epoch: Instant::now(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Admits a request against the service-wide bound (`503` past
    /// it). Every handler calls this first and holds the permit for
    /// the request's lifetime.
    pub fn admit(&self) -> Result<RequestPermit, ApiError> {
        // Increment-then-check: overshoot by racing requests is at most
        // the racer count, and the failed admit decrements right away.
        let active = Arc::clone(&self.active_requests);
        if active.fetch_add(1, Ordering::AcqRel) >= self.config.max_concurrent_requests {
            active.fetch_sub(1, Ordering::Release);
            return Err(ApiError::overloaded());
        }
        Ok(RequestPermit { active })
    }

    /// Opens a session, returning its id. Runs a sweep first so the
    /// new session lands inside the bounds.
    pub fn open(&self, session: CheckSession) -> u64 {
        self.sweep();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(SessionEntry {
            id,
            session: Mutex::new(session),
            last_used: AtomicU64::new(self.now_ms()),
            pins: AtomicUsize::new(0),
            queue: AtomicUsize::new(0),
        });
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, entry);
        self.counters
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Looks up and pins a session: `404` for never-issued ids, `410`
    /// for evicted/deleted ones. Touches the LRU stamp.
    pub fn pin(&self, id: u64) -> Result<SessionPin, ApiError> {
        let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        match sessions.get(&id) {
            Some(entry) => {
                entry.pins.fetch_add(1, Ordering::Acquire);
                entry.last_used.store(self.now_ms(), Ordering::Relaxed);
                Ok(SessionPin {
                    entry: Arc::clone(entry),
                    max_queue: self.config.max_session_queue,
                })
            }
            None if id < self.next_id.load(Ordering::Relaxed) => Err(ApiError::session_gone(id)),
            None => Err(ApiError::unknown_session(id)),
        }
    }

    /// Deletes a session (`404`/`410` as in [`SessionRegistry::pin`]).
    /// In-flight requests holding pins finish against the unlinked
    /// entry; the id answers `410` from then on.
    pub fn delete(&self, id: u64) -> Result<(), ApiError> {
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        if sessions.remove(&id).is_some() {
            return Ok(());
        }
        drop(sessions);
        if id < self.next_id.load(Ordering::Relaxed) {
            Err(ApiError::session_gone(id))
        } else {
            Err(ApiError::unknown_session(id))
        }
    }

    /// The eviction/compaction sweep (see the module doc). Safe to call
    /// from any thread at any time; entries that are pinned or whose
    /// session mutex is held are skipped (busy means recently used).
    pub fn sweep(&self) {
        let now = self.now_ms();
        let ttl_ms = self.config.idle_ttl.as_millis() as u64;

        // Snapshot the entries; never hold the map lock across a
        // session lock.
        let entries: Vec<Arc<SessionEntry>> = {
            let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            sessions.values().map(Arc::clone).collect()
        };

        // Pass 1: idle-TTL eviction.
        for entry in &entries {
            let idle = now.saturating_sub(entry.last_used.load(Ordering::Relaxed));
            if idle >= ttl_ms
                && entry.pins.load(Ordering::Acquire) == 0
                && self.unlink_if_unpinned(entry.id)
            {
                self.counters.evicted_idle.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Pass 2: memory pressure. Survivors, LRU first.
        let mut survivors: Vec<(u64, u64, usize)> = Vec::new(); // (last_used, id, bytes)
        {
            let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            for entry in sessions.values() {
                let bytes = match entry.session.try_lock() {
                    Ok(s) => s.memory_bytes(),
                    Err(_) => continue, // busy: in use, neither idle nor evictable
                };
                survivors.push((entry.last_used.load(Ordering::Relaxed), entry.id, bytes));
            }
        }
        survivors.sort_unstable();
        let mut total: usize = survivors.iter().map(|&(_, _, b)| b).sum();

        // Compact before evicting: reclaim churn garbage LRU-first and
        // re-measure; only a pool still over budget loses sessions.
        if total > self.config.memory_budget_bytes {
            for &(_, id, bytes) in &survivors {
                if total <= self.config.memory_budget_bytes {
                    break;
                }
                let Some(entry) = self.get(id) else { continue };
                let Ok(mut session) = entry.session.try_lock() else {
                    continue;
                };
                session.compact_memory();
                self.counters.compactions.fetch_add(1, Ordering::Relaxed);
                total = total - bytes + session.memory_bytes();
            }
        }

        // Evict LRU-first past either bound.
        let mut open = {
            let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            sessions.len()
        };
        for &(_, id, bytes) in &survivors {
            let over_count = open > self.config.max_sessions;
            let over_memory = total > self.config.memory_budget_bytes;
            if !over_count && !over_memory {
                break;
            }
            if self.unlink_if_unpinned(id) {
                self.counters
                    .evicted_pressure
                    .fetch_add(1, Ordering::Relaxed);
                open -= 1;
                total = total.saturating_sub(bytes);
            }
        }
    }

    fn get(&self, id: u64) -> Option<Arc<SessionEntry>> {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .map(Arc::clone)
    }

    /// Removes `id` from the map unless a request pinned it since the
    /// sweep snapshot (the pin check and the unlink happen under the
    /// map lock, and [`SessionRegistry::pin`] pins under that same
    /// lock, so a pinned entry can never be unlinked).
    fn unlink_if_unpinned(&self, id: u64) -> bool {
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = sessions.get(&id) {
            if entry.pins.load(Ordering::Acquire) == 0 {
                sessions.remove(&id);
                return true;
            }
        }
        false
    }

    /// The shared library context for a deck source, compiling it on
    /// first use. The error carries the caret-rendered deck diagnostic.
    pub fn library_for_deck(&self, deck_source: &str) -> Result<Arc<LibraryEntry>, ApiError> {
        {
            let libraries = self.libraries.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(entry) = libraries.get(deck_source) {
                return Ok(Arc::clone(entry));
            }
        }
        // Compile outside the lock; a racing duplicate compile is
        // harmless (last insert wins, both entries are equivalent).
        let tech = diic_deck::compile_str(deck_source)
            .map_err(|e| ApiError::bad_deck(e.render("deck", deck_source)))?;
        let session = LibrarySession::new(&tech);
        let entry = Arc::new(LibraryEntry { tech, session });
        let mut libraries = self.libraries.lock().unwrap_or_else(|p| p.into_inner());
        Ok(Arc::clone(
            libraries
                .entry(deck_source.to_string())
                .or_insert_with(|| Arc::clone(&entry)),
        ))
    }

    /// Default options for a batch-verification request.
    pub fn library_options(&self) -> LibraryOptions {
        LibraryOptions::default()
    }

    /// The `/stats` payload.
    pub fn stats(&self) -> Value {
        let (open, memory_bytes) = {
            let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            let mut bytes = 0usize;
            for entry in sessions.values() {
                if let Ok(s) = entry.session.try_lock() {
                    bytes += s.memory_bytes();
                }
            }
            (sessions.len(), bytes)
        };
        let libraries = {
            let libraries = self.libraries.lock().unwrap_or_else(|p| p.into_inner());
            Value::array(libraries.values().map(|l| {
                Value::object([
                    ("cache_entries", Value::from(l.session.cache.len())),
                    ("cache_hits", Value::from(l.session.cache.hits())),
                    ("cache_misses", Value::from(l.session.cache.misses())),
                ])
            }))
        };
        Value::object([
            ("open_sessions", Value::from(open)),
            (
                "sessions_opened",
                Value::from(self.counters.sessions_opened.load(Ordering::Relaxed)),
            ),
            ("memory_bytes", Value::from(memory_bytes)),
            (
                "evicted_idle",
                Value::from(self.counters.evicted_idle.load(Ordering::Relaxed)),
            ),
            (
                "evicted_pressure",
                Value::from(self.counters.evicted_pressure.load(Ordering::Relaxed)),
            ),
            (
                "compactions",
                Value::from(self.counters.compactions.load(Ordering::Relaxed)),
            ),
            (
                "active_requests",
                Value::from(self.active_requests.load(Ordering::Relaxed)),
            ),
            ("libraries", libraries),
        ])
    }
}
