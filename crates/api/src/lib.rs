//! # diic-api — check-as-a-service
//!
//! An HTTP service over the incremental checker: clients open a
//! **session** per layout (`POST /sessions`), push typed edit batches
//! (`POST /sessions/{id}/edits`) and get back the report **delta** the
//! edit caused, stream the full canonical report at any point
//! (`GET /sessions/{id}/report`), and batch-verify cell libraries over
//! the shared content-keyed cache (`POST /library`). The paper's
//! designer loop — check, fix, re-check — as a service boundary, with
//! the session pool owning memory the way the designer's workstation
//! never had to.
//!
//! The crate splits along the obvious seams:
//!
//! * [`wire`] — deterministic JSON codecs for edit sets, report
//!   summaries, and deltas; byte-stable encodes, strict decodes;
//! * [`registry`] — the shared [`SessionRegistry`]: sequential ids
//!   (`404`/`410` discrimination), per-session writer locks, pin
//!   counts so eviction never races a request, and a sweep that
//!   **compacts before it evicts** ([`diic_core::CheckSession::compact_memory`]
//!   reclaims churn garbage before any session is dropped);
//! * [`service`] — the [`Router`] and handlers; reports stream
//!   through [`diic_core::StreamingSink`] / [`diic_core::SpillingSink`]
//!   straight into the connection;
//! * [`error`] — the 4xx/5xx contract: malformed input is always a
//!   rendered diagnostic, never a panic.
//!
//! Everything a response carries is **canonical**: report lines are
//! byte-identical to a local [`diic_core::canonical_check`] render,
//! whatever the worker count, chunk size, spill budget, or how many
//! edits the session absorbed — `tests/api.rs` is the differential
//! harness that holds the service to it.
//!
//! The HTTP layer itself is the offline [`axum`] stand-in from
//! `crates/compat/axum`: same router/handler shapes, no async runtime
//! (the engine is CPU-bound — concurrency is one thread per
//! connection), and in-process [`Router::oneshot`] dispatch so the
//! whole differential harness runs without sockets.
//!
//! ```
//! use diic_api::{App, RegistryConfig, router};
//! use axum::{Method, Request, StatusCode};
//!
//! let app = router(App::new(RegistryConfig::default()));
//! let body = r#"{"cif": "L NM; B 2000 700 1000 350; E"}"#;
//! let resp = app.oneshot(Request::new(Method::Post, "/sessions").with_body(body));
//! assert_eq!(resp.status, StatusCode::CREATED);
//! ```

pub mod error;
pub mod registry;
pub mod service;
pub mod wire;

pub use axum::{Router, StatusCode};
pub use error::ApiError;
pub use registry::{RegistryConfig, SessionRegistry};
pub use service::{router, App};
