//! The baseline **flat, mask-level checker** the paper critiques.
//!
//! "Traditional checkers deal with mask geometry, that is, the geometrical
//! form of the data just before pattern generation, in its fully
//! instantiated form. Any topological or device information about the
//! circuit is discarded."
//!
//! Faithfully reproduced here:
//!
//! * the layout is **fully instantiated** and unioned per mask layer —
//!   symbol and net information is thrown away;
//! * width = *shrink-expand-compare* (orthogonal, exact; or Euclidean on a
//!   raster, which flags every convex corner — Fig. 4);
//! * spacing = *expand-check-overlap* between connected components
//!   (orthogonal ⇒ L∞ metric with its corner-to-corner false errors, or
//!   Euclidean ⇒ L2);
//! * no nets: electrically equivalent features are flagged (Fig. 5a);
//! * no devices: poly crossing diffusion is assumed to be a legal
//!   transistor (Fig. 8 — accidental crossings go **unchecked**), the
//!   device-dependent base/isolation rule of Fig. 6 cannot be
//!   distinguished (resistor ties are flagged), and a mask-level "no
//!   contact over gate" check flags every butting contact (Fig. 7).
//!
//! The per-layer Boolean/expand-shrink work is embarrassingly parallel:
//! each width job (one mask layer) and spacing job (one component of a
//! same-layer rule entry, or one cross-layer rule entry) is independent.
//! With [`FlatOptions::parallelism`] > 1 the jobs run on the shared
//! scoped worker pool ([`crate::parallel::run_ordered`]) and merge in
//! job order, so serial and parallel runs are **byte-identical**. The
//! job walk itself is deterministic because [`FlatLayers`] keeps the
//! per-layer unions sorted by layer id (never in hash order).

use crate::parallel::{effective_parallelism, run_ordered};
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{flatten, Layout};
use diic_geom::raster::euclidean_shrink_expand_compare;
use diic_geom::spacing::check_region_spacing;
use diic_geom::width::shrink_expand_compare;
use diic_geom::{Coord, Rect, Region, SizingMode};
use diic_tech::{LayerId, LayerKind, Technology};
use std::collections::HashMap;

/// Baseline options.
#[derive(Debug, Clone, Copy)]
pub struct FlatOptions {
    /// Sizing/distance flavour for both width and spacing baselines.
    pub metric: SizingMode,
    /// Raster resolution for Euclidean shrink-expand-compare.
    pub raster_resolution: i64,
    /// Apply the mask-level "no contact over poly∩diff" rule (Fig. 7).
    pub contact_over_gate_rule: bool,
    /// Worker threads for the per-layer Boolean/expand-shrink work.
    /// `1` (the default) runs [`flat_check`] serially; `0` uses all
    /// available cores — the same clamping as
    /// [`crate::CheckOptions::parallelism`], via the shared
    /// [`effective_parallelism`]. Any value yields byte-identical
    /// reports. In engine runs via `StageEngine::flat_baseline`, the
    /// default defers to `CheckOptions::parallelism` (one knob for the
    /// whole pipeline run); an explicit non-default value wins.
    pub parallelism: usize,
}

impl Default for FlatOptions {
    fn default() -> Self {
        FlatOptions {
            metric: SizingMode::Orthogonal,
            raster_resolution: 25,
            contact_over_gate_rule: true,
            parallelism: 1,
        }
    }
}

impl FlatOptions {
    /// The effective worker count for a direct [`flat_check`] run —
    /// `0` clamped to all cores through the same function that resolves
    /// `CheckOptions::parallelism`.
    pub fn effective_parallelism(&self) -> usize {
        effective_parallelism(self.parallelism)
    }
}

/// The per-mask-layer unions the flat baseline operates on, **sorted by
/// layer id** so every downstream walk (and hence the violation order)
/// is deterministic — independent of hash order and worker count.
///
/// Built once per run by [`FlatLayers::build`] and shared read-only by
/// the width, spacing, and contact-over-gate phases (as engine stage
/// artefact or inside [`flat_check`]).
#[derive(Debug, Clone, Default)]
pub struct FlatLayers {
    layers: Vec<(LayerId, Region)>,
}

impl FlatLayers {
    /// Flattens the layout and unions its geometry per mask layer: all
    /// topology discarded, exactly what a mask-level checker sees.
    /// Serial — [`FlatLayers::build_parallel`] with one worker.
    pub fn build(layout: &Layout, tech: &Technology) -> FlatLayers {
        FlatLayers::build_parallel(layout, tech, 1)
    }

    /// [`FlatLayers::build`] with the per-layer union jobs spread across
    /// `workers` scoped threads ([`run_ordered`]). The flatten walk is
    /// serial (it is a fraction of the Boolean work); each layer's union
    /// is an independent pure job and the jobs run in ascending layer-id
    /// order, so any worker count produces a byte-identical artefact —
    /// this was the flat path's last serial bottleneck.
    pub fn build_parallel(layout: &Layout, tech: &Technology, workers: usize) -> FlatLayers {
        let flat = flatten(layout);
        let mut rects_per_layer: HashMap<LayerId, Vec<Rect>> = HashMap::new();
        for e in &flat {
            let Some(layer) = tech.layer_by_cif(layout.layer_name(e.layer)) else {
                continue; // unknown layers are the hierarchical front end's report
            };
            rects_per_layer
                .entry(layer)
                .or_default()
                .extend(e.shape.rects());
        }
        let mut keyed: Vec<(LayerId, Vec<Rect>)> = rects_per_layer.into_iter().collect();
        keyed.sort_by_key(|(l, _)| *l);
        let unions = run_ordered(keyed.len(), workers, |k| {
            Region::from_rects(keyed[k].1.iter().copied())
        });
        FlatLayers {
            layers: keyed.iter().map(|(l, _)| *l).zip(unions).collect(),
        }
    }

    /// The union for one layer, if any geometry was drawn on it.
    pub fn get(&self, layer: LayerId) -> Option<&Region> {
        self.layers
            .binary_search_by_key(&layer, |(l, _)| *l)
            .ok()
            .map(|i| &self.layers[i].1)
    }

    /// `(layer, union)` pairs in ascending layer-id order.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, &Region)> {
        self.layers.iter().map(|(l, r)| (*l, r))
    }

    /// Number of layers with geometry.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the layout drew on no known layer.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The union of the first layer of the given kind, if drawn.
    fn kind_region(&self, tech: &Technology, kind: LayerKind) -> Option<&Region> {
        self.iter()
            .find(|(l, _)| tech.layer(*l).kind == kind)
            .map(|(_, r)| r)
    }
}

/// Width phase: shrink-expand-compare per layer, one job per eligible
/// layer, merged in layer order.
///
/// With a `clip`, only the connected components within reach of the clip
/// are checked and only violations anchored inside it are reported —
/// sound because a width sliver lies inside its component, and exact
/// because components are taken whole (never truncated at the clip
/// boundary).
pub fn flat_width_checks(
    layers: &FlatLayers,
    tech: &Technology,
    options: &FlatOptions,
    workers: usize,
    clip: Option<&Region>,
) -> Vec<Violation> {
    // Unclipped runs (the common baseline path) borrow the layer unions
    // as-is; only clipped runs materialise scoped sub-regions.
    let eligible: Vec<(LayerId, std::borrow::Cow<'_, Region>)> = layers
        .iter()
        .filter(|(layer, _)| {
            let info = tech.layer(*layer);
            info.kind.is_interconnect() || info.kind == LayerKind::Contact
        })
        .filter_map(|(layer, region)| {
            let region: std::borrow::Cow<'_, Region> = match clip {
                None => std::borrow::Cow::Borrowed(region),
                Some(clip) => {
                    let scope = clip.inflate(tech.layer(layer).min_width.max(1) * 2);
                    let kept: Vec<Rect> = region
                        .components()
                        .into_iter()
                        .filter(|c| c.bbox().map(|b| scope.touches_rect(&b)).unwrap_or(false))
                        .flat_map(|c| c.rects().to_vec())
                        .collect();
                    std::borrow::Cow::Owned(Region::from_rects(kept))
                }
            };
            (!region.is_empty()).then_some((layer, region))
        })
        .collect();
    run_ordered(eligible.len(), workers, |k| {
        let (layer, region) = &eligible[k];
        let (layer, region) = (*layer, region.as_ref());
        let info = tech.layer(layer);
        let min_w = info.min_width;
        let mut out = Vec::new();
        match options.metric {
            SizingMode::Orthogonal => {
                for v in shrink_expand_compare(region, min_w) {
                    out.push(Violation {
                        stage: CheckStage::Elements,
                        kind: ViolationKind::Width {
                            layer: info.name.clone(),
                            measured: v.measured,
                            required: min_w,
                        },
                        location: Some(v.location),
                        context: "flat".to_string(),
                    });
                }
            }
            SizingMode::Euclidean => {
                for loc in euclidean_shrink_expand_compare(region, min_w, options.raster_resolution)
                {
                    out.push(Violation {
                        stage: CheckStage::Elements,
                        kind: ViolationKind::Width {
                            layer: info.name.clone(),
                            measured: loc.min_side().min(min_w - 1),
                            required: min_w,
                        },
                        location: Some(loc),
                        context: "flat".to_string(),
                    });
                }
            }
        }
        if let Some(clip) = clip {
            out.retain(|v| v.location.is_none_or(|l| clip.touches_rect(&l)));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One unit of the spacing phase's deterministic job list.
enum SpacingJob {
    /// Check component `i` of a same-layer entry against components
    /// `i+1..` (indices into the per-entry component store).
    Same {
        entry: usize,
        layer: LayerId,
        required: Coord,
        i: usize,
    },
    /// Check one disjoint cross-layer rule entry (index into the
    /// precomputed, possibly clip-scoped region pair store).
    Cross {
        entry: usize,
        a: LayerId,
        b: LayerId,
        required: Coord,
    },
}

/// Spacing phase: expand-check-overlap between connected components
/// (same layer) and disjoint cross-layer features, per the rule matrix.
/// No net information exists. Jobs follow the matrix's deterministic
/// entry order — per-component for same-layer entries (the quadratic
/// part), per-entry for cross-layer ones — and merge in job order.
///
/// With a `clip`, only features within the rule's reach of the clip are
/// paired and only violations whose gap marker touches the clip are
/// reported — sound because a marker lies within the required spacing of
/// **both** offending features.
pub fn flat_spacing_checks(
    layers: &FlatLayers,
    tech: &Technology,
    options: &FlatOptions,
    workers: usize,
    clip: Option<&Region>,
) -> Vec<Violation> {
    // Connected components per same-layer entry, computed once up front
    // and shared read-only by the jobs.
    let mut components: Vec<Vec<Region>> = Vec::new();
    let mut jobs: Vec<SpacingJob> = Vec::new();
    // Unclipped runs borrow the layer unions; clipped runs own scoped
    // sub-regions.
    let mut cross_scoped: Vec<(std::borrow::Cow<'_, Region>, std::borrow::Cow<'_, Region>)> =
        Vec::new();
    // A feature can only produce a marker inside the clip if it lies
    // within `required` of it.
    let near = |region: &Region, clip: &Region, required: Coord| -> Region {
        let scope = clip.inflate(required.max(1));
        Region::from_rects(
            region
                .rects()
                .iter()
                .filter(|r| scope.touches_rect(r))
                .copied()
                .collect::<Vec<_>>(),
        )
    };
    for (a, b, rule) in tech.rules().entries() {
        let required = rule.diff_net;
        if a == b {
            let Some(region) = layers.get(a) else {
                continue;
            };
            let mut comps = region.components();
            if let Some(clip) = clip {
                let scope = clip.inflate(required.max(1));
                comps.retain(|c| c.bbox().map(|bb| scope.touches_rect(&bb)).unwrap_or(false));
            }
            let entry = components.len();
            jobs.extend(
                (0..comps.len().saturating_sub(1)).map(|i| SpacingJob::Same {
                    entry,
                    layer: a,
                    required,
                    i,
                }),
            );
            components.push(comps);
        } else {
            let (Some(ra), Some(rb)) = (layers.get(a), layers.get(b)) else {
                continue;
            };
            let (ra, rb) = match clip {
                None => (
                    std::borrow::Cow::Borrowed(ra),
                    std::borrow::Cow::Borrowed(rb),
                ),
                Some(clip) => {
                    let (ra, rb) = (near(ra, clip, required), near(rb, clip, required));
                    if ra.is_empty() || rb.is_empty() {
                        continue;
                    }
                    (std::borrow::Cow::Owned(ra), std::borrow::Cow::Owned(rb))
                }
            };
            let entry = cross_scoped.len();
            cross_scoped.push((ra, rb));
            jobs.push(SpacingJob::Cross {
                entry,
                a,
                b,
                required,
            });
        }
    }
    let mut violations: Vec<Violation> = run_ordered(jobs.len(), workers, |k| {
        let mut out = Vec::new();
        match jobs[k] {
            SpacingJob::Same {
                entry,
                layer,
                required,
                i,
            } => {
                let comps = &components[entry];
                for j in (i + 1)..comps.len() {
                    for v in check_region_spacing(&comps[i], &comps[j], required, options.metric) {
                        out.push(spacing_violation(tech, layer, layer, &v));
                    }
                }
            }
            SpacingJob::Cross {
                entry,
                a,
                b,
                required,
            } => {
                let (ra, rb) = &cross_scoped[entry];
                // Overlapping cross-layer geometry is assumed intentional (a
                // transistor, a contact): the mask-level checker cannot know
                // better. Only disjoint features are spacing-checked — so it
                // misses accidental crossings entirely (Fig. 8).
                for v in check_region_spacing(ra, rb, required, options.metric) {
                    out.push(spacing_violation(tech, a, b, &v));
                }
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    if let Some(clip) = clip {
        violations.retain(|v| v.location.is_none_or(|l| clip.touches_rect(&l)));
    }
    violations
}

/// The mask-level Fig. 7 rule: no contact over the "active gate",
/// defined — wrongly, as the paper points out — as poly ∩ diffusion.
pub fn flat_gate_checks(layers: &FlatLayers, tech: &Technology) -> Vec<Violation> {
    let mut violations = Vec::new();
    let poly = layers.kind_region(tech, LayerKind::Poly);
    let diff = layers.kind_region(tech, LayerKind::Diffusion);
    let contact = layers.kind_region(tech, LayerKind::Contact);
    if let (Some(poly), Some(diff), Some(contact)) = (poly, diff, contact) {
        let gate = poly.intersection(diff);
        let bad = contact.intersection(&gate);
        for comp in bad.components() {
            violations.push(Violation {
                stage: CheckStage::PrimitiveSymbols,
                kind: ViolationKind::DeviceRule {
                    device_type: "mask-level".to_string(),
                    rule: "contact over poly∩diff (mask-level gate definition)".to_string(),
                },
                location: comp.bbox(),
                context: "flat".to_string(),
            });
        }
    }
    violations
}

/// Runs the flat checker: union per layer, then the width, spacing, and
/// contact-over-gate phases (in that order), parallel per
/// [`FlatOptions::parallelism`].
pub fn flat_check(layout: &Layout, tech: &Technology, options: &FlatOptions) -> Vec<Violation> {
    let workers = options.effective_parallelism();
    let layers = FlatLayers::build_parallel(layout, tech, workers);
    let mut violations = flat_width_checks(&layers, tech, options, workers, None);
    violations.extend(flat_spacing_checks(&layers, tech, options, workers, None));
    if options.contact_over_gate_rule {
        violations.extend(flat_gate_checks(&layers, tech));
    }
    violations
}

fn spacing_violation(
    tech: &Technology,
    a: LayerId,
    b: LayerId,
    v: &diic_geom::spacing::SpacingViolation,
) -> Violation {
    Violation {
        stage: CheckStage::Interactions,
        kind: ViolationKind::Spacing {
            layer_a: tech.layer(a).name.clone(),
            layer_b: tech.layer(b).name.clone(),
            measured: v.measured,
            required: v.required,
            same_net: false, // the flat checker has no concept of nets
        },
        location: Some(v.location),
        context: "flat".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn run(cif: &str) -> Vec<Violation> {
        let layout = parse(cif).unwrap();
        flat_check(&layout, &nmos_technology(), &FlatOptions::default())
    }

    #[test]
    fn clean_rails_pass() {
        let v = run("L NM; B 10000 750 5000 375; B 10000 750 5000 3000; E");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn width_violation_found() {
        let v = run("L NM; B 2000 700 1000 350; E");
        assert!(v
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::Width { .. })));
    }

    #[test]
    fn fig5a_same_net_false_error() {
        // Two features of one (declared!) net too close: the flat checker
        // has no nets and flags them anyway.
        let v = run("L NM; 9N A; B 2000 750 1000 375; 9N A; B 2000 750 1000 1625; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::Spacing { .. }));
    }

    #[test]
    fn fig8_accidental_crossing_unchecked() {
        // Poly accidentally crossing diffusion: the flat checker reports
        // NOTHING (it assumes a legal transistor) — an unchecked error.
        let v = run("L NP; W 500 0 1000 3000 1000; L ND; W 500 1500 0 1500 2000; E");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fig4_orthogonal_corner_false_error() {
        // Corners at L2 ≈ 778 (legal) but L∞ = 550 (< 750): false error
        // under the orthogonal expand-check-overlap baseline.
        let v = run("L NM; B 1000 750 500 375; B 1000 750 2050 1675; E");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn euclidean_sec_flags_corners_of_legal_square() {
        // A perfectly legal metal square: Euclidean shrink-expand-compare
        // reports four corner slivers (Fig. 4's classic false errors).
        let layout = parse("L NM; B 3000 3000 1500 1500; E").unwrap();
        let v = flat_check(
            &layout,
            &nmos_technology(),
            &FlatOptions {
                metric: SizingMode::Euclidean,
                raster_resolution: 10,
                ..FlatOptions::default()
            },
        );
        let widths = v
            .iter()
            .filter(|x| matches!(x.kind, ViolationKind::Width { .. }))
            .count();
        assert_eq!(widths, 4, "{v:?}");
    }

    #[test]
    fn mask_level_contact_rule_flags_butting_contact() {
        // A (perfectly legal) butting contact: contact over poly∩diff.
        let v = run("DS 1; 9D BUTTING_CONTACT;
             L NP; B 1000 1000 0 -250; L ND; B 1000 1000 0 250;
             L NC; B 500 500 0 0; L NM; B 1000 1000 0 0; DF;
             C 1; E");
        assert!(
            v.iter().any(
                |x| matches!(&x.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("contact over"))
            ),
            "{v:?}"
        );
    }

    #[test]
    fn flat_layers_sorted_and_queryable() {
        let layout = parse("L NM; B 1000 750 0 0; L NP; B 1000 500 5000 0; E").unwrap();
        let tech = nmos_technology();
        let layers = FlatLayers::build(&layout, &tech);
        assert_eq!(layers.len(), 2);
        let ids: Vec<LayerId> = layers.iter().map(|(l, _)| l).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "layer walk must be in ascending id order");
        let metal = tech.layer_by_cif("NM").unwrap();
        assert!(layers.get(metal).is_some());
        assert!(layers.get(tech.layer_by_cif("NI").unwrap()).is_none());
    }

    #[test]
    fn parallel_flat_is_byte_identical() {
        // A layout exercising all three phases: narrow wire (width),
        // close wires (same-layer spacing), poly near diff (cross-layer
        // spacing via the matrix), butting contact (gate rule).
        let cif = "DS 1; 9D BUTTING_CONTACT;
             L NP; B 1000 1000 0 -250; L ND; B 1000 1000 0 250;
             L NC; B 500 500 0 0; L NM; B 1000 1000 0 0; DF;
             C 1;
             L NM; B 2000 700 9000 350;
             L NM; B 2000 750 9000 2000; B 2000 750 9000 2500;
             E";
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let serial = flat_check(&layout, &tech, &FlatOptions::default());
        assert!(!serial.is_empty());
        for workers in [2usize, 3, 8, 0] {
            let parallel = flat_check(
                &layout,
                &tech,
                &FlatOptions {
                    parallelism: workers,
                    ..FlatOptions::default()
                },
            );
            assert_eq!(serial, parallel, "workers={workers}: flat reports diverge");
        }
    }

    #[test]
    fn zero_parallelism_clamps_like_check_options() {
        // The cross-validation contract: FlatOptions resolves 0 through
        // the same effective_parallelism as CheckOptions.
        let opts = FlatOptions {
            parallelism: 0,
            ..FlatOptions::default()
        };
        assert_eq!(
            opts.effective_parallelism(),
            crate::parallel::effective_parallelism(0)
        );
        assert!(opts.effective_parallelism() >= 1);
    }
}
