//! The baseline **flat, mask-level checker** the paper critiques.
//!
//! "Traditional checkers deal with mask geometry, that is, the geometrical
//! form of the data just before pattern generation, in its fully
//! instantiated form. Any topological or device information about the
//! circuit is discarded."
//!
//! Faithfully reproduced here:
//!
//! * the layout is **fully instantiated** and unioned per mask layer —
//!   symbol and net information is thrown away;
//! * width = *shrink-expand-compare* (orthogonal, exact; or Euclidean on a
//!   raster, which flags every convex corner — Fig. 4);
//! * spacing = *expand-check-overlap* between connected components
//!   (orthogonal ⇒ L∞ metric with its corner-to-corner false errors, or
//!   Euclidean ⇒ L2);
//! * no nets: electrically equivalent features are flagged (Fig. 5a);
//! * no devices: poly crossing diffusion is assumed to be a legal
//!   transistor (Fig. 8 — accidental crossings go **unchecked**), the
//!   device-dependent base/isolation rule of Fig. 6 cannot be
//!   distinguished (resistor ties are flagged), and a mask-level "no
//!   contact over gate" check flags every butting contact (Fig. 7).

use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{flatten, Layout};
use diic_geom::raster::euclidean_shrink_expand_compare;
use diic_geom::spacing::check_region_spacing;
use diic_geom::width::shrink_expand_compare;
use diic_geom::{Rect, Region, SizingMode};
use diic_tech::{LayerId, LayerKind, Technology};
use std::collections::HashMap;

/// Baseline options.
#[derive(Debug, Clone, Copy)]
pub struct FlatOptions {
    /// Sizing/distance flavour for both width and spacing baselines.
    pub metric: SizingMode,
    /// Raster resolution for Euclidean shrink-expand-compare.
    pub raster_resolution: i64,
    /// Apply the mask-level "no contact over poly∩diff" rule (Fig. 7).
    pub contact_over_gate_rule: bool,
}

impl Default for FlatOptions {
    fn default() -> Self {
        FlatOptions {
            metric: SizingMode::Orthogonal,
            raster_resolution: 25,
            contact_over_gate_rule: true,
        }
    }
}

/// Runs the flat checker.
pub fn flat_check(layout: &Layout, tech: &Technology, options: &FlatOptions) -> Vec<Violation> {
    let mut violations = Vec::new();
    let flat = flatten(layout);

    // Union per layer: all topology discarded.
    let mut rects_per_layer: HashMap<LayerId, Vec<Rect>> = HashMap::new();
    for e in &flat {
        let Some(layer) = tech.layer_by_cif(layout.layer_name(e.layer)) else {
            continue; // unknown layers are the hierarchical front end's report
        };
        rects_per_layer
            .entry(layer)
            .or_default()
            .extend(e.shape.rects());
    }
    let layers: HashMap<LayerId, Region> = rects_per_layer
        .into_iter()
        .map(|(l, rs)| (l, Region::from_rects(rs)))
        .collect();

    // Width: shrink-expand-compare per layer.
    for (&layer, region) in &layers {
        let info = tech.layer(layer);
        if !info.kind.is_interconnect() && info.kind != LayerKind::Contact {
            continue;
        }
        let min_w = info.min_width;
        match options.metric {
            SizingMode::Orthogonal => {
                for v in shrink_expand_compare(region, min_w) {
                    violations.push(Violation {
                        stage: CheckStage::Elements,
                        kind: ViolationKind::Width {
                            layer: info.name.clone(),
                            measured: v.measured,
                            required: min_w,
                        },
                        location: Some(v.location),
                        context: "flat".to_string(),
                    });
                }
            }
            SizingMode::Euclidean => {
                for loc in euclidean_shrink_expand_compare(region, min_w, options.raster_resolution)
                {
                    violations.push(Violation {
                        stage: CheckStage::Elements,
                        kind: ViolationKind::Width {
                            layer: info.name.clone(),
                            measured: loc.min_side().min(min_w - 1),
                            required: min_w,
                        },
                        location: Some(loc),
                        context: "flat".to_string(),
                    });
                }
            }
        }
    }

    // Spacing: expand-check-overlap between connected components, same
    // layer and cross layer per the matrix. No net information exists.
    for (a, b, rule) in tech.rules().entries() {
        let required = rule.diff_net;
        if a == b {
            let Some(region) = layers.get(&a) else {
                continue;
            };
            let comps = region.components();
            for i in 0..comps.len() {
                for j in (i + 1)..comps.len() {
                    for v in check_region_spacing(&comps[i], &comps[j], required, options.metric) {
                        violations.push(spacing_violation(tech, a, b, &v));
                    }
                }
            }
        } else {
            let (Some(ra), Some(rb)) = (layers.get(&a), layers.get(&b)) else {
                continue;
            };
            // Overlapping cross-layer geometry is assumed intentional (a
            // transistor, a contact): the mask-level checker cannot know
            // better. Only disjoint features are spacing-checked — so it
            // misses accidental crossings entirely (Fig. 8).
            for v in check_region_spacing(ra, rb, required, options.metric) {
                violations.push(spacing_violation(tech, a, b, &v));
            }
        }
    }

    // The mask-level Fig. 7 rule: no contact over the "active gate",
    // defined — wrongly, as the paper points out — as poly ∩ diffusion.
    if options.contact_over_gate_rule {
        let poly = layers
            .iter()
            .find(|(l, _)| tech.layer(**l).kind == LayerKind::Poly)
            .map(|(_, r)| r.clone());
        let diff = layers
            .iter()
            .find(|(l, _)| tech.layer(**l).kind == LayerKind::Diffusion)
            .map(|(_, r)| r.clone());
        let contact = layers
            .iter()
            .find(|(l, _)| tech.layer(**l).kind == LayerKind::Contact)
            .map(|(_, r)| r.clone());
        if let (Some(poly), Some(diff), Some(contact)) = (poly, diff, contact) {
            let gate = poly.intersection(&diff);
            let bad = contact.intersection(&gate);
            for comp in bad.components() {
                violations.push(Violation {
                    stage: CheckStage::PrimitiveSymbols,
                    kind: ViolationKind::DeviceRule {
                        device_type: "mask-level".to_string(),
                        rule: "contact over poly∩diff (mask-level gate definition)".to_string(),
                    },
                    location: comp.bbox(),
                    context: "flat".to_string(),
                });
            }
        }
    }

    violations
}

fn spacing_violation(
    tech: &Technology,
    a: LayerId,
    b: LayerId,
    v: &diic_geom::spacing::SpacingViolation,
) -> Violation {
    Violation {
        stage: CheckStage::Interactions,
        kind: ViolationKind::Spacing {
            layer_a: tech.layer(a).name.clone(),
            layer_b: tech.layer(b).name.clone(),
            measured: v.measured,
            required: v.required,
            same_net: false, // the flat checker has no concept of nets
        },
        location: Some(v.location),
        context: "flat".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn run(cif: &str) -> Vec<Violation> {
        let layout = parse(cif).unwrap();
        flat_check(&layout, &nmos_technology(), &FlatOptions::default())
    }

    #[test]
    fn clean_rails_pass() {
        let v = run("L NM; B 10000 750 5000 375; B 10000 750 5000 3000; E");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn width_violation_found() {
        let v = run("L NM; B 2000 700 1000 350; E");
        assert!(v
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::Width { .. })));
    }

    #[test]
    fn fig5a_same_net_false_error() {
        // Two features of one (declared!) net too close: the flat checker
        // has no nets and flags them anyway.
        let v = run("L NM; 9N A; B 2000 750 1000 375; 9N A; B 2000 750 1000 1625; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::Spacing { .. }));
    }

    #[test]
    fn fig8_accidental_crossing_unchecked() {
        // Poly accidentally crossing diffusion: the flat checker reports
        // NOTHING (it assumes a legal transistor) — an unchecked error.
        let v = run("L NP; W 500 0 1000 3000 1000; L ND; W 500 1500 0 1500 2000; E");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fig4_orthogonal_corner_false_error() {
        // Corners at L2 ≈ 778 (legal) but L∞ = 550 (< 750): false error
        // under the orthogonal expand-check-overlap baseline.
        let v = run("L NM; B 1000 750 500 375; B 1000 750 2050 1675; E");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn euclidean_sec_flags_corners_of_legal_square() {
        // A perfectly legal metal square: Euclidean shrink-expand-compare
        // reports four corner slivers (Fig. 4's classic false errors).
        let layout = parse("L NM; B 3000 3000 1500 1500; E").unwrap();
        let v = flat_check(
            &layout,
            &nmos_technology(),
            &FlatOptions {
                metric: SizingMode::Euclidean,
                raster_resolution: 10,
                contact_over_gate_rule: true,
            },
        );
        let widths = v
            .iter()
            .filter(|x| matches!(x.kind, ViolationKind::Width { .. }))
            .count();
        assert_eq!(widths, 4, "{v:?}");
    }

    #[test]
    fn mask_level_contact_rule_flags_butting_contact() {
        // A (perfectly legal) butting contact: contact over poly∩diff.
        let v = run("DS 1; 9D BUTTING_CONTACT;
             L NP; B 1000 1000 0 -250; L ND; B 1000 1000 0 250;
             L NC; B 500 500 0 0; L NM; B 1000 1000 0 0; DF;
             C 1; E");
        assert!(
            v.iter().any(
                |x| matches!(&x.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("contact over"))
            ),
            "{v:?}"
        );
    }
}
