//! The design checker: the paper's Fig. 10 pipeline, end to end.
//!
//! ```text
//! PARSE CIF → CHECK ELEMENTS → CHECK PRIMITIVE SYMBOLS →
//! CHECK LEGAL CONNECTIONS → GENERATE HIERARCHICAL NET LIST →
//! CHECK INTERACTIONS  (+ non-geometric construction rules)
//! ```

use crate::binding::{instantiate, ChipView, LayerBinding};
use crate::connect::check_connections;
use crate::element_checks::check_elements;
use crate::interact::{check_interactions, InteractOptions, InteractStats};
use crate::netgen::generate_netlist;
use crate::primitive_checks::check_primitive_symbols;
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::Layout;
use diic_geom::SizingMode;
use diic_netlist::{check_erc, compare_by_structure, Netlist};
use diic_tech::Technology;
use std::time::{Duration, Instant};

/// Configuration of a full check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Suppress same-net spacing checks (Fig. 5a). Default true.
    pub same_net_suppression: bool,
    /// Spacing metric. Default Euclidean.
    pub metric: SizingMode,
    /// Use the hierarchical interaction search. Default true.
    pub hierarchical: bool,
    /// Run the non-geometric construction rules. Default true.
    pub erc: bool,
    /// Compare the extracted net list against an intended one.
    pub intended_netlist: Option<Netlist>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            same_net_suppression: true,
            metric: SizingMode::Euclidean,
            hierarchical: true,
            erc: true,
            intended_netlist: None,
        }
    }
}

/// Per-stage wall-clock timings (Fig. 9/10 cost profile).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Binding + instantiation.
    pub instantiate: Duration,
    /// Stage 2: element checks.
    pub elements: Duration,
    /// Stage 3: primitive symbol checks.
    pub primitives: Duration,
    /// Stage 4: connection checks.
    pub connections: Duration,
    /// Stage 5: net-list generation.
    pub netlist: Duration,
    /// Stage 6: interaction checks.
    pub interactions: Duration,
    /// Composition rules (ERC) + netlist comparison.
    pub composition: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.instantiate
            + self.elements
            + self.primitives
            + self.connections
            + self.netlist
            + self.interactions
            + self.composition
    }
}

/// The result of a full check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All violations from all stages.
    pub violations: Vec<Violation>,
    /// The extracted hierarchical net list.
    pub netlist: Netlist,
    /// Interaction-stage statistics (pruning counters, cache hits).
    pub interact_stats: InteractStats,
    /// Wall-clock per stage.
    pub timings: StageTimings,
    /// Devices waived by the immunity flag.
    pub waived_devices: Vec<String>,
    /// Number of elements instantiated.
    pub element_count: usize,
    /// Number of device instances.
    pub device_count: usize,
}

impl CheckReport {
    /// True if no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a given stage.
    pub fn by_stage(&self, stage: CheckStage) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.stage == stage).collect()
    }
}

/// Runs the full DIIC pipeline over a parsed layout.
pub fn check(layout: &Layout, tech: &Technology, options: &CheckOptions) -> CheckReport {
    let mut violations = Vec::new();
    let mut timings = StageTimings::default();

    // Parse is done; bind layers and instantiate the chip view.
    let t0 = Instant::now();
    let (binding, bind_violations) = LayerBinding::bind(layout, tech);
    violations.extend(bind_violations);
    let view: ChipView = instantiate(layout, tech, &binding);
    violations.extend(view.violations.clone());
    timings.instantiate = t0.elapsed();

    // Stage 2: check elements (per definition).
    let t = Instant::now();
    violations.extend(check_elements(layout, tech, &binding));
    timings.elements = t.elapsed();

    // Stage 3: check primitive symbols (per definition, with immunity).
    let t = Instant::now();
    let prim = check_primitive_symbols(layout, tech, &binding);
    violations.extend(prim.violations);
    timings.primitives = t.elapsed();

    // Stage 4: check legal connections.
    let t = Instant::now();
    let conn = check_connections(&view, tech);
    violations.extend(conn.violations.clone());
    timings.connections = t.elapsed();

    // Stage 5: generate the hierarchical net list.
    let t = Instant::now();
    let labels: Vec<_> = layout
        .labels()
        .iter()
        .map(|l| (l.clone(), binding.layer(l.layer)))
        .collect();
    let nets = generate_netlist(&view, tech, &conn.merges, &labels);
    violations.extend(nets.violations.clone());
    timings.netlist = t.elapsed();

    // Stage 6: check interactions.
    let t = Instant::now();
    let interact_options = InteractOptions {
        same_net_suppression: options.same_net_suppression,
        metric: options.metric,
        hierarchical: options.hierarchical,
    };
    let (ivs, interact_stats) =
        check_interactions(&view, tech, &nets, layout, &interact_options);
    violations.extend(ivs);
    timings.interactions = t.elapsed();

    // Composition rules + netlist consistency.
    let t = Instant::now();
    if options.erc {
        for e in check_erc(&nets.netlist, tech) {
            violations.push(Violation {
                stage: CheckStage::Composition,
                kind: ViolationKind::Erc {
                    rule: e.rule,
                    detail: e.detail,
                },
                location: None,
                context: nets.netlist.net(e.net).name.clone(),
            });
        }
    }
    if let Some(intended) = &options.intended_netlist {
        let diff = compare_by_structure(&nets.netlist, intended, 12);
        if !diff.matched {
            for msg in diff.messages {
                violations.push(Violation {
                    stage: CheckStage::NetList,
                    kind: ViolationKind::NetlistMismatch { detail: msg },
                    location: None,
                    context: String::new(),
                });
            }
        }
    }
    timings.composition = t.elapsed();

    CheckReport {
        violations,
        netlist: nets.netlist,
        interact_stats,
        timings,
        waived_devices: prim.waived,
        element_count: view.elements.len(),
        device_count: view.devices.len(),
    }
}

/// Convenience: parse CIF text and check it in one call.
///
/// # Errors
///
/// Returns the CIF parse error if the text is malformed; rule violations
/// are reported in the [`CheckReport`], not as errors.
pub fn check_cif(
    cif: &str,
    tech: &Technology,
    options: &CheckOptions,
) -> Result<CheckReport, diic_cif::CifError> {
    let layout = diic_cif::parse(cif)?;
    Ok(check(&layout, tech, options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_tech::nmos::nmos_technology;

    #[test]
    fn clean_layout_is_clean() {
        let tech = nmos_technology();
        let r = check_cif(
            "L NM; 9N VDD; B 10000 750 5000 375;
             L NM; 9N GND; B 10000 750 5000 3000;
             9L VDD NM 1000 375; 9L GND NM 1000 3000; E",
            &tech,
            &CheckOptions {
                erc: false, // rails alone have no devices
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.is_clean(), "{:#?}", r.violations);
        assert_eq!(r.element_count, 2);
    }

    #[test]
    fn pipeline_collects_all_stages() {
        let tech = nmos_technology();
        // Narrow wire (elements), loose contact (elements),
        // butted boxes (connections), close wires (interactions).
        let r = check_cif(
            "L NM; B 2000 700 1000 350;
             L NC; B 500 500 9000 0;
             L NM; B 2000 750 1000 2000; B 2000 750 3000 2000;
             L NP; B 3000 500 20000 250; B 3000 500 20000 800;
             E",
            &tech,
            &CheckOptions {
                erc: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.by_stage(CheckStage::Elements).is_empty());
        assert!(!r.by_stage(CheckStage::Connections).is_empty());
        assert!(!r.by_stage(CheckStage::Interactions).is_empty());
    }

    #[test]
    fn erc_runs_when_enabled() {
        let tech = nmos_technology();
        // VDD and GND shorted by one metal rail.
        let r = check_cif(
            "L NM; 9N VDD; B 10000 750 5000 375;
             9L GND NM 1000 375; E",
            &tech,
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::Erc { .. })), "{:#?}", r.violations);
    }

    #[test]
    fn hierarchical_and_flat_equivalent() {
        let tech = nmos_technology();
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; DF;\n");
        for i in 0..8 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2500));
        }
        cif.push_str("E");
        let hier = check_cif(&cif, &tech, &CheckOptions { erc: false, ..Default::default() }).unwrap();
        let flat = check_cif(
            &cif,
            &tech,
            &CheckOptions {
                hierarchical: false,
                erc: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(hier.violations.len(), flat.violations.len());
        assert!(hier.interact_stats.cache_hits > 0);
        assert_eq!(flat.interact_stats.cache_hits, 0);
    }

    #[test]
    fn timings_populated() {
        let tech = nmos_technology();
        let r = check_cif("L NM; B 2000 750 0 0; E", &tech, &CheckOptions::default()).unwrap();
        assert!(r.timings.total() > Duration::ZERO);
    }
}
