//! The design checker: the paper's Fig. 10 pipeline, end to end.
//!
//! ```text
//! PARSE CIF → CHECK ELEMENTS → CHECK PRIMITIVE SYMBOLS →
//! CHECK LEGAL CONNECTIONS → GENERATE HIERARCHICAL NET LIST →
//! CHECK INTERACTIONS  (+ non-geometric construction rules)
//! ```
//!
//! The stages themselves live in [`crate::engine`] as
//! [`PipelineStage`](crate::engine::PipelineStage) implementations;
//! [`check`] assembles the standard stage set and folds the engine's
//! generic per-stage profile into the classic [`StageTimings`]
//! breakdown. To run a custom stage set (extra lint stages, the flat
//! baseline, ablated pipelines) use [`check_with_engine`].

use crate::engine::{CheckContext, StageEngine, StageTime};
use crate::interact::InteractStats;
use crate::violations::{CheckStage, Violation};
use diic_cif::Layout;
use diic_geom::SizingMode;
use diic_netlist::Netlist;
use diic_tech::Technology;
use std::time::Duration;

/// Configuration of a full check run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Suppress same-net spacing checks (Fig. 5a). Default true.
    pub same_net_suppression: bool,
    /// Spacing metric. Default Euclidean.
    pub metric: SizingMode,
    /// Use the hierarchical interaction search. Default true.
    pub hierarchical: bool,
    /// Run the non-geometric construction rules. Default true.
    pub erc: bool,
    /// Compare the extracted net list against an intended one.
    pub intended_netlist: Option<Netlist>,
    /// Worker threads for the interaction search. `1` (the default)
    /// runs serially; `0` uses all available cores; any other value
    /// spawns that many scoped workers. Serial and parallel runs
    /// produce byte-identical reports.
    pub parallelism: usize,
    /// Stream interaction candidates tile by tile (the default) instead
    /// of materialising the full pair list — peak candidate memory is
    /// then bounded by one tile **per live worker** (`parallelism` ×
    /// widest tile), not by the chip's total pair count, with
    /// byte-identical reports either way (the sixth differential leg).
    pub tiled_interactions: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            same_net_suppression: true,
            metric: SizingMode::Euclidean,
            hierarchical: true,
            erc: true,
            intended_netlist: None,
            parallelism: 1,
            tiled_interactions: true,
        }
    }
}

impl CheckOptions {
    /// The effective worker count: `0` clamped to all available cores,
    /// through the same [`crate::parallel::effective_parallelism`] that
    /// resolves [`crate::FlatOptions::parallelism`] — the two knobs
    /// cannot disagree on what `0` means.
    pub fn effective_parallelism(&self) -> usize {
        crate::parallel::effective_parallelism(self.parallelism)
    }

    /// The interaction-stage options this run implies — the **single**
    /// mapping the engine's interaction stage and the incremental
    /// session both use, so a new interaction knob is wired once, here,
    /// or nowhere.
    pub fn interact_options(&self) -> crate::interact::InteractOptions {
        crate::interact::InteractOptions {
            same_net_suppression: self.same_net_suppression,
            metric: self.metric,
            hierarchical: self.hierarchical,
            parallelism: self.parallelism,
            tiled: self.tiled_interactions,
            ..crate::interact::InteractOptions::default()
        }
    }
}

/// Per-stage wall-clock timings (Fig. 9/10 cost profile).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Binding + instantiation.
    pub instantiate: Duration,
    /// Stage 2: element checks.
    pub elements: Duration,
    /// Stage 3: primitive symbol checks.
    pub primitives: Duration,
    /// Stage 4: connection checks.
    pub connections: Duration,
    /// Stage 5: net-list generation.
    pub netlist: Duration,
    /// Stage 6: interaction checks.
    pub interactions: Duration,
    /// Composition rules (ERC) + netlist comparison.
    pub composition: Duration,
}

impl StageTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.instantiate
            + self.elements
            + self.primitives
            + self.connections
            + self.netlist
            + self.interactions
            + self.composition
    }

    /// Folds an engine profile into the named buckets. Stages the
    /// classic breakdown does not know (custom stages, the flat
    /// baseline) stay visible in [`CheckReport::stage_profile`] only.
    pub fn from_profile(profile: &[StageTime]) -> Self {
        let mut t = StageTimings::default();
        for s in profile {
            match s.name.as_str() {
                "instantiate" => t.instantiate += s.duration,
                "elements" => t.elements += s.duration,
                "primitives" => t.primitives += s.duration,
                "connections" => t.connections += s.duration,
                "netlist" => t.netlist += s.duration,
                "interactions" => t.interactions += s.duration,
                "composition" => t.composition += s.duration,
                _ => {}
            }
        }
        t
    }
}

/// The result of a full check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All violations from all stages.
    pub violations: Vec<Violation>,
    /// The extracted hierarchical net list.
    pub netlist: Netlist,
    /// Interaction-stage statistics (pruning counters, cache hits).
    pub interact_stats: InteractStats,
    /// Wall-clock per classic pipeline stage.
    pub timings: StageTimings,
    /// Generic per-stage profile in engine order, including custom
    /// stages the classic breakdown does not know.
    pub stage_profile: Vec<StageTime>,
    /// Devices waived by the immunity flag.
    pub waived_devices: Vec<String>,
    /// Number of elements instantiated.
    pub element_count: usize,
    /// Number of device instances.
    pub device_count: usize,
}

impl CheckReport {
    /// True if no violations were found — trustworthy for **any** sink.
    /// A streaming or counting run buffers nothing in `violations`, so
    /// this also consults the per-stage profile counts (which record
    /// what the sink *accepted*, flushed or not); a dirty chip checked
    /// through a [`CountingSink`](crate::engine::CountingSink) must
    /// never read as clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stage_profile.iter().all(|s| s.violations == 0)
    }

    /// Violations of a given stage.
    pub fn by_stage(&self, stage: CheckStage) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.stage == stage)
            .collect()
    }
}

/// Runs the full DIIC pipeline over a parsed layout.
pub fn check(layout: &Layout, tech: &Technology, options: &CheckOptions) -> CheckReport {
    check_with_engine(&StageEngine::diic_pipeline(), layout, tech, options)
}

/// Runs an arbitrary stage set over a parsed layout.
///
/// This is the extension point the standard [`check`] wraps: assemble a
/// [`StageEngine`] (one of the shipped stage sets, or your own mix of
/// [`PipelineStage`](crate::engine::PipelineStage)s) and drive it with
/// the same inputs and report type as the classic entry point.
pub fn check_with_engine(
    engine: &StageEngine,
    layout: &Layout,
    tech: &Technology,
    options: &CheckOptions,
) -> CheckReport {
    let mut ctx = CheckContext::new(layout, tech, options);
    let profile = engine.run(&mut ctx);
    ctx.into_report(profile)
}

/// Runs a stage set with violations emitted through a caller-supplied
/// [`Sink`](crate::engine::Sink) instead of an in-memory buffer — the
/// bounded-memory entry point. With a
/// [`StreamingSink`](crate::engine::StreamingSink) or
/// [`CountingSink`](crate::engine::CountingSink) the run holds at most
/// one sink chunk of diagnostics at any time; the returned report then
/// carries empty `violations` (the sink saw every one) but full
/// timings, statistics, and counts. [`CheckReport::is_clean`] stays
/// trustworthy (it also reads the per-stage counts), but
/// [`CheckReport::by_stage`] and [`crate::report::format_report`] only
/// see what was buffered — read the sink for content.
pub fn check_with_sink(
    engine: &StageEngine,
    layout: &Layout,
    tech: &Technology,
    options: &CheckOptions,
    sink: &mut dyn crate::engine::Sink,
) -> CheckReport {
    let mut ctx = CheckContext::new_with_sink(layout, tech, options, sink);
    let profile = engine.run(&mut ctx);
    ctx.into_report(profile)
}

/// Convenience: parse CIF text and check it in one call.
///
/// # Errors
///
/// Returns the CIF parse error if the text is malformed; rule violations
/// are reported in the [`CheckReport`], not as errors.
pub fn check_cif(
    cif: &str,
    tech: &Technology,
    options: &CheckOptions,
) -> Result<CheckReport, diic_cif::CifError> {
    let layout = diic_cif::parse(cif)?;
    Ok(check(&layout, tech, options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violations::ViolationKind;
    use diic_tech::nmos::nmos_technology;

    #[test]
    fn clean_layout_is_clean() {
        let tech = nmos_technology();
        let r = check_cif(
            "L NM; 9N VDD; B 10000 750 5000 375;
             L NM; 9N GND; B 10000 750 5000 3000;
             9L VDD NM 1000 375; 9L GND NM 1000 3000; E",
            &tech,
            &CheckOptions {
                erc: false, // rails alone have no devices
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.is_clean(), "{:#?}", r.violations);
        assert_eq!(r.element_count, 2);
    }

    #[test]
    fn pipeline_collects_all_stages() {
        let tech = nmos_technology();
        // Narrow wire (elements), loose contact (elements),
        // butted boxes (connections), close wires (interactions).
        let r = check_cif(
            "L NM; B 2000 700 1000 350;
             L NC; B 500 500 9000 0;
             L NM; B 2000 750 1000 2000; B 2000 750 3000 2000;
             L NP; B 3000 500 20000 250; B 3000 500 20000 800;
             E",
            &tech,
            &CheckOptions {
                erc: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.by_stage(CheckStage::Elements).is_empty());
        assert!(!r.by_stage(CheckStage::Connections).is_empty());
        assert!(!r.by_stage(CheckStage::Interactions).is_empty());
    }

    #[test]
    fn erc_runs_when_enabled() {
        let tech = nmos_technology();
        // VDD and GND shorted by one metal rail.
        let r = check_cif(
            "L NM; 9N VDD; B 10000 750 5000 375;
             9L GND NM 1000 375; E",
            &tech,
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::Erc { .. })),
            "{:#?}",
            r.violations
        );
    }

    #[test]
    fn hierarchical_and_flat_equivalent() {
        let tech = nmos_technology();
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; DF;\n");
        for i in 0..8 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2500));
        }
        cif.push('E');
        let hier = check_cif(
            &cif,
            &tech,
            &CheckOptions {
                erc: false,
                ..Default::default()
            },
        )
        .unwrap();
        let flat = check_cif(
            &cif,
            &tech,
            &CheckOptions {
                hierarchical: false,
                erc: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(hier.violations.len(), flat.violations.len());
        assert!(hier.interact_stats.cache_hits > 0);
        assert_eq!(flat.interact_stats.cache_hits, 0);
    }

    #[test]
    fn timings_populated() {
        let tech = nmos_technology();
        let r = check_cif("L NM; B 2000 750 0 0; E", &tech, &CheckOptions::default()).unwrap();
        assert!(r.timings.total() > Duration::ZERO);
        assert_eq!(r.stage_profile.len(), 7, "{:?}", r.stage_profile);
        assert_eq!(
            r.timings.total(),
            r.stage_profile.iter().map(|s| s.duration).sum(),
            "classic buckets must cover the whole standard profile"
        );
    }

    #[test]
    fn zero_parallelism_clamps_consistently_with_flat_options() {
        // The cross-validation contract for the two tuning knobs.
        let check = CheckOptions {
            parallelism: 0,
            ..CheckOptions::default()
        };
        let flat = crate::flat::FlatOptions {
            parallelism: 0,
            ..crate::flat::FlatOptions::default()
        };
        assert_eq!(check.effective_parallelism(), flat.effective_parallelism());
        assert!(check.effective_parallelism() >= 1);
        assert_eq!(
            CheckOptions::default().effective_parallelism(),
            1,
            "the default stays serial"
        );
    }

    #[test]
    fn parallel_report_is_byte_identical() {
        let tech = nmos_technology();
        // Spacing violations across and inside instances.
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; B 2000 750 1000 1625; DF;\n");
        for i in 0..6 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2500));
        }
        cif.push('E');
        for hierarchical in [true, false] {
            let serial = check_cif(
                &cif,
                &tech,
                &CheckOptions {
                    hierarchical,
                    erc: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let parallel = check_cif(
                &cif,
                &tech,
                &CheckOptions {
                    hierarchical,
                    erc: false,
                    parallelism: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                serial.violations, parallel.violations,
                "hier={hierarchical}"
            );
            assert_eq!(serial.interact_stats, parallel.interact_stats);
        }
    }
}
