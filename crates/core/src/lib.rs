//! # diic-core — Design Integrity and Immunity Checking
//!
//! The primary contribution of McGrath & Whitney (DAC 1980): a layout
//! verifier that keeps **topological and device information** instead of
//! checking bare mask geometry, eliminating most false and unchecked
//! errors.
//!
//! # Architecture: a trait-based stage engine
//!
//! The paper's Fig. 10 pipeline is implemented as a set of
//! [`PipelineStage`]s executed by a [`StageEngine`] over one shared
//! [`CheckContext`]:
//!
//! ```text
//! StageEngine::diic_pipeline()
//!   ├─ instantiate   bind layers, build the ChipView          (engine)
//!   ├─ elements      interconnect width per definition        (element_checks)
//!   ├─ primitives    device-internal rules, 9C immunity       (primitive_checks)
//!   ├─ connections   skeletal connectivity, implied devices   (connect)
//!   ├─ netlist       hierarchical net-list generation         (netgen)
//!   ├─ interactions  rule-matrix spacing, serial or parallel  (interact)
//!   └─ composition   ERC + net-list consistency               (engine)
//! ```
//!
//! Every stage moves its findings into the context's
//! [`DiagnosticSink`] (no violation vector is ever cloned), and the
//! engine times stages generically — custom stages registered with
//! [`StageEngine::register`] appear in
//! [`CheckReport::stage_profile`] like the built-in ones. The flat
//! mask-level baseline the paper measures itself against ships as an
//! alternative stage set ([`StageEngine::flat_baseline`], module
//! [`flat`]).
//!
//! Every heavy stage is **parallel and deterministic** on one shared
//! worker discipline (module [`parallel`]: ordered job list,
//! work-stealing pool, positional merge — byte-identical for any worker
//! count, all behind [`CheckOptions::parallelism`]): instantiation is
//! sharded per top-level item, the connection scan is sharded by grid
//! tile (each pair owned by its lower element's tile), the netgen union
//! phase fans out per device/label as symbolic draft rows interned
//! serially in canonical order, the interaction search enumerates
//! (hierarchically cached per symbol and per relative placement — with
//! the distinct cache fills shared across threads — or from one flat
//! grid index) and evaluates candidates across the pool, and the flat
//! baseline's per-layer Boolean work parallelises the same way
//! ([`FlatOptions::parallelism`]). The flat and hierarchical
//! interaction searches agree on the violation *set* — the four-way
//! guarantee `tests/differential.rs` checks on generated chips with
//! injected faults; its seventh leg pins the parallel
//! connections/netgen stages against serial.
//!
//! # Memory model
//!
//! Candidate and diagnostic memory is **O(tile), not O(chip)** (the
//! instantiated [`ChipView`] itself remains O(elements) — it *is* the
//! chip, with its per-element `path` / `net_key` / device-type strings
//! stored once behind `u32` handles in a [`StringInterner`] to shrink
//! that floor): instantiation is sharded per top-level item
//! ([`binding::instantiate_parallel`]), the interaction stage streams
//! candidate pairs tile by tile — one tile buffer per live worker —
//! instead of materialising the all-pairs list
//! ([`CheckOptions::tiled_interactions`], the default — peak buffer
//! recorded in [`InteractStats::peak_candidate_buffer`]), and every
//! stage emits diagnostics through the [`Sink`] trait, whose
//! [`StreamingSink`] / [`CountingSink`] implementations retain at most
//! one bounded chunk ([`check_with_sink`]). Even a *globally sorted*
//! report — the one remaining O(chip) term — stays bounded through the
//! [`SpillingSink`]: past its budget, canonically sorted chunks spill
//! as length-prefixed runs into one unlinked temp file (module
//! [`spill`]) and `finish()` k-way merges them straight into the
//! writer, holding one chunk plus a small cursor buffer per run. All
//! of it byte-identical to the buffered paths — the sixth and ninth
//! differential legs (`tests/differential.rs`, `tests/sinks.rs`) prove
//! it on generated chips, the spilled leg at budgets down to 1.
//!
//! The full architecture — object model, parallelism model, memory
//! model, and the test-oracle map — is documented in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! The checking stages themselves (paper Fig. 10):
//!
//! 1. **Parse CIF** (in [`diic_cif`]) — extended with net identifiers
//!    (`9N`), device types (`9D`), immunity flags (`9C`), terminals (`9T`)
//!    and net labels (`9L`);
//! 2. **Check elements** — interconnect width, once per symbol
//!    *definition* ([`element_checks`]);
//! 3. **Check primitive symbols** — device-internal enclosure / overlap /
//!    overlap-of-overlap rules, with the `9C` immunity waiver
//!    ([`primitive_checks`]);
//! 4. **Check legal connections** — skeletal connectivity (Fig. 11) and
//!    undeclared-device detection (Fig. 8) ([`connect`]);
//! 5. **Generate hierarchical net list** — dot-notation net identifiers,
//!    device terminals ([`netgen`]);
//! 6. **Check interactions** — spacing only, driven by the Fig. 12
//!    upper-triangular layer-pair matrix with same-net / unrelated-device
//!    subcases and device overrides (Figs. 5–6), searched hierarchically
//!    with candidate caching ([`interact`]);
//!
//! plus the non-geometric construction rules and net-list consistency
//! check.
//!
//! # Example
//!
//! ```
//! use diic_core::{check_cif, CheckOptions};
//! use diic_tech::nmos::nmos_technology;
//!
//! let tech = nmos_technology();
//! let options = CheckOptions { erc: false, ..CheckOptions::default() };
//! let report = check_cif(
//!     "L NM; B 2000 700 1000 350; E", // a 700-wide wire; metal needs 750
//!     &tech,
//!     &options,
//! )?;
//! assert_eq!(report.violations.len(), 1);
//! # Ok::<(), diic_cif::CifError>(())
//! ```

pub mod binding;
pub mod checker;
pub mod connect;
pub mod element_checks;
pub mod engine;
pub mod flat;
pub mod incremental;
pub mod interact;
pub mod library;
pub mod netgen;
pub mod parallel;
pub mod primitive_checks;
pub mod report;
pub mod spill;
pub mod violations;

pub use binding::{
    instantiate_parallel, ChipElement, ChipView, DeviceInstance, ElementColumns, ElementRef, Istr,
    LayerBinding, StringInterner,
};
pub use checker::{
    check, check_cif, check_with_engine, check_with_sink, CheckOptions, CheckReport, StageTimings,
};
pub use connect::{check_connections, check_connections_parallel, ConnectionResult};
pub use engine::{
    CheckContext, CountingSink, DiagnosticSink, PipelineStage, Sink, SpillStats, SpillingSink,
    StageEngine, StageTime, StreamingSink,
};
pub use flat::{flat_check, FlatLayers, FlatOptions};
pub use incremental::{
    canonical_check, CheckSession, Edit, EditError, EditSet, EditStats, SessionCompaction,
};
pub use interact::{
    check_same_mask, interaction_cell_size, max_rule_range, InteractOptions, InteractStats,
};
pub use library::{
    check_library, check_library_buffered, check_library_in, BatchProfile, BoundTechnology,
    LibraryCache, LibraryOptions, LibraryReport, LibrarySession, LibraryStats,
};
pub use netgen::{generate_netlist, generate_netlist_parallel, NetgenResult};
pub use parallel::{effective_parallelism, env_parallelism};
pub use report::{
    account, canonical_sort, category_of, format_report, merge_canonical, ErrorRegions,
    InjectedError,
};
pub use spill::SpillFile;
pub use violations::{CheckStage, Violation, ViolationKind};
