//! # diic-core — Design Integrity and Immunity Checking
//!
//! The primary contribution of McGrath & Whitney (DAC 1980): a layout
//! verifier that keeps **topological and device information** instead of
//! checking bare mask geometry, eliminating most false and unchecked
//! errors.
//!
//! The pipeline (paper Fig. 10):
//!
//! 1. **Parse CIF** (in [`diic_cif`]) — extended with net identifiers
//!    (`9N`), device types (`9D`), immunity flags (`9C`), terminals (`9T`)
//!    and net labels (`9L`);
//! 2. **Check elements** — interconnect width, once per symbol
//!    *definition* ([`element_checks`]);
//! 3. **Check primitive symbols** — device-internal enclosure / overlap /
//!    overlap-of-overlap rules, with the `9C` immunity waiver
//!    ([`primitive_checks`]);
//! 4. **Check legal connections** — skeletal connectivity (Fig. 11) and
//!    undeclared-device detection (Fig. 8) ([`connect`]);
//! 5. **Generate hierarchical net list** — dot-notation net identifiers,
//!    device terminals ([`netgen`]);
//! 6. **Check interactions** — spacing only, driven by the Fig. 12
//!    upper-triangular layer-pair matrix with same-net / unrelated-device
//!    subcases and device overrides (Figs. 5–6), searched hierarchically
//!    with candidate caching ([`interact`]);
//!
//! plus the non-geometric construction rules and net-list consistency
//! check, and the **flat mask-level baseline** ([`flat`]) the paper
//! measures itself against.
//!
//! # Example
//!
//! ```
//! use diic_core::{check_cif, CheckOptions};
//! use diic_tech::nmos::nmos_technology;
//!
//! let tech = nmos_technology();
//! let options = CheckOptions { erc: false, ..CheckOptions::default() };
//! let report = check_cif(
//!     "L NM; B 2000 700 1000 350; E", // a 700-wide wire; metal needs 750
//!     &tech,
//!     &options,
//! )?;
//! assert_eq!(report.violations.len(), 1);
//! # Ok::<(), diic_cif::CifError>(())
//! ```

pub mod binding;
pub mod checker;
pub mod connect;
pub mod element_checks;
pub mod flat;
pub mod interact;
pub mod netgen;
pub mod primitive_checks;
pub mod report;
pub mod violations;

pub use binding::{ChipElement, ChipView, DeviceInstance, LayerBinding};
pub use checker::{check, check_cif, CheckOptions, CheckReport, StageTimings};
pub use flat::{flat_check, FlatOptions};
pub use interact::{InteractOptions, InteractStats};
pub use report::{account, category_of, format_report, ErrorRegions, InjectedError};
pub use violations::{CheckStage, Violation, ViolationKind};
