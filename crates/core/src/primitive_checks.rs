//! Stage 3 — "check primitive symbols": device-internal rules.
//!
//! "Any element which is part of a primitive symbol is treated in the box
//! labelled 'check primitive symbols'. These checks are the most
//! complicated \[...\] enclosure rules, overlap rules, even overlap of
//! overlap rules (buried contact). \[...\] On the other hand there are not
//! very many different elemental symbols on a given chip (20 to 30)."
//!
//! Each device symbol *definition* is checked once against its archetype's
//! internal rules. The `9C` immunity flag waives the internal rules — "a
//! technique for flagging specific devices as checked to eliminate large
//! numbers of false errors".

use crate::binding::LayerBinding;
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{Layout, Shape, Symbol};
use diic_geom::size::expand;
use diic_geom::{Rect, Region, Vector};
use diic_tech::{InternalRule, LayerId, Technology};
use std::collections::HashMap;

/// Result of checking all device symbol definitions.
#[derive(Debug, Clone, Default)]
pub struct PrimitiveCheckResult {
    /// Violations found.
    pub violations: Vec<Violation>,
    /// Device definitions waived by the `9C` immunity flag.
    pub waived: Vec<String>,
    /// Device definitions checked.
    pub checked: usize,
}

/// Checks every device symbol definition against its archetype.
pub fn check_primitive_symbols(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
) -> PrimitiveCheckResult {
    let mut result = PrimitiveCheckResult::default();
    for sym in layout.symbols() {
        let Some(decl) = &sym.device else { continue };
        let name = sym.display_name();

        // The paper: primitive symbols contain only geometry.
        if sym.calls().next().is_some() {
            result.violations.push(Violation {
                stage: CheckStage::PrimitiveSymbols,
                kind: ViolationKind::DeviceRule {
                    device_type: decl.device_type.clone(),
                    rule: "a primitive device symbol may contain only geometry, not calls"
                        .to_string(),
                },
                location: None,
                context: name.clone(),
            });
        }

        let Some(archetype) = tech.device(&decl.device_type) else {
            result.violations.push(Violation {
                stage: CheckStage::PrimitiveSymbols,
                kind: ViolationKind::UnknownDeviceType {
                    type_name: decl.device_type.clone(),
                },
                location: None,
                context: name.clone(),
            });
            continue;
        };

        if decl.checked {
            // Immunity: internal rules waived.
            result.waived.push(name.clone());
            continue;
        }
        result.checked += 1;

        let regions = layer_regions(sym, binding);
        let region_of = |l: LayerId| regions.get(&l).cloned().unwrap_or_default();

        for rule in &archetype.internal_rules {
            let fail: Option<(String, Option<Rect>)> = match rule {
                InternalRule::RequiresLayer { layer } => {
                    if region_of(*layer).is_empty() {
                        Some((
                            format!("missing required {} geometry", tech.layer(*layer).name),
                            None,
                        ))
                    } else {
                        None
                    }
                }
                InternalRule::RequiresOverlap { a, b } => {
                    let gate = region_of(*a).intersection(&region_of(*b));
                    if gate.is_empty() {
                        Some((
                            format!(
                                "{} must cross {} (no gate region found)",
                                tech.layer(*a).name,
                                tech.layer(*b).name
                            ),
                            None,
                        ))
                    } else {
                        None
                    }
                }
                InternalRule::Enclosure {
                    inner,
                    outer,
                    margin,
                } => {
                    let inner_r = region_of(*inner);
                    if inner_r.is_empty() {
                        None // nothing to enclose; RequiresLayer handles absence
                    } else {
                        // invariant: rule margins are validated
                        // non-negative at technology construction.
                        let grown = expand(&inner_r, *margin).expect("margin >= 0");
                        if region_of(*outer).covers(&grown) {
                            None
                        } else {
                            Some((
                                format!(
                                    "{} must enclose {} by {}",
                                    tech.layer(*outer).name,
                                    tech.layer(*inner).name,
                                    margin
                                ),
                                inner_r.bbox(),
                            ))
                        }
                    }
                }
                InternalRule::OverlapEnclosure {
                    a,
                    b,
                    outer,
                    margin,
                } => {
                    let gate = region_of(*a).intersection(&region_of(*b));
                    if gate.is_empty() {
                        None
                    } else {
                        // invariant: non-negative margin, as above.
                        let grown = expand(&gate, *margin).expect("margin >= 0");
                        if region_of(*outer).covers(&grown) {
                            None
                        } else {
                            Some((
                                format!(
                                    "{} must enclose the {}∩{} region by {}",
                                    tech.layer(*outer).name,
                                    tech.layer(*a).name,
                                    tech.layer(*b).name,
                                    margin
                                ),
                                gate.bbox(),
                            ))
                        }
                    }
                }
                InternalRule::GateExtension {
                    layer,
                    a,
                    b,
                    amount,
                } => {
                    let gate = region_of(*a).intersection(&region_of(*b));
                    if gate.is_empty() {
                        None
                    } else {
                        let lr = region_of(*layer);
                        let ok_x = lr.covers(&translate_region(&gate, *amount, 0))
                            && lr.covers(&translate_region(&gate, -*amount, 0));
                        let ok_y = lr.covers(&translate_region(&gate, 0, *amount))
                            && lr.covers(&translate_region(&gate, 0, -*amount));
                        if ok_x || ok_y {
                            None
                        } else {
                            Some((
                                format!(
                                    "{} must extend {} beyond the gate",
                                    tech.layer(*layer).name,
                                    amount
                                ),
                                gate.bbox(),
                            ))
                        }
                    }
                }
                InternalRule::NoLayerOverGate { layer, a, b } => {
                    let gate = region_of(*a).intersection(&region_of(*b));
                    let bad = region_of(*layer).intersection(&gate);
                    if bad.is_empty() {
                        None
                    } else {
                        Some((
                            format!(
                                "{} is not allowed over the active gate ({}∩{})",
                                tech.layer(*layer).name,
                                tech.layer(*a).name,
                                tech.layer(*b).name
                            ),
                            bad.bbox(),
                        ))
                    }
                }
                InternalRule::MinWidth { layer, width } => {
                    let mut worst: Option<Rect> = None;
                    for e in sym.elements() {
                        if binding.layer(e.layer) != Some(*layer) {
                            continue;
                        }
                        let under = match &e.shape {
                            Shape::Box(r) => r.min_side() < *width,
                            Shape::Wire(w) => w.width() < *width,
                            Shape::Polygon(p) => {
                                !diic_geom::width::check_polygon_width(p, *width).is_empty()
                            }
                        };
                        if under {
                            worst = Some(e.shape.bbox());
                        }
                    }
                    worst.map(|r| {
                        (
                            format!("{} narrower than {}", tech.layer(*layer).name, width),
                            Some(r),
                        )
                    })
                }
            };
            if let Some((msg, loc)) = fail {
                result.violations.push(Violation {
                    stage: CheckStage::PrimitiveSymbols,
                    kind: ViolationKind::DeviceRule {
                        device_type: decl.device_type.clone(),
                        rule: msg,
                    },
                    location: loc,
                    context: name.clone(),
                });
            }
        }

        // Terminals must sit on device geometry of their layer.
        for term in &decl.terminals {
            let Some(layer) = binding.layer(term.layer) else {
                continue;
            };
            if !region_of(layer).contains_point(term.position) {
                result.violations.push(Violation {
                    stage: CheckStage::PrimitiveSymbols,
                    kind: ViolationKind::TerminalOutsideDevice {
                        terminal: term.name.clone(),
                    },
                    location: Some(Rect::new(
                        term.position.x,
                        term.position.y,
                        term.position.x,
                        term.position.y,
                    )),
                    context: name.clone(),
                });
            }
        }
    }
    result
}

fn layer_regions(sym: &Symbol, binding: &LayerBinding) -> HashMap<LayerId, Region> {
    let mut map: HashMap<LayerId, Vec<Rect>> = HashMap::new();
    for e in sym.elements() {
        let Some(layer) = binding.layer(e.layer) else {
            continue;
        };
        let rects = match &e.shape {
            Shape::Box(r) => vec![*r],
            Shape::Wire(w) => w.to_rects(),
            Shape::Polygon(p) => p.to_rects().unwrap_or_else(|_| vec![p.bbox()]),
        };
        map.entry(layer).or_default().extend(rects);
    }
    map.into_iter()
        .map(|(l, rects)| (l, Region::from_rects(rects)))
        .collect()
}

fn translate_region(r: &Region, dx: i64, dy: i64) -> Region {
    Region::from_rects(
        r.rects()
            .iter()
            .map(|rect| rect.translate(Vector::new(dx, dy))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn run(cif: &str) -> PrimitiveCheckResult {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        check_primitive_symbols(&layout, &tech, &binding)
    }

    /// A correct enhancement transistor: poly 2λ wide crossing a 2λ diff,
    /// both extending 2λ beyond the 2λ×2λ gate.
    const GOOD_ENH: &str = "
        DS 1; 9 tr; 9D NMOS_ENH;
        L NP; B 1500 500 250 0;
        L ND; B 500 2500 250 0;
        DF; C 1; E";

    #[test]
    fn good_transistor_passes() {
        let r = run(GOOD_ENH);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.checked, 1);
    }

    #[test]
    fn missing_gate_fails() {
        // Fig. 8 bottom: poly does not reach across the diffusion.
        let r = run("DS 1; 9D NMOS_ENH;
             L NP; B 500 500 -750 0;
             L ND; B 500 2500 250 0;
             DF; C 1; E");
        assert!(r.violations.iter().any(
            |v| matches!(&v.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("cross"))
        ));
    }

    #[test]
    fn short_gate_overhang_fails() {
        // Poly only extends 1λ beyond the gate.
        let r = run("DS 1; 9D NMOS_ENH;
             L NP; B 1000 500 250 0;
             L ND; B 500 2500 250 0;
             DF; C 1; E");
        assert!(r.violations.iter().any(
            |v| matches!(&v.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("extend"))
        ));
    }

    #[test]
    fn fig7_contact_over_gate_fails() {
        let r = run("DS 1; 9D NMOS_ENH;
             L NP; B 1500 500 250 0;
             L ND; B 500 2500 250 0;
             L NC; B 500 500 250 0;
             DF; C 1; E");
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("active gate"))));
    }

    #[test]
    fn fig7_butting_contact_passes() {
        // The same poly∩diff overlap with a contact over it is legal in a
        // butting contact: its archetype has no NoLayerOverGate rule.
        let r = run("DS 1; 9D BUTTING_CONTACT;
             L NP; B 1000 1000 0 -250;
             L ND; B 1000 1000 0 250;
             L NC; B 500 500 0 0;
             L NM; B 1000 1000 0 0;
             DF; C 1; E");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn immunity_flag_waives_rules() {
        // Same broken transistor as `missing_gate_fails`, marked 9C.
        let r = run("DS 1; 9 odd; 9D NMOS_ENH; 9C;
             L NP; B 500 500 -750 0;
             L ND; B 500 2500 250 0;
             DF; C 1; E");
        assert!(r.violations.is_empty());
        assert_eq!(r.waived, vec!["odd"]);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn unknown_device_type_reported() {
        let r = run("DS 1; 9D WIDGET; L NP; B 500 500 0 0; DF; C 1; E");
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::UnknownDeviceType { .. }
        ));
    }

    #[test]
    fn contact_enclosure_rules() {
        // Good: 2λ cut, 1λ diff and metal margin all around.
        let good = run("DS 1; 9D CONTACT_D;
             L NC; B 500 500 0 0;
             L ND; B 1000 1000 0 0;
             L NM; B 1000 1000 0 0;
             DF; C 1; E");
        assert!(good.violations.is_empty(), "{:?}", good.violations);
        // Bad: metal flush with the cut on one side.
        let bad = run("DS 1; 9D CONTACT_D;
             L NC; B 500 500 0 0;
             L ND; B 1000 1000 0 0;
             L NM; B 750 1000 -125 0;
             DF; C 1; E");
        assert!(bad
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("enclose"))));
    }

    #[test]
    fn depletion_implant_overlap_of_overlap() {
        // Depletion transistor with implant exactly 1.5λ around the gate.
        let good = run("DS 1; 9D NMOS_DEP;
             L NP; B 1500 500 250 0;
             L ND; B 500 2500 250 0;
             L NI; B 1250 1250 250 0;
             DF; C 1; E");
        assert!(good.violations.is_empty(), "{:?}", good.violations);
        // Implant too small.
        let bad = run("DS 1; 9D NMOS_DEP;
             L NP; B 1500 500 250 0;
             L ND; B 500 2500 250 0;
             L NI; B 1000 1000 250 0;
             DF; C 1; E");
        assert!(!bad.violations.is_empty());
    }

    #[test]
    fn terminal_outside_geometry_flagged() {
        let r = run("DS 1; 9D CONTACT_D; 9T A NM 5000 5000;
             L NC; B 500 500 0 0;
             L ND; B 1000 1000 0 0;
             L NM; B 1000 1000 0 0;
             DF; C 1; E");
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::TerminalOutsideDevice { .. })));
    }

    #[test]
    fn device_with_calls_flagged() {
        let r = run("DS 2; L NM; B 1000 1000 0 0; DF;
             DS 1; 9D CONTACT_D; C 2;
             L NC; B 500 500 0 0; L ND; B 1000 1000 0 0; L NM; B 1000 1000 0 0;
             DF; C 1; E");
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(&v.kind, ViolationKind::DeviceRule { rule, .. } if rule.contains("only geometry"))));
    }
}
