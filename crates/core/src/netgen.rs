//! Stage 5 — "generate hierarchical net list".
//!
//! "While parsing the design, each element in the design is assigned a
//! unique net identifier using a dot notation to reference elements in an
//! instance from a higher level in the hierarchy. With this hierarchical
//! net list available, it is now possible to check electrical construction
//! rules or to check the net list against an input net list for
//! consistency."

use crate::binding::{ChipElement, ChipView};
use crate::connect::is_joining_class;
use crate::violations::Violation;
use diic_cif::NetLabel;
use diic_geom::{GridIndex, Point};
use diic_netlist::{assemble_netlist, AssembleDevice, NetId, Netlist};
use diic_tech::{DeviceClass, LayerId, Technology};
use std::collections::HashMap;

/// Output of net-list generation.
#[derive(Debug, Clone)]
pub struct NetgenResult {
    /// The extracted net list.
    pub netlist: Netlist,
    /// Net of each element (index = element id); `None` for un-netted
    /// device internals (gates, resistor bodies).
    pub element_net: Vec<Option<NetId>>,
    /// Terminal nets per device instance (index = device id).
    pub device_terminal_nets: Vec<Vec<NetId>>,
    /// Violations (currently none are produced here; reserved for
    /// extraction anomalies).
    pub violations: Vec<Violation>,
}

/// True if the element carries a net: interconnect and joining
/// (contact-class) device geometry. A transistor's un-netted parts must
/// not become phantom zero-terminal nets.
pub fn element_is_netted(view: &ChipView, e: &ChipElement) -> bool {
    match e.device {
        None => true,
        Some(d) => is_joining_class(view.devices[d].class),
    }
}

/// Spatial index over the bindable (netted) elements, for terminal and
/// label point binding. Cells are sized from the technology's rule reach
/// rather than a magic constant.
#[derive(Debug)]
pub struct BindIndex {
    index: GridIndex<usize>,
}

impl BindIndex {
    /// Indexes every netted element of the view.
    pub fn build(view: &ChipView, tech: &Technology) -> BindIndex {
        let ids: Vec<usize> = view
            .elements
            .iter()
            .filter(|e| element_is_netted(view, e))
            .map(|e| e.id)
            .collect();
        BindIndex::build_among(view, tech, &ids)
    }

    /// Indexes only the given elements (the incremental checker's scoped
    /// variant — callers must pass netted elements; only they can bind).
    pub fn build_among(view: &ChipView, tech: &Technology, ids: &[usize]) -> BindIndex {
        let mut index: GridIndex<usize> =
            GridIndex::new(crate::interact::interaction_cell_size(tech));
        for &id in ids {
            index.insert(view.elements[id].bbox, id);
        }
        BindIndex { index }
    }

    /// Ids (ascending) of netted elements covering point `p` on `layer`.
    pub fn elements_at(&self, view: &ChipView, layer: LayerId, p: Point) -> Vec<usize> {
        self.index
            .query(&diic_geom::Rect::new(p.x, p.y, p.x, p.y))
            .into_iter()
            .copied()
            .filter(|&id| {
                let e = &view.elements[id];
                e.layer == layer && e.rects.iter().any(|r| r.contains_point(p))
            })
            .collect()
    }
}

/// One device's rows in the net graph: its terminal `(name, node)` pairs
/// and the connection edges its geometry/bindings contribute. Rows are
/// position-independent (they reference interned nodes, not element
/// ids), which is what lets an edit session splice cached rows of
/// untouched devices into a patched graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceParts {
    /// `(terminal-name, node)` pairs, in terminal order.
    pub terms: Vec<(String, u32)>,
    /// Node-pair edges (device join edges or terminal bindings).
    pub edges: Vec<(u32, u32)>,
}

/// One label's rows: its net node (None if the label's layer is unknown)
/// and its binding edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelParts {
    /// The label net's node.
    pub node: Option<u32>,
    /// Label-to-covering-element edges.
    pub edges: Vec<(u32, u32)>,
}

/// The int-keyed net graph behind net-list generation.
///
/// Keys are interned once into `u32` nodes (the interner is append-only,
/// so nodes are **stable across edits** — stale keys simply stop being
/// referenced); the element/device/label rows record which nodes are
/// live and how they connect. [`NetParts::assemble`] folds the graph
/// through [`assemble_netlist`] — the same canonicalisation the
/// [`diic_netlist::NetlistBuilder`] uses — so a graph patched
/// incrementally by a [`crate::incremental::CheckSession`] produces a
/// net list byte-identical to a from-scratch build.
#[derive(Debug, Clone, Default)]
pub struct NetParts {
    interner: HashMap<String, u32>,
    names: Vec<String>,
    /// Node per element id; `None` for un-netted device internals.
    pub element_node: Vec<Option<u32>>,
    /// Node-pair edges from the connection stage's merges.
    pub conn_edges: Vec<(u32, u32)>,
    /// Per-device rows, aligned with `ChipView::devices`.
    pub devices: Vec<DeviceParts>,
    /// Per-label rows, aligned with the label list given to
    /// [`NetParts::build`].
    pub labels: Vec<LabelParts>,
}

impl NetParts {
    /// Interns a net key, returning its stable node id.
    pub fn node(&mut self, key: &str) -> u32 {
        if let Some(&n) = self.interner.get(key) {
            return n;
        }
        let n = self.names.len() as u32;
        self.interner.insert(key.to_string(), n);
        self.names.push(key.to_string());
        n
    }

    /// The key behind a node.
    pub fn name(&self, node: u32) -> &str {
        &self.names[node as usize]
    }

    /// Builds the full graph for a view.
    pub fn build(
        view: &ChipView,
        tech: &Technology,
        merges: &[(usize, usize)],
        labels: &[(NetLabel, Option<LayerId>)],
    ) -> NetParts {
        let mut parts = NetParts::default();
        for e in &view.elements {
            let node = element_is_netted(view, e).then(|| parts.node(&e.net_key));
            parts.element_node.push(node);
        }
        parts.set_conn_edges(merges);
        let bind = BindIndex::build(view, tech);
        for di in 0..view.devices.len() {
            let row = parts.device_parts(view, di, &bind);
            parts.devices.push(row);
        }
        for (label, layer) in labels {
            let row = parts.label_parts(view, label, *layer, &bind);
            parts.labels.push(row);
        }
        parts
    }

    /// Recomputes the connection-merge edges from element-id pairs.
    pub fn set_conn_edges(&mut self, merges: &[(usize, usize)]) {
        self.conn_edges.clear();
        self.conn_edges.reserve(merges.len());
        for &(i, j) in merges {
            let (Some(a), Some(b)) = (self.element_node[i], self.element_node[j]) else {
                debug_assert!(false, "merge endpoints must be netted");
                continue;
            };
            self.conn_edges.push((a, b));
        }
    }

    /// Computes one device's row (used for initial build and for
    /// re-binding a device whose neighbourhood changed).
    pub fn device_parts(&mut self, view: &ChipView, di: usize, bind: &BindIndex) -> DeviceParts {
        let dev = &view.devices[di];
        let mut row = DeviceParts::default();
        if is_joining_class(dev.class) {
            // One net for the whole device.
            let dev_node = self.node(&format!("{}.#", dev.path));
            for &eid in &dev.element_ids {
                let node = self.element_node[eid].expect("joining device geometry is netted");
                row.edges.push((dev_node, node));
            }
            for (tname, _, _) in &dev.terminals {
                row.terms.push((tname.clone(), dev_node));
            }
            if dev.terminals.is_empty() {
                // Still a device on its single net.
                row.terms.push(("A".to_string(), dev_node));
            }
        } else {
            // Terminal-separated device: each terminal is its own key,
            // bound to covering elements.
            for (tname, layer, pos) in &dev.terminals {
                let term_node = self.node(&format!("{}.{}", dev.path, tname));
                for id in bind.elements_at(view, *layer, *pos) {
                    let node = self.element_node[id].expect("bindable elements are netted");
                    row.edges.push((term_node, node));
                }
                row.terms.push((tname.clone(), term_node));
            }
        }
        row
    }

    /// Computes one label's row.
    pub fn label_parts(
        &mut self,
        view: &ChipView,
        label: &NetLabel,
        layer: Option<LayerId>,
        bind: &BindIndex,
    ) -> LabelParts {
        let Some(layer) = layer else {
            return LabelParts::default();
        };
        let node = self.node(&label.net);
        let mut row = LabelParts {
            node: Some(node),
            edges: Vec::new(),
        };
        for id in bind.elements_at(view, layer, label.position) {
            let elem = self.element_node[id].expect("bindable elements are netted");
            row.edges.push((node, elem));
        }
        row
    }

    /// Assembles the canonical net list and per-element / per-terminal
    /// resolutions from the current graph.
    pub fn assemble(&self, view: &ChipView) -> NetgenResult {
        // Live nodes: whatever the element/device/label rows reference.
        let mut live: Vec<u32> = self.element_node.iter().flatten().copied().collect();
        for d in &self.devices {
            live.extend(d.terms.iter().map(|&(_, n)| n));
        }
        for l in &self.labels {
            live.extend(l.node);
        }
        live.sort_unstable();
        live.dedup();
        let nodes: Vec<(u32, &str)> = live
            .iter()
            .map(|&n| (n, self.names[n as usize].as_str()))
            .collect();

        let mut edges: Vec<(u32, u32)> = self.conn_edges.clone();
        for d in &self.devices {
            edges.extend_from_slice(&d.edges);
        }
        for l in &self.labels {
            edges.extend_from_slice(&l.edges);
        }

        let devices: Vec<AssembleDevice<'_>> = view
            .devices
            .iter()
            .zip(&self.devices)
            .map(|(dev, row)| AssembleDevice {
                name: &dev.path,
                device_type: &dev.device_type,
                class: dev.class.unwrap_or(DeviceClass::Capacitor),
                terminals: row.terms.iter().map(|(t, n)| (t.as_str(), *n)).collect(),
            })
            .collect();

        let (netlist, node_nets) = assemble_netlist(&nodes, &edges, &devices);
        // Dense node → net map (nodes are interner indices).
        let mut node_to_net: Vec<Option<NetId>> = vec![None; self.names.len()];
        for (&(node, _), &net) in nodes.iter().zip(&node_nets) {
            node_to_net[node as usize] = Some(net);
        }

        let element_net: Vec<Option<NetId>> = self
            .element_node
            .iter()
            .map(|n| n.and_then(|n| node_to_net[n as usize]))
            .collect();
        let device_terminal_nets: Vec<Vec<NetId>> = self
            .devices
            .iter()
            .map(|row| {
                row.terms
                    .iter()
                    .filter_map(|(_, n)| node_to_net[*n as usize])
                    .collect()
            })
            .collect();

        NetgenResult {
            netlist,
            element_net,
            device_terminal_nets,
            violations: Vec::new(),
        }
    }
}

/// Generates the hierarchical net list.
///
/// * interconnect elements get their declared (`9N`, path-qualified) or
///   auto net keys;
/// * stage-4 merges unify keys;
/// * contact-class devices join all their elements and terminals into one
///   net; transistors/resistors expose per-terminal nets that bind to any
///   element covering the terminal point on the terminal's layer;
/// * `9L` labels name the net of the element covering the labelled point.
///
/// This is [`NetParts::build`] + [`NetParts::assemble`]; an edit session
/// keeps the [`NetParts`] graph alive and patches it instead of
/// rebuilding.
pub fn generate_netlist(
    view: &ChipView,
    tech: &Technology,
    merges: &[(usize, usize)],
    labels: &[(NetLabel, Option<LayerId>)],
) -> NetgenResult {
    NetParts::build(view, tech, merges, labels).assemble(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{instantiate, LayerBinding};
    use crate::connect::check_connections;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn extract(cif: &str) -> (NetgenResult, ChipView) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let view = instantiate(&layout, &tech, &binding);
        let conn = check_connections(&view, &tech);
        let labels: Vec<(NetLabel, Option<LayerId>)> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();
        let r = generate_netlist(&view, &tech, &conn.merges, &labels);
        (r, view)
    }

    #[test]
    fn connected_wires_share_a_net() {
        let (r, _) = extract("L NM; 9N A; B 2000 750 1000 375; 9N B; B 2000 750 2200 375; E");
        let a = r.netlist.net_by_name("A").unwrap();
        let b = r.netlist.net_by_name("B").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transistor_terminals_bind_to_covering_wires() {
        // Enhancement transistor with poly gate wire and diff S/D wires
        // covering its terminal points.
        let (r, _) = extract(
            "DS 1; 9 tr; 9D NMOS_ENH;
             9T G NP -375 0; 9T S ND 250 -1000; 9T D ND 250 1000;
             L NP; B 1500 500 250 0;
             L ND; B 500 2500 250 0;
             DF;
             C 1 T 0 0;
             L NP; 9N in; W 500 -375 0 -3000 0;
             L ND; 9N gnd; W 500 250 -1000 250 -4000;
             L ND; 9N out; W 500 250 1000 250 4000;
             E",
        );
        assert_eq!(r.netlist.device_count(), 1);
        let dev = &r.netlist.devices()[0];
        assert_eq!(dev.device_type, "NMOS_ENH");
        let g = r.netlist.net_by_name("in").unwrap();
        let s = r.netlist.net_by_name("gnd").unwrap();
        let d = r.netlist.net_by_name("out").unwrap();
        let find = |t: &str| dev.terminals.iter().find(|(n, _)| n == t).unwrap().1;
        assert_eq!(find("G"), g);
        assert_eq!(find("S"), s);
        assert_eq!(find("D"), d);
        // Three distinct nets (no shorting through the channel!).
        assert_ne!(s, d);
        assert_ne!(g, s);
    }

    #[test]
    fn contact_joins_layers_into_one_net() {
        let (r, _) = extract(
            "DS 1; 9D CONTACT_D; 9T A NM 0 0; 9T B ND 0 0;
             L NC; B 500 500 0 0; L ND; B 1000 1000 0 0; L NM; B 1000 1000 0 0; DF;
             C 1 T 0 0;
             L NM; 9N up; W 750 0 0 4000 0;
             L ND; 9N down; W 500 0 0 -4000 0;
             E",
        );
        let up = r.netlist.net_by_name("up").unwrap();
        let down = r.netlist.net_by_name("down").unwrap();
        assert_eq!(up, down, "contact must join metal and diffusion nets");
    }

    #[test]
    fn labels_name_nets() {
        let (r, _) = extract("L NM; B 2000 750 1000 375; 9L VDD NM 1000 375; E");
        assert!(r.netlist.net_by_name("VDD").is_some());
        // The rail element's net carries the VDD alias.
        let vdd = r.netlist.net_by_name("VDD").unwrap();
        assert!(r.netlist.net(vdd).aliases.iter().any(|a| a == "VDD"));
        assert!(r.element_net[0] == Some(vdd));
    }

    #[test]
    fn hierarchical_dot_notation_nets() {
        let (r, _) = extract(
            "DS 1; L NM; 9N out; B 2000 750 1000 375; DF;
             C 1 T 0 0; C 1 T 10000 0; E",
        );
        assert!(r.netlist.net_by_name("i0.out").is_some());
        assert!(r.netlist.net_by_name("i1.out").is_some());
        assert_ne!(
            r.netlist.net_by_name("i0.out"),
            r.netlist.net_by_name("i1.out"),
            "instances must get distinct nets"
        );
    }

    #[test]
    fn transistor_internals_unnetted() {
        let (r, view) = extract(
            "DS 1; 9D NMOS_ENH; L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF; C 1; E",
        );
        for e in &view.elements {
            assert!(r.element_net[e.id].is_none());
        }
    }
}
