//! Stage 5 — "generate hierarchical net list".
//!
//! "While parsing the design, each element in the design is assigned a
//! unique net identifier using a dot notation to reference elements in an
//! instance from a higher level in the hierarchy. With this hierarchical
//! net list available, it is now possible to check electrical construction
//! rules or to check the net list against an input net list for
//! consistency."

use crate::binding::ChipView;
use crate::connect::is_joining_class;
use crate::violations::Violation;
use diic_cif::NetLabel;
use diic_geom::{GridIndex, Point};
use diic_netlist::{NetId, Netlist, NetlistBuilder};
use diic_tech::{DeviceClass, LayerId, Technology};

/// Output of net-list generation.
#[derive(Debug, Clone)]
pub struct NetgenResult {
    /// The extracted net list.
    pub netlist: Netlist,
    /// Net of each element (index = element id); `None` for un-netted
    /// device internals (gates, resistor bodies).
    pub element_net: Vec<Option<NetId>>,
    /// Terminal nets per device instance (index = device id).
    pub device_terminal_nets: Vec<Vec<NetId>>,
    /// Violations (currently none are produced here; reserved for
    /// extraction anomalies).
    pub violations: Vec<Violation>,
}

/// Generates the hierarchical net list.
///
/// * interconnect elements get their declared (`9N`, path-qualified) or
///   auto net keys;
/// * stage-4 merges unify keys;
/// * contact-class devices join all their elements and terminals into one
///   net; transistors/resistors expose per-terminal nets that bind to any
///   element covering the terminal point on the terminal's layer;
/// * `9L` labels name the net of the element covering the labelled point.
pub fn generate_netlist(
    view: &ChipView,
    tech: &Technology,
    merges: &[(usize, usize)],
    labels: &[(NetLabel, Option<LayerId>)],
) -> NetgenResult {
    let mut b = NetlistBuilder::new();

    // Element keys — only for elements that carry nets: interconnect and
    // joining (contact-class) device geometry. A transistor's un-netted
    // parts must not become phantom zero-terminal nets.
    for e in &view.elements {
        let netted = match e.device {
            None => true,
            Some(d) => is_joining_class(view.devices[d].class),
        };
        if netted {
            b.node(&e.net_key);
        }
    }
    // Stage-4 merges.
    for &(i, j) in merges {
        b.connect(&view.elements[i].net_key, &view.elements[j].net_key);
    }

    // Spatial index for terminal/label point binding: prefer interconnect
    // and joining-device elements (transistor internals don't carry nets).
    // Cells are sized from the technology's rule reach rather than a
    // magic constant.
    let mut index: GridIndex<usize> = GridIndex::new(crate::interact::interaction_cell_size(tech));
    for e in &view.elements {
        let bindable = match e.device {
            None => true,
            Some(d) => is_joining_class(view.devices[d].class),
        };
        if bindable {
            index.insert(e.bbox, e.id);
        }
    }
    let elements_at = |index: &GridIndex<usize>, layer: LayerId, p: Point| -> Vec<usize> {
        index
            .query(&diic_geom::Rect::new(p.x, p.y, p.x, p.y))
            .into_iter()
            .copied()
            .filter(|&id| {
                let e = &view.elements[id];
                e.layer == layer && e.rects.iter().any(|r| r.contains_point(p))
            })
            .collect()
    };

    // Devices.
    let mut device_term_keys: Vec<Vec<(String, String)>> = Vec::with_capacity(view.devices.len());
    for (di, dev) in view.devices.iter().enumerate() {
        let joining = is_joining_class(dev.class);
        let mut term_keys = Vec::new();
        if joining {
            // One net for the whole device.
            let dev_key = format!("{}.#", dev.path);
            b.node(&dev_key);
            for &eid in &dev.element_ids {
                b.connect(&dev_key, &view.elements[eid].net_key);
            }
            for (tname, _, _) in &dev.terminals {
                term_keys.push((tname.clone(), dev_key.clone()));
            }
            if dev.terminals.is_empty() {
                // Still a device on its single net.
                term_keys.push(("A".to_string(), dev_key.clone()));
            }
        } else {
            // Terminal-separated device: each terminal is its own key,
            // bound to covering elements.
            for (tname, layer, pos) in &dev.terminals {
                let key = format!("{}.{}", dev.path, tname);
                b.node(&key);
                for id in elements_at(&index, *layer, *pos) {
                    b.connect(&key, &view.elements[id].net_key);
                }
                term_keys.push((tname.clone(), key));
            }
        }
        let class = dev.class.unwrap_or(DeviceClass::Capacitor);
        let refs: Vec<(&str, &str)> = term_keys
            .iter()
            .map(|(t, k)| (t.as_str(), k.as_str()))
            .collect();
        b.add_device(&dev.path, &dev.device_type, class, &refs);
        device_term_keys.push(term_keys);
        let _ = di;
    }

    // Labels.
    for (label, layer) in labels {
        let Some(layer) = layer else { continue };
        b.node(&label.net);
        for id in elements_at(&index, *layer, label.position) {
            b.connect(&label.net, &view.elements[id].net_key);
        }
    }

    let netlist = b.finish();

    // Resolve nets per element and per device terminal.
    let element_net: Vec<Option<NetId>> = view
        .elements
        .iter()
        .map(|e| {
            let unnetted = match e.device {
                None => false,
                Some(d) => !is_joining_class(view.devices[d].class),
            };
            if unnetted {
                None
            } else {
                netlist.net_by_name(&e.net_key)
            }
        })
        .collect();
    let device_terminal_nets: Vec<Vec<NetId>> = device_term_keys
        .iter()
        .map(|terms| {
            terms
                .iter()
                .filter_map(|(_, key)| netlist.net_by_name(key))
                .collect()
        })
        .collect();

    NetgenResult {
        netlist,
        element_net,
        device_terminal_nets,
        violations: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{instantiate, LayerBinding};
    use crate::connect::check_connections;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn extract(cif: &str) -> (NetgenResult, ChipView) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let view = instantiate(&layout, &tech, &binding);
        let conn = check_connections(&view, &tech);
        let labels: Vec<(NetLabel, Option<LayerId>)> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();
        let r = generate_netlist(&view, &tech, &conn.merges, &labels);
        (r, view)
    }

    #[test]
    fn connected_wires_share_a_net() {
        let (r, _) = extract("L NM; 9N A; B 2000 750 1000 375; 9N B; B 2000 750 2200 375; E");
        let a = r.netlist.net_by_name("A").unwrap();
        let b = r.netlist.net_by_name("B").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transistor_terminals_bind_to_covering_wires() {
        // Enhancement transistor with poly gate wire and diff S/D wires
        // covering its terminal points.
        let (r, _) = extract(
            "DS 1; 9 tr; 9D NMOS_ENH;
             9T G NP -375 0; 9T S ND 250 -1000; 9T D ND 250 1000;
             L NP; B 1500 500 250 0;
             L ND; B 500 2500 250 0;
             DF;
             C 1 T 0 0;
             L NP; 9N in; W 500 -375 0 -3000 0;
             L ND; 9N gnd; W 500 250 -1000 250 -4000;
             L ND; 9N out; W 500 250 1000 250 4000;
             E",
        );
        assert_eq!(r.netlist.device_count(), 1);
        let dev = &r.netlist.devices()[0];
        assert_eq!(dev.device_type, "NMOS_ENH");
        let g = r.netlist.net_by_name("in").unwrap();
        let s = r.netlist.net_by_name("gnd").unwrap();
        let d = r.netlist.net_by_name("out").unwrap();
        let find = |t: &str| dev.terminals.iter().find(|(n, _)| n == t).unwrap().1;
        assert_eq!(find("G"), g);
        assert_eq!(find("S"), s);
        assert_eq!(find("D"), d);
        // Three distinct nets (no shorting through the channel!).
        assert_ne!(s, d);
        assert_ne!(g, s);
    }

    #[test]
    fn contact_joins_layers_into_one_net() {
        let (r, _) = extract(
            "DS 1; 9D CONTACT_D; 9T A NM 0 0; 9T B ND 0 0;
             L NC; B 500 500 0 0; L ND; B 1000 1000 0 0; L NM; B 1000 1000 0 0; DF;
             C 1 T 0 0;
             L NM; 9N up; W 750 0 0 4000 0;
             L ND; 9N down; W 500 0 0 -4000 0;
             E",
        );
        let up = r.netlist.net_by_name("up").unwrap();
        let down = r.netlist.net_by_name("down").unwrap();
        assert_eq!(up, down, "contact must join metal and diffusion nets");
    }

    #[test]
    fn labels_name_nets() {
        let (r, _) = extract("L NM; B 2000 750 1000 375; 9L VDD NM 1000 375; E");
        assert!(r.netlist.net_by_name("VDD").is_some());
        // The rail element's net carries the VDD alias.
        let vdd = r.netlist.net_by_name("VDD").unwrap();
        assert!(r.netlist.net(vdd).aliases.iter().any(|a| a == "VDD"));
        assert!(r.element_net[0] == Some(vdd));
    }

    #[test]
    fn hierarchical_dot_notation_nets() {
        let (r, _) = extract(
            "DS 1; L NM; 9N out; B 2000 750 1000 375; DF;
             C 1 T 0 0; C 1 T 10000 0; E",
        );
        assert!(r.netlist.net_by_name("i0.out").is_some());
        assert!(r.netlist.net_by_name("i1.out").is_some());
        assert_ne!(
            r.netlist.net_by_name("i0.out"),
            r.netlist.net_by_name("i1.out"),
            "instances must get distinct nets"
        );
    }

    #[test]
    fn transistor_internals_unnetted() {
        let (r, view) = extract(
            "DS 1; 9D NMOS_ENH; L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF; C 1; E",
        );
        for e in &view.elements {
            assert!(r.element_net[e.id].is_none());
        }
    }
}
