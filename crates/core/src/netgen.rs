//! Stage 5 — "generate hierarchical net list".
//!
//! "While parsing the design, each element in the design is assigned a
//! unique net identifier using a dot notation to reference elements in an
//! instance from a higher level in the hierarchy. With this hierarchical
//! net list available, it is now possible to check electrical construction
//! rules or to check the net list against an input net list for
//! consistency."
//!
//! # One interner, end to end
//!
//! The net graph's node ids **are** the view interner's raw indices
//! ([`crate::binding::Istr::index`]): an element's node is its `net_key`
//! handle, and the fresh keys this stage creates — terminal keys
//! (`i0.G`), joining-device keys (`i0.#`), label nets — are interned
//! into [`ChipView::strings`]. No key string is ever copied into a
//! second table, and "same string ⇒ same node" holds across the whole
//! pipeline, which is what keeps an edit session's cached rows valid.
//! Node ids therefore depend on interning history (a from-scratch build
//! and a patched session may number them differently) — which is fine,
//! because [`assemble_netlist`] canonicalises purely by key *strings*:
//! net identity, aliases, and ordering never see the raw ids.
//!
//! # Parallelism
//!
//! Net-list generation splits into a **per-scope union phase** and a
//! serial canonical assembly. The element-node map is a read-only
//! column sweep (`net_key` handle + device class per element), so it
//! fans out over the worker pool, as does the netted filter behind
//! [`BindIndex::build_parallel`] — the last serial build steps. The
//! terminal/label union phase — binding each device's terminals and
//! each label's point to the elements covering them — is a pure
//! function per device/label of the (read-only) view and the shared
//! [`BindIndex`], so it fans out too
//! ([`crate::parallel::run_chunked`]) as symbolic **draft rows**: the
//! covering element ids plus the fresh key *strings* a serial build
//! would intern, in intern order. The serial fold then interns the
//! drafts in device/label order — exactly the order a serial
//! [`NetParts::build`] interns in — so the int-keyed graph is numbered
//! identically and the assembled net list is **byte-identical for any
//! worker count** ([`NetParts::build_parallel`], driven by
//! [`CheckOptions::parallelism`](crate::CheckOptions::parallelism); the
//! seventh differential-oracle leg in `tests/differential.rs` pins it).
//! The assembly itself ([`NetParts::assemble`] →
//! [`assemble_netlist`]) stays serial: it is a global union-find plus
//! canonical naming, the same fold the incremental session re-runs after
//! patching rows.

use crate::binding::{ChipView, Istr, StringInterner};
use crate::connect::is_joining_class;
use crate::parallel::run_chunked;
use crate::violations::Violation;
use diic_cif::NetLabel;
use diic_geom::{GridIndex, Point};
use diic_netlist::{assemble_netlist, AssembleDevice, NetId, Netlist};
use diic_tech::{DeviceClass, LayerId, Technology};

/// Output of net-list generation.
#[derive(Debug, Clone)]
pub struct NetgenResult {
    /// The extracted net list.
    pub netlist: Netlist,
    /// Net of each element (index = element id); `None` for un-netted
    /// device internals (gates, resistor bodies).
    pub element_net: Vec<Option<NetId>>,
    /// Terminal nets per device instance (index = device id).
    pub device_terminal_nets: Vec<Vec<NetId>>,
    /// Violations (currently none are produced here; reserved for
    /// extraction anomalies).
    pub violations: Vec<Violation>,
}

/// True if the element carries a net: interconnect and joining
/// (contact-class) device geometry. A transistor's un-netted parts must
/// not become phantom zero-terminal nets.
pub fn element_is_netted(view: &ChipView, id: usize) -> bool {
    match view.elements.get(id).device() {
        None => true,
        Some(d) => is_joining_class(view.devices[d].class),
    }
}

/// Spatial index over the bindable (netted) elements, for terminal and
/// label point binding. Cells are sized from the technology's rule reach
/// rather than a magic constant.
#[derive(Debug)]
pub struct BindIndex {
    index: GridIndex<usize>,
}

impl BindIndex {
    /// Indexes every netted element of the view, serially —
    /// [`BindIndex::build_parallel`] with one worker.
    pub fn build(view: &ChipView, tech: &Technology) -> BindIndex {
        BindIndex::build_parallel(view, tech, 1)
    }

    /// [`BindIndex::build`] with the netted filter — a device-column
    /// and class sweep per element — fanned out over `workers` scoped
    /// threads. The chunked results flatten in id order, so the index
    /// insertion order (and every ascending-id query answer) is
    /// byte-identical for any worker count.
    pub fn build_parallel(view: &ChipView, tech: &Technology, workers: usize) -> BindIndex {
        let ids: Vec<usize> = run_chunked(view.elements.len(), workers, |id| {
            element_is_netted(view, id).then_some(id)
        })
        .into_iter()
        .flatten()
        .collect();
        BindIndex::build_among(view, tech, &ids)
    }

    /// Indexes only the given elements (the incremental checker's scoped
    /// variant — callers must pass netted elements; only they can bind).
    pub fn build_among(view: &ChipView, tech: &Technology, ids: &[usize]) -> BindIndex {
        let mut index: GridIndex<usize> =
            GridIndex::new(crate::interact::interaction_cell_size(tech));
        let bboxes = view.elements.bboxes();
        for &id in ids {
            index.insert(bboxes[id], id);
        }
        BindIndex { index }
    }

    /// Ids (ascending) of netted elements covering point `p` on `layer`.
    pub fn elements_at(&self, view: &ChipView, layer: LayerId, p: Point) -> Vec<usize> {
        self.index
            .query(&diic_geom::Rect::new(p.x, p.y, p.x, p.y))
            .into_iter()
            .copied()
            .filter(|&id| {
                let e = view.elements.get(id);
                e.layer() == layer && e.rects().iter().any(|r| r.contains_point(p))
            })
            .collect()
    }
}

/// One device's rows in the net graph: its terminal `(name, node)` pairs
/// and the connection edges its geometry/bindings contribute. Rows are
/// position-independent (they reference interned nodes, not element
/// ids), which is what lets an edit session splice cached rows of
/// untouched devices into a patched graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceParts {
    /// `(terminal-name, node)` pairs, in terminal order.
    pub terms: Vec<(String, u32)>,
    /// Node-pair edges (device join edges or terminal bindings).
    pub edges: Vec<(u32, u32)>,
}

/// One label's rows: its net node (None if the label's layer is unknown)
/// and its binding edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelParts {
    /// The label net's node.
    pub node: Option<u32>,
    /// Label-to-covering-element edges.
    pub edges: Vec<(u32, u32)>,
}

/// The int-keyed net graph behind net-list generation.
///
/// Nodes are **raw indices into the owning view's interner**
/// ([`ChipView::strings`]) — there is no second key table, so net node
/// keys are never re-interned, and the interner's append-only contract
/// makes nodes **stable across edits** (stale keys simply stop being
/// referenced). The element/device/label rows record which nodes are
/// live and how they connect. [`NetParts::assemble`] folds the graph
/// through [`assemble_netlist`] — the same canonicalisation the
/// [`diic_netlist::NetlistBuilder`] uses, keyed purely on the node's
/// *strings* — so a graph patched incrementally by a
/// [`crate::incremental::CheckSession`] produces a net list
/// byte-identical to a from-scratch build even where the two interned
/// the keys in different orders.
#[derive(Debug, Clone, Default)]
pub struct NetParts {
    /// Node per element id; `None` for un-netted device internals.
    pub element_node: Vec<Option<u32>>,
    /// Node-pair edges from the connection stage's merges.
    pub conn_edges: Vec<(u32, u32)>,
    /// Per-device rows, aligned with `ChipView::devices`.
    pub devices: Vec<DeviceParts>,
    /// Per-label rows, aligned with the label list given to
    /// [`NetParts::build`].
    pub labels: Vec<LabelParts>,
}

impl NetParts {
    /// Remaps every node through an interner compaction map
    /// ([`crate::binding::StringInterner::compact`]): nodes are raw
    /// interner indices, so when the owning view's table is compacted
    /// (a long-lived service session shedding edit-churn garbage) the
    /// whole graph renumbers with it. The caller must keep every node
    /// key alive in the compaction — the remap is dense and
    /// order-preserving, so the graph stays isomorphic and
    /// [`NetParts::assemble`] (which canonicalises by the node
    /// *strings*) produces byte-identical net lists.
    pub fn remap_strings(&mut self, remap: &[Option<crate::binding::Istr>]) {
        let map = |n: u32| -> u32 {
            // invariant: the compaction keep set includes every node.
            remap[n as usize]
                .expect("live net nodes survive compaction")
                .index()
        };
        for node in self.element_node.iter_mut().flatten() {
            *node = map(*node);
        }
        for (a, b) in &mut self.conn_edges {
            *a = map(*a);
            *b = map(*b);
        }
        for device in &mut self.devices {
            for (_, node) in &mut device.terms {
                *node = map(*node);
            }
            for (a, b) in &mut device.edges {
                *a = map(*a);
                *b = map(*b);
            }
        }
        for label in &mut self.labels {
            if let Some(node) = &mut label.node {
                *node = map(*node);
            }
            for (a, b) in &mut label.edges {
                *a = map(*a);
                *b = map(*b);
            }
        }
    }

    /// Builds the full graph for a view, serially —
    /// [`NetParts::build_parallel`] with one worker.
    ///
    /// Needs the view mutably: fresh terminal / joining-device / label
    /// keys intern into the view's own table (the graph has no key
    /// store of its own).
    pub fn build(
        view: &mut ChipView,
        tech: &Technology,
        merges: &[(usize, usize)],
        labels: &[(NetLabel, Option<LayerId>)],
    ) -> NetParts {
        NetParts::build_parallel(view, tech, merges, labels, 1)
    }

    /// [`NetParts::build`] with the element-node map, the
    /// [`BindIndex`] filter, and the per-device / per-label union phase
    /// fanned out over `workers` scoped threads.
    ///
    /// The parallel jobs are read-only: the element-node map is a
    /// column sweep (an element's node is its `net_key` handle index),
    /// and the device/label jobs compute symbolic `DeviceDraft` /
    /// `LabelDraft` rows (covering-element ids plus fresh key strings
    /// in intern order). The serial fold then interns the drafts into
    /// the **view's** interner in device/label order — the same
    /// first-occurrence order a serial build interns in — so node
    /// numbering, rows, and the assembled net list are **byte-identical
    /// for any worker count**.
    pub fn build_parallel(
        view: &mut ChipView,
        tech: &Technology,
        merges: &[(usize, usize)],
        labels: &[(NetLabel, Option<LayerId>)],
        workers: usize,
    ) -> NetParts {
        let mut parts = NetParts::default();
        // Element nodes: a parallel read-only sweep of the net-key and
        // device columns. The node *is* the interned key's index — no
        // interner traffic at all.
        let ro: &ChipView = view;
        parts.element_node = run_chunked(ro.elements.len(), workers, |id| {
            element_is_netted(ro, id).then(|| ro.elements.net_keys()[id].index())
        });
        parts.set_conn_edges(merges);
        let bind = BindIndex::build_parallel(ro, tech, workers);
        // Union phase: chunked draft jobs over the device and label
        // lists (one contiguous chunk per job keeps run_ordered's
        // per-job overhead off the per-device scale).
        let dev_drafts = run_chunked(ro.devices.len(), workers, |di| device_draft(ro, di, &bind));
        let label_drafts = run_chunked(labels.len(), workers, |li| {
            let (label, layer) = &labels[li];
            label_draft(ro, label, *layer, &bind)
        });
        // Serial fold: intern fresh keys into the view's table in
        // device/label order.
        for draft in dev_drafts {
            let row = parts.intern_device_draft(&mut view.strings, draft);
            parts.devices.push(row);
        }
        for draft in label_drafts {
            let row = parts.intern_label_draft(&mut view.strings, draft);
            parts.labels.push(row);
        }
        parts
    }

    /// Recomputes the connection-merge edges from element-id pairs.
    pub fn set_conn_edges(&mut self, merges: &[(usize, usize)]) {
        self.conn_edges.clear();
        self.conn_edges.reserve(merges.len());
        for &(i, j) in merges {
            let (Some(a), Some(b)) = (self.element_node[i], self.element_node[j]) else {
                debug_assert!(false, "merge endpoints must be netted");
                continue;
            };
            self.conn_edges.push((a, b));
        }
    }

    /// Computes one device's row (used for initial build and for
    /// re-binding a device whose neighbourhood changed) — the draft
    /// computation plus an immediate intern into the view's table, so
    /// the incremental session's re-rows and the parallel build share
    /// one emission order.
    pub fn device_parts(
        &mut self,
        view: &mut ChipView,
        di: usize,
        bind: &BindIndex,
    ) -> DeviceParts {
        let draft = device_draft(view, di, bind);
        self.intern_device_draft(&mut view.strings, draft)
    }

    /// Computes one label's row (see [`NetParts::device_parts`]).
    pub fn label_parts(
        &mut self,
        view: &mut ChipView,
        label: &NetLabel,
        layer: Option<LayerId>,
        bind: &BindIndex,
    ) -> LabelParts {
        let draft = label_draft(view, label, layer, bind);
        self.intern_label_draft(&mut view.strings, draft)
    }

    /// Resolves a symbolic device draft against the view interner and
    /// the element-node map, in the draft's recorded intern order.
    /// Fresh keys are interned **by move** — a miss keeps the draft's
    /// own allocation instead of copying it.
    fn intern_device_draft(
        &mut self,
        strings: &mut StringInterner,
        draft: DeviceDraft,
    ) -> DeviceParts {
        let nodes: Vec<u32> = draft
            .keys
            .into_iter()
            .map(|k| strings.intern_owned(k.into()).index())
            .collect();
        DeviceParts {
            terms: draft
                .terms
                .into_iter()
                .map(|(tname, ki)| (tname, nodes[ki]))
                .collect(),
            edges: draft
                .edges
                .into_iter()
                .map(|(ki, eid)| {
                    // invariant: drafts only reference elements the
                    // union phase netted (message supplied per draft).
                    let node = self.element_node[eid].expect(draft.expect);
                    (nodes[ki], node)
                })
                .collect(),
        }
    }

    /// Resolves a symbolic label draft (see
    /// [`NetParts::intern_device_draft`]).
    fn intern_label_draft(
        &mut self,
        strings: &mut StringInterner,
        draft: LabelDraft,
    ) -> LabelParts {
        let Some(draft) = draft.0 else {
            return LabelParts::default();
        };
        let node = strings.intern_owned(draft.key.into()).index();
        LabelParts {
            node: Some(node),
            edges: draft
                .bound
                .into_iter()
                .map(|id| {
                    // invariant: a label binds only to elements the
                    // union phase assigned a node.
                    let elem = self.element_node[id].expect("bindable elements are netted");
                    (node, elem)
                })
                .collect(),
        }
    }

    /// Assembles the canonical net list and per-element / per-terminal
    /// resolutions from the current graph. Node keys render through the
    /// view's interner (the only key table there is).
    pub fn assemble(&self, view: &ChipView) -> NetgenResult {
        // Live nodes: whatever the element/device/label rows reference.
        let mut live: Vec<u32> = self.element_node.iter().flatten().copied().collect();
        for d in &self.devices {
            live.extend(d.terms.iter().map(|&(_, n)| n));
        }
        for l in &self.labels {
            live.extend(l.node);
        }
        live.sort_unstable();
        live.dedup();
        let nodes: Vec<(u32, &str)> = live
            .iter()
            .map(|&n| (n, view.strings.get(Istr::from_index(n))))
            .collect();

        let mut edges: Vec<(u32, u32)> = self.conn_edges.clone();
        for d in &self.devices {
            edges.extend_from_slice(&d.edges);
        }
        for l in &self.labels {
            edges.extend_from_slice(&l.edges);
        }

        let devices: Vec<AssembleDevice<'_>> = view
            .devices
            .iter()
            .zip(&self.devices)
            .map(|(dev, row)| AssembleDevice {
                name: view.str(dev.path),
                device_type: view.str(dev.device_type),
                class: dev.class.unwrap_or(DeviceClass::Capacitor),
                terminals: row.terms.iter().map(|(t, n)| (t.as_str(), *n)).collect(),
            })
            .collect();

        let (netlist, node_nets) = assemble_netlist(&nodes, &edges, &devices);
        // Dense node → net map (nodes are view-interner indices).
        let mut node_to_net: Vec<Option<NetId>> = vec![None; view.strings.len()];
        for (&(node, _), &net) in nodes.iter().zip(&node_nets) {
            node_to_net[node as usize] = Some(net);
        }

        let element_net: Vec<Option<NetId>> = self
            .element_node
            .iter()
            .map(|n| n.and_then(|n| node_to_net[n as usize]))
            .collect();
        let device_terminal_nets: Vec<Vec<NetId>> = self
            .devices
            .iter()
            .map(|row| {
                row.terms
                    .iter()
                    .filter_map(|(_, n)| node_to_net[*n as usize])
                    .collect()
            })
            .collect();

        NetgenResult {
            netlist,
            element_net,
            device_terminal_nets,
            violations: Vec::new(),
        }
    }
}

/// One device's symbolic row before interning: the fresh node keys in
/// the exact order a serial build interns them, with terminals and
/// edges referencing key indices and covering-element ids. Pure data —
/// computable on any worker without touching the shared interner.
#[derive(Debug, Clone, Default)]
struct DeviceDraft {
    /// Fresh node keys, in serial intern order (one for a joining
    /// device, one per terminal otherwise).
    keys: Vec<String>,
    /// `(terminal-name, key index)` pairs, in terminal order.
    terms: Vec<(String, usize)>,
    /// `(key index, element id)` edges, in serial emission order.
    edges: Vec<(usize, usize)>,
    /// The element-node expectation message (differs between joining
    /// and terminal-separated rows).
    expect: &'static str,
}

/// One label's symbolic row before interning; `None` when the label's
/// layer is unknown.
#[derive(Debug, Clone, Default)]
struct LabelDraft(Option<LabelDraftInner>);

#[derive(Debug, Clone)]
struct LabelDraftInner {
    key: String,
    bound: Vec<usize>,
}

/// Computes one device's symbolic draft row (read-only — the parallel
/// union phase's job body).
fn device_draft(view: &ChipView, di: usize, bind: &BindIndex) -> DeviceDraft {
    let dev = &view.devices[di];
    let mut draft = DeviceDraft::default();
    if is_joining_class(dev.class) {
        // One net for the whole device.
        draft.expect = "joining device geometry is netted";
        draft.keys.push(format!("{}.#", view.str(dev.path)));
        for &eid in &dev.element_ids {
            draft.edges.push((0, eid));
        }
        for (tname, _, _) in &dev.terminals {
            draft.terms.push((tname.clone(), 0));
        }
        if dev.terminals.is_empty() {
            // Still a device on its single net.
            draft.terms.push(("A".to_string(), 0));
        }
    } else {
        // Terminal-separated device: each terminal is its own key,
        // bound to covering elements.
        draft.expect = "bindable elements are netted";
        for (tname, layer, pos) in &dev.terminals {
            let ki = draft.keys.len();
            draft.keys.push(format!("{}.{}", view.str(dev.path), tname));
            for id in bind.elements_at(view, *layer, *pos) {
                draft.edges.push((ki, id));
            }
            draft.terms.push((tname.clone(), ki));
        }
    }
    draft
}

/// Computes one label's symbolic draft row (read-only).
fn label_draft(
    view: &ChipView,
    label: &NetLabel,
    layer: Option<LayerId>,
    bind: &BindIndex,
) -> LabelDraft {
    let Some(layer) = layer else {
        return LabelDraft(None);
    };
    LabelDraft(Some(LabelDraftInner {
        key: label.net.clone(),
        bound: bind.elements_at(view, layer, label.position),
    }))
}

/// Generates the hierarchical net list, serially —
/// [`generate_netlist_parallel`] with one worker.
///
/// * interconnect elements get their declared (`9N`, path-qualified) or
///   auto net keys;
/// * stage-4 merges unify keys;
/// * contact-class devices join all their elements and terminals into one
///   net; transistors/resistors expose per-terminal nets that bind to any
///   element covering the terminal point on the terminal's layer;
/// * `9L` labels name the net of the element covering the labelled point.
///
/// The view is mutable because the stage's fresh keys (terminal,
/// joining-device, and label nets) intern into the view's own string
/// table — the graph shares that one interner end to end.
///
/// This is [`NetParts::build`] + [`NetParts::assemble`]; an edit session
/// keeps the [`NetParts`] graph alive and patches it instead of
/// rebuilding.
pub fn generate_netlist(
    view: &mut ChipView,
    tech: &Technology,
    merges: &[(usize, usize)],
    labels: &[(NetLabel, Option<LayerId>)],
) -> NetgenResult {
    generate_netlist_parallel(view, tech, merges, labels, 1)
}

/// [`generate_netlist`] with the per-scope union phase fanned out over
/// `workers` scoped threads ([`NetParts::build_parallel`]) — the
/// assembly stays serial and canonical, so any worker count produces a
/// byte-identical [`NetgenResult`].
pub fn generate_netlist_parallel(
    view: &mut ChipView,
    tech: &Technology,
    merges: &[(usize, usize)],
    labels: &[(NetLabel, Option<LayerId>)],
    workers: usize,
) -> NetgenResult {
    NetParts::build_parallel(view, tech, merges, labels, workers).assemble(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{instantiate, LayerBinding};
    use crate::connect::check_connections;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn extract(cif: &str) -> (NetgenResult, ChipView) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let mut view = instantiate(&layout, &tech, &binding);
        let conn = check_connections(&view, &tech);
        let labels: Vec<(NetLabel, Option<LayerId>)> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();
        let r = generate_netlist(&mut view, &tech, &conn.merges, &labels);
        (r, view)
    }

    #[test]
    fn connected_wires_share_a_net() {
        let (r, _) = extract("L NM; 9N A; B 2000 750 1000 375; 9N B; B 2000 750 2200 375; E");
        let a = r.netlist.net_by_name("A").unwrap();
        let b = r.netlist.net_by_name("B").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transistor_terminals_bind_to_covering_wires() {
        // Enhancement transistor with poly gate wire and diff S/D wires
        // covering its terminal points.
        let (r, _) = extract(
            "DS 1; 9 tr; 9D NMOS_ENH;
             9T G NP -375 0; 9T S ND 250 -1000; 9T D ND 250 1000;
             L NP; B 1500 500 250 0;
             L ND; B 500 2500 250 0;
             DF;
             C 1 T 0 0;
             L NP; 9N in; W 500 -375 0 -3000 0;
             L ND; 9N gnd; W 500 250 -1000 250 -4000;
             L ND; 9N out; W 500 250 1000 250 4000;
             E",
        );
        assert_eq!(r.netlist.device_count(), 1);
        let dev = &r.netlist.devices()[0];
        assert_eq!(dev.device_type, "NMOS_ENH");
        let g = r.netlist.net_by_name("in").unwrap();
        let s = r.netlist.net_by_name("gnd").unwrap();
        let d = r.netlist.net_by_name("out").unwrap();
        let find = |t: &str| dev.terminals.iter().find(|(n, _)| n == t).unwrap().1;
        assert_eq!(find("G"), g);
        assert_eq!(find("S"), s);
        assert_eq!(find("D"), d);
        // Three distinct nets (no shorting through the channel!).
        assert_ne!(s, d);
        assert_ne!(g, s);
    }

    #[test]
    fn contact_joins_layers_into_one_net() {
        let (r, _) = extract(
            "DS 1; 9D CONTACT_D; 9T A NM 0 0; 9T B ND 0 0;
             L NC; B 500 500 0 0; L ND; B 1000 1000 0 0; L NM; B 1000 1000 0 0; DF;
             C 1 T 0 0;
             L NM; 9N up; W 750 0 0 4000 0;
             L ND; 9N down; W 500 0 0 -4000 0;
             E",
        );
        let up = r.netlist.net_by_name("up").unwrap();
        let down = r.netlist.net_by_name("down").unwrap();
        assert_eq!(up, down, "contact must join metal and diffusion nets");
    }

    #[test]
    fn labels_name_nets() {
        let (r, _) = extract("L NM; B 2000 750 1000 375; 9L VDD NM 1000 375; E");
        assert!(r.netlist.net_by_name("VDD").is_some());
        // The rail element's net carries the VDD alias.
        let vdd = r.netlist.net_by_name("VDD").unwrap();
        assert!(r.netlist.net(vdd).aliases.iter().any(|a| a == "VDD"));
        assert!(r.element_net[0] == Some(vdd));
    }

    #[test]
    fn hierarchical_dot_notation_nets() {
        let (r, _) = extract(
            "DS 1; L NM; 9N out; B 2000 750 1000 375; DF;
             C 1 T 0 0; C 1 T 10000 0; E",
        );
        assert!(r.netlist.net_by_name("i0.out").is_some());
        assert!(r.netlist.net_by_name("i1.out").is_some());
        assert_ne!(
            r.netlist.net_by_name("i0.out"),
            r.netlist.net_by_name("i1.out"),
            "instances must get distinct nets"
        );
    }

    #[test]
    fn transistor_internals_unnetted() {
        let (r, view) = extract(
            "DS 1; 9D NMOS_ENH; L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF; C 1; E",
        );
        for id in 0..view.elements.len() {
            assert!(r.element_net[id].is_none());
        }
    }

    #[test]
    fn node_keys_live_in_the_view_interner() {
        // The graph has no key table of its own: terminal keys and the
        // element nodes alike must resolve through the view's interner.
        let (_, view) = extract(
            "DS 1; 9D CONTACT_D; 9T A NM 0 0;
             L NC; B 500 500 0 0; L NM; B 1000 1000 0 0; DF;
             C 1 T 0 0; E",
        );
        assert!(
            view.strings.lookup("i0.#").is_some(),
            "joining-device key interned into the view table"
        );
    }
}
