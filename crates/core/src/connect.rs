//! Stage 4 — "check legal connections": skeletal connectivity.
//!
//! "In doing this, elements which interact and are on the same layer are
//! checked against the connection rules for legal connections. The legal
//! connection criterion used here is that of skeletal connectivity. \[...\]
//! Note that if two elements are each of legal width and are skeletally
//! connected, then the union of the elements is of legal width."
//!
//! This stage also enforces declared-device typing (Fig. 8): interconnect
//! on a device-forming layer pair (poly × diffusion) that overlaps outside
//! a device symbol is an **undeclared device** — the single biggest class
//! of unchecked errors in mask-level checkers, which "will not recognize
//! the accidental crossing of poly and diffusion as an error since it
//! forms a legal transistor".
//!
//! # Parallelism
//!
//! A connection verdict (touch + skeletal connectivity, or the Fig. 8
//! cross-layer overlap test) is a pure function of one element pair, so
//! the stage shards like the interaction search: the elements are
//! indexed once in one [`GridIndex`], the index's insertion-order
//! [`GridIndex::tiles`] partition the id space, and each worker scans
//! one tile's elements against the shared index
//! ([`check_connections_parallel`], driven by
//! [`CheckOptions::parallelism`](crate::CheckOptions::parallelism)). A
//! pair spanning two tiles is owned by its **lower element's tile** (the
//! scan keeps only `j > i` — the same ownership rule the tiled
//! interaction search uses), so every candidate pair is scored exactly
//! once, and the per-tile results — violations, merges,
//! `pairs_examined` — merge positionally
//! ([`run_ordered`]): any worker count is
//! byte-identical to serial, which the seventh differential-oracle leg
//! (`tests/differential.rs`) pins on generated chips.
//!
//! The incremental checker's scoped pass ([`check_connections_among`])
//! stays serial — its seed sets are already edit-sized.

use crate::binding::ChipView;
use crate::parallel::run_ordered;
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_geom::{batch, GridIndex};
use diic_tech::{DeviceClass, InternalRule, LayerId, Technology};
use std::collections::HashSet;

/// Output of the connection-checking stage.
#[derive(Debug, Clone, Default)]
pub struct ConnectionResult {
    /// Violations (illegal connections, implied devices).
    pub violations: Vec<Violation>,
    /// Element-id pairs found legally connected (to merge in net-list
    /// generation).
    pub merges: Vec<(usize, usize)>,
    /// Number of same-layer touching pairs examined.
    pub pairs_examined: usize,
}

/// True if a device class joins all of its elements into one net
/// (contacts of all kinds).
pub fn is_joining_class(class: Option<DeviceClass>) -> bool {
    matches!(
        class,
        Some(DeviceClass::Contact)
            | Some(DeviceClass::ButtingContact)
            | Some(DeviceClass::BuriedContact)
    )
}

/// The layer pairs whose interconnect overlap forms an undeclared device,
/// derived from the technology's archetypes: any `RequiresOverlap { a, b }`
/// rule on interconnect layers.
pub fn device_forming_pairs(tech: &Technology) -> HashSet<(LayerId, LayerId)> {
    let mut out = HashSet::new();
    for dev in tech.devices() {
        for rule in &dev.internal_rules {
            if let InternalRule::RequiresOverlap { a, b } = rule {
                if tech.layer(*a).kind.is_interconnect() && tech.layer(*b).kind.is_interconnect() {
                    let (x, y) = if a <= b { (*a, *b) } else { (*b, *a) };
                    out.insert((x, y));
                }
            }
        }
    }
    out
}

/// Elements per tile for [`check_connections_parallel`] — the same
/// insertion-order tile width the tiled interaction search defaults to,
/// for the same reason: small enough that a tile is cache-friendly,
/// large enough that tile bookkeeping is noise.
const CONNECT_TILE_ELEMENTS: usize = crate::interact::DEFAULT_TILE_ELEMENTS;

/// Runs the connection checks over the instantiated chip, serially —
/// [`check_connections_parallel`] with one worker.
pub fn check_connections(view: &ChipView, tech: &Technology) -> ConnectionResult {
    check_connections_parallel(view, tech, 1)
}

/// [`check_connections`] with the element scan sharded by grid tile
/// across `workers` scoped threads.
///
/// One [`GridIndex`] over every element is built and shared; its
/// insertion-order [`GridIndex::tiles`] are the work units. Each tile
/// job scans its elements against the whole index, keeping only pairs
/// `j > i` — a pair spanning tiles is owned by its lower element's tile,
/// so every pair is scored exactly once — and the per-tile results merge
/// positionally: **any worker count yields a byte-identical
/// [`ConnectionResult`]** (violations, merges, and `pairs_examined`).
pub fn check_connections_parallel(
    view: &ChipView,
    tech: &Technology,
    workers: usize,
) -> ConnectionResult {
    let forming = device_forming_pairs(tech);
    let mut index: GridIndex<usize> = GridIndex::new(crate::interact::interaction_cell_size(tech));
    // One pass down the dense bbox column — no per-element structs.
    for (id, bbox) in view.elements.bboxes().iter().enumerate() {
        index.insert(*bbox, id);
    }
    // Slots are element ids (inserted in id order), so the tile ranges
    // partition the id space in ascending order.
    let tiles: Vec<std::ops::Range<u32>> = index.tiles(CONNECT_TILE_ELEMENTS).collect();
    let shards = run_ordered(tiles.len(), workers, |k| {
        let mut shard = ConnectionResult::default();
        for i in tiles[k].clone() {
            scan_element(view, tech, &index, &forming, i as usize, &mut shard);
        }
        shard
    });
    let mut result = ConnectionResult::default();
    for mut shard in shards {
        result.violations.append(&mut shard.violations);
        result.merges.append(&mut shard.merges);
        result.pairs_examined += shard.pairs_examined;
    }
    result
}

/// Runs the connection checks over the pairs **among** the given
/// elements only (ascending ids). This is the incremental checker's
/// scoped pass: a connection verdict (touch + skeletal connectivity) is
/// a pure pair function, so pairs with an endpoint outside the seed set
/// keep their cached verdicts, and every pair whose verdict could have
/// changed has both endpoints in the seed set (any element whose
/// geometry changed — or that sits inside the dirty footprint a changed
/// element left behind — is a seed).
pub fn check_connections_among(
    view: &ChipView,
    tech: &Technology,
    ids: &[usize],
) -> ConnectionResult {
    let mut result = ConnectionResult::default();
    let forming = device_forming_pairs(tech);

    // Index the seed elements by bbox, with cells sized from the
    // technology's rule reach (see `interact::interaction_cell_size`).
    let mut index: GridIndex<usize> = GridIndex::new(crate::interact::interaction_cell_size(tech));
    for &id in ids {
        index.insert(view.elements.bboxes()[id], id);
    }

    for &i in ids {
        scan_element(view, tech, &index, &forming, i, &mut result);
    }
    result
}

/// Scores every candidate pair `(i, j)` with `j > i` for one element —
/// the **single** scan body behind the serial scoped pass
/// ([`check_connections_among`]) and the tiled parallel one
/// ([`check_connections_parallel`]), so the byte-identity contract
/// between them cannot drift. [`GridIndex::query`] returns ids in
/// ascending insertion order, so each element's pairs come out sorted.
fn scan_element(
    view: &ChipView,
    tech: &Technology,
    index: &GridIndex<usize>,
    forming: &HashSet<(LayerId, LayerId)>,
    i: usize,
    result: &mut ConnectionResult,
) {
    let a = view.elements.get(i);
    for &j in index.query(&a.bbox()) {
        if j <= i {
            continue;
        }
        let b = view.elements.get(j);
        // Pairs within one device instance are stage-3 territory.
        if a.device().is_some() && a.device() == b.device() {
            continue;
        }
        // The covered rectangles are contiguous arena runs — the touch
        // test is a batch pair sweep over two plain slices.
        if !batch::any_touch(a.rects(), b.rects()) {
            continue;
        }

        if a.layer() == b.layer() {
            result.pairs_examined += 1;
            handle_same_layer(view, tech, i, j, result);
        } else {
            // Cross-layer overlap on a device-forming pair = implied
            // device (Fig. 8), unless it is a device's own geometry
            // overlapping — the declared-device case handled above by
            // the same-instance skip; a device element overlapping
            // *another* instance's geometry is still parasitic.
            let key = if a.layer() <= b.layer() {
                (a.layer(), b.layer())
            } else {
                (b.layer(), a.layer())
            };
            if forming.contains(&key) && batch::any_overlap(a.rects(), b.rects()) {
                result.violations.push(Violation {
                    stage: CheckStage::Connections,
                    kind: ViolationKind::ImpliedDevice {
                        layer_a: tech.layer(a.layer()).name.clone(),
                        layer_b: tech.layer(b.layer()).name.clone(),
                    },
                    location: overlap_bbox(view, i, j),
                    context: context_of(view, i, j),
                });
            }
        }
    }
}

fn handle_same_layer(
    view: &ChipView,
    tech: &Technology,
    i: usize,
    j: usize,
    result: &mut ConnectionResult,
) {
    let a = view.elements.get(i);
    let b = view.elements.get(j);
    let a_join = a
        .device()
        .map(|d| is_joining_class(view.devices[d].class))
        .unwrap_or(false);
    let b_join = b
        .device()
        .map(|d| is_joining_class(view.devices[d].class))
        .unwrap_or(false);

    match (a.device().is_some(), b.device().is_some()) {
        (false, false) => {
            // Interconnect ↔ interconnect: skeletal connectivity
            // decides — an overlap sweep over the two skeleton arena
            // runs (an empty run is an under-width element, which
            // cannot legally connect; `any_overlap` is vacuously false).
            let connected = batch::any_overlap(a.skeleton(), b.skeleton());
            if connected {
                result.merges.push((i, j));
            } else {
                result.violations.push(Violation {
                    stage: CheckStage::Connections,
                    kind: ViolationKind::IllegalConnection {
                        layer: tech.layer(a.layer()).name.clone(),
                    },
                    location: overlap_bbox(view, i, j),
                    context: context_of(view, i, j),
                });
            }
        }
        // A contact-class device joins everything it touches on its layers.
        (true, false) if a_join => result.merges.push((i, j)),
        (false, true) if b_join => result.merges.push((i, j)),
        (true, true) if a_join && b_join => result.merges.push((i, j)),
        // Transistor/resistor geometry connects only through declared
        // terminals (net-list generation handles those); silent here.
        _ => {}
    }
}

fn overlap_bbox(view: &ChipView, i: usize, j: usize) -> Option<diic_geom::Rect> {
    let bb = view.elements.bboxes();
    bb[i].intersection(&bb[j]).or(Some(bb[i]))
}

fn context_of(view: &ChipView, i: usize, j: usize) -> String {
    let a = view.str(view.elements.paths()[i]);
    let b = view.str(view.elements.paths()[j]);
    if a == b {
        a.to_string()
    } else if a.is_empty() || b.is_empty() {
        format!("{a}{b}")
    } else {
        format!("{a} / {b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{instantiate, LayerBinding};
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn run(cif: &str) -> ConnectionResult {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let view = instantiate(&layout, &tech, &binding);
        check_connections(&view, &tech)
    }

    #[test]
    fn overlapping_wires_merge() {
        // Two metal wires overlapping by a full min width.
        let r = run("L NM; 9N A; B 2000 750 1000 375; 9N B; B 2000 750 2200 375; E");
        assert_eq!(r.merges.len(), 1);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn fig15_butted_boxes_flagged() {
        // Touching end to end without overlap: not skeletally connected.
        let r = run("L NM; B 2000 750 1000 375; B 2000 750 3000 375; E");
        assert!(r.merges.is_empty());
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::IllegalConnection { .. }
        ));
    }

    #[test]
    fn fig8_accidental_transistor_flagged() {
        // Poly interconnect crossing diffusion interconnect: implied device.
        let r = run("L NP; W 500 0 1000 3000 1000; L ND; W 500 1500 0 1500 2000; E");
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::ImpliedDevice { .. }
        ));
    }

    #[test]
    fn declared_transistor_not_flagged() {
        // The same crossing inside a declared device symbol: fine.
        let r =
            run("DS 1; 9D NMOS_ENH; L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF; C 1; E");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn poly_wire_over_foreign_transistor_diff_flagged() {
        // A poly wire crossing a *device's* diffusion is still parasitic.
        let r = run(
            "DS 1; 9D NMOS_ENH; L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF;
             C 1 T 0 0;
             L NP; W 500 -2000 750 2000 750; E",
        );
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ImpliedDevice { .. })));
    }

    #[test]
    fn metal_crossing_everything_is_fine() {
        let r = run("L NM; W 750 0 0 5000 0; L NP; W 500 2000 -2000 2000 2000; E");
        assert!(r.violations.is_empty());
        assert!(r.merges.is_empty());
    }

    #[test]
    fn contact_device_joins_touching_interconnect() {
        let r = run("DS 1; 9D CONTACT_D;
             L NC; B 500 500 0 0; L ND; B 1000 1000 0 0; L NM; B 1000 1000 0 0; DF;
             C 1 T 0 0;
             L NM; 9N OUT; W 750 0 0 5000 0;
             L ND; 9N OUT; W 500 0 0 -5000 0; E");
        // Metal wire merges with contact metal; diff wire with contact diff.
        assert_eq!(r.merges.len(), 2, "{:?}", r.violations);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn transistor_geometry_does_not_join_by_touch() {
        // A diff wire overlapping a transistor's diffusion merges nothing
        // here (terminal connections are net-list generation's job).
        let r = run(
            "DS 1; 9D NMOS_ENH; L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF;
             C 1 T 0 0;
             L ND; W 500 250 -1000 250 -4000; E",
        );
        assert!(r.merges.is_empty());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn under_width_touch_is_illegal_connection() {
        // A legal wire touched by an under-width stub: the stub has no
        // skeleton, so the connection is illegal (plus the stub is a width
        // violation from stage 2, reported separately).
        let r = run("L NM; B 2000 750 1000 375; B 400 400 2200 375; E");
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(
            r.violations[0].kind,
            ViolationKind::IllegalConnection { .. }
        ));
    }
}
