//! Stage 2 — "check elements": interconnect width per symbol definition.
//!
//! "The primitive elements of the chip are checked for legal width. This is
//! done in the symbol definition, not in each instance of a symbol. Boxes
//! and wires are trivial to check, polygons require a more general purpose
//! polygon width routine. The only elements which are checked at this stage
//! are interconnect."
//!
//! Checking per *definition* is the first hierarchy win: an element in a
//! cell instantiated 10,000 times is checked once. It is also what enforces
//! the paper's **self-sufficiency** usage rule (Fig. 15): a half-width box
//! that would only reach legal width when butted against a copy from a
//! neighbouring instance is flagged *in the definition*.

use crate::binding::LayerBinding;
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{Element, Item, Layout, Shape, Symbol};
use diic_geom::width::{check_polygon_width, check_rect_width, check_wire_width};
use diic_tech::Technology;

/// Runs element checks over every symbol definition and the top level.
/// Elements inside device symbols are excluded (stage 3 checks those).
pub fn check_elements(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for sym in layout.symbols() {
        if sym.is_device() {
            continue; // device internals belong to stage 3
        }
        for e in sym.elements() {
            check_one(e, tech, binding, &sym.display_name(), &mut out);
        }
    }
    for item in layout.top_items() {
        if let Item::Element(e) = item {
            check_one(e, tech, binding, "<top>", &mut out);
        }
    }
    out
}

fn check_one(
    e: &Element,
    tech: &Technology,
    binding: &LayerBinding,
    context: &str,
    out: &mut Vec<Violation>,
) {
    let Some(layer_id) = binding.layer(e.layer) else {
        return; // unknown layer, reported by binding
    };
    let layer = tech.layer(layer_id);

    // Device-only layers may not appear as loose interconnect: "implied
    // devices are not allowed".
    if layer.kind.is_device_only() {
        out.push(Violation {
            stage: CheckStage::Elements,
            kind: ViolationKind::DeviceOnlyLayer {
                layer: layer.name.clone(),
            },
            location: Some(e.shape.bbox()),
            context: context.to_string(),
        });
        return;
    }
    if !layer.kind.is_interconnect() {
        return; // e.g. glass: not geometrically checked
    }

    let min_w = layer.min_width;
    match &e.shape {
        Shape::Box(r) => {
            if let Some(v) = check_rect_width(r, min_w) {
                out.push(width_violation(
                    layer.name.clone(),
                    v.measured,
                    min_w,
                    v.location,
                    context,
                ));
            }
        }
        Shape::Wire(w) => {
            if !w.is_manhattan() {
                out.push(Violation {
                    stage: CheckStage::Elements,
                    kind: ViolationKind::NonManhattan,
                    location: Some(w.bbox()),
                    context: context.to_string(),
                });
            }
            if let Some(v) = check_wire_width(w, min_w) {
                out.push(width_violation(
                    layer.name.clone(),
                    v.measured,
                    min_w,
                    v.location,
                    context,
                ));
            }
        }
        Shape::Polygon(p) => {
            for v in check_polygon_width(p, min_w) {
                out.push(width_violation(
                    layer.name.clone(),
                    v.measured,
                    min_w,
                    v.location,
                    context,
                ));
            }
        }
    }
}

fn width_violation(
    layer: String,
    measured: diic_geom::Coord,
    required: diic_geom::Coord,
    location: diic_geom::Rect,
    context: &str,
) -> Violation {
    Violation {
        stage: CheckStage::Elements,
        kind: ViolationKind::Width {
            layer,
            measured,
            required,
        },
        location: Some(location),
        context: context.to_string(),
    }
}

/// Counts how many element width checks a flat checker would perform for
/// the same layout (elements × instantiations) versus the hierarchical
/// count (elements once per definition) — the stage-2 part of the run-time
/// argument (paper Fig. 9/10).
pub fn check_count_comparison(layout: &Layout) -> (u64, u64) {
    let stats = diic_cif::hierarchy::stats(layout);
    let hierarchical: u64 = layout
        .symbols()
        .iter()
        .map(|s: &Symbol| s.elements().count() as u64)
        .sum::<u64>()
        + layout
            .top_items()
            .iter()
            .filter(|i| matches!(i, Item::Element(_)))
            .count() as u64;
    (hierarchical, stats.flat_element_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn run(cif: &str) -> Vec<Violation> {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, mut v) = LayerBinding::bind(&layout, &tech);
        v.extend(check_elements(&layout, &tech, &binding));
        v
    }

    #[test]
    fn legal_interconnect_passes() {
        let v = run("L NM; B 2000 750 0 0; W 750 0 0 5000 0; L NP; B 500 3000 0 0; E");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn narrow_box_flagged() {
        let v = run("L NM; B 2000 700 0 0; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0].kind,
            ViolationKind::Width {
                measured: 700,
                required: 750,
                ..
            }
        ));
    }

    #[test]
    fn narrow_wire_flagged() {
        let v = run("L NP; W 400 0 0 5000 0; E");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn fig15_half_width_box_flagged_in_definition() {
        // A cell with a half-width poly box meant to butt against its
        // neighbour: flagged once, in the definition.
        let v = run("DS 1; 9 bad; L NP; B 250 2000 125 1000; DF; C 1; C 1 T 250 0; E");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].context, "bad");
    }

    #[test]
    fn checked_once_per_definition() {
        // 100 instances, still one violation record.
        let mut cif = String::from("DS 1; L NM; B 2000 700 0 0; DF;\n");
        for i in 0..100 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 3000));
        }
        cif.push('E');
        let v = run(&cif);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn device_symbol_elements_skipped() {
        // Contact cut inside a device: not an element-stage problem.
        let v = run("DS 1; 9D CONTACT_D; L NC; B 500 500 0 0; DF; C 1; E");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn loose_contact_flagged() {
        let v = run("L NC; B 500 500 0 0; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::DeviceOnlyLayer { .. }));
    }

    #[test]
    fn diagonal_wire_flagged() {
        let v = run("L NM; W 750 0 0 5000 5000; E");
        assert!(v
            .iter()
            .any(|x| matches!(x.kind, ViolationKind::NonManhattan)));
    }

    #[test]
    fn polygon_width_checked() {
        // Legal L-shaped metal polygon.
        let ok = run("L NM; P 0 0 3000 0 3000 750 750 750 750 3000 0 3000; E");
        assert!(ok.is_empty(), "{ok:?}");
        // Too-narrow arm.
        let bad = run("L NM; P 0 0 3000 0 3000 700 700 700 700 3000 0 3000; E");
        assert!(!bad.is_empty());
    }

    #[test]
    fn count_comparison() {
        let layout = parse(
            "DS 1; L NM; B 2000 750 0 0; B 2000 750 0 2000; DF;
             DS 2; C 1; C 1 T 5000 0; DF;
             C 2; C 2 T 0 10000; C 2 T 0 20000; E",
        )
        .unwrap();
        let (hier, flat) = check_count_comparison(&layout);
        assert_eq!(hier, 2);
        assert_eq!(flat, 2 * 2 * 3);
    }
}
