//! Binding a parsed layout to a technology, and the instantiated chip view.
//!
//! Stages 3–6 of the pipeline work on *instantiated* elements — but unlike
//! a flat checker, every instantiated element keeps its topology: the
//! symbol it came from, the device instance it belongs to, its net key, and
//! its skeleton. "The information about what symbol the piece of geometry
//! came from is never lost."
//!
//! # The view's memory floor: interned strings, columnar elements
//!
//! The [`ChipView`] is the pipeline's one intentionally O(chip) artefact
//! (it *is* the chip), so its per-element cost is the resident-set floor
//! at million-element scale. Two storage decisions squeeze that floor
//! without changing a byte of rendered output:
//!
//! * **Interned strings.** The topology strings — instance `path`, net
//!   key, device type — are massively shared (every element of an
//!   instance repeats its path; every instance of a symbol repeats its
//!   device type), so the view stores them once in a [`StringInterner`]
//!   and elements / [`DeviceInstance`]s carry 4-byte [`Istr`] handles
//!   instead of owned `String`s. Handles from one view compare equal iff
//!   the strings are equal; render them with [`ChipView::str`].
//!
//! * **Columnar elements.** Elements live in [`ElementColumns`] — a
//!   struct-of-arrays store with one dense, fixed-width column per
//!   field (`layer`, `bbox`, `net_key`, `path`, flag bits, sentinel-
//!   encoded device / source indices) and the variable-length geometry
//!   (covered rectangles, skeleton rectangles) packed into two shared
//!   arenas addressed by `(offset, len)` ranges. An element's id is its
//!   position — the walk, the shard stitch, and the incremental
//!   session's run splicing all preserve position, so no id column is
//!   stored at all. Hot stages sweep the dense columns (the
//!   [`diic_geom::batch`] kernels); anything that wants one element's
//!   fields together borrows a zero-cost [`ElementRef`] view.
//!
//! The boxed record form, [`ChipElement`], remains as the staging and
//! materialisation type: the instantiation walk builds one per element
//! and [`ElementColumns::push`] scatters it into the columns;
//! [`ElementRef::to_element`] gathers one back out. Round-tripping
//! through the boxed form is lossless — the eighth differential-oracle
//! leg (`tests/differential.rs`) pins it on generated chips.

use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{Item, LayerRef, Layout, Shape, SymbolId};
use diic_geom::skeleton::Skeleton;
use diic_geom::{Point, Rect, Region, Transform};
use diic_tech::{DeviceClass, LayerId, Technology};
use std::collections::HashMap;

/// A `u32`-keyed handle into a [`StringInterner`]: the interned form of
/// an element's `path` / `net_key` and a [`DeviceInstance`]'s
/// `path` / `device_type`. Two handles from the **same** interner are
/// equal iff their strings are equal (the interner deduplicates), so
/// hot paths compare and hash 4-byte ids instead of strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Istr(u32);

impl Istr {
    /// The raw index into the owning interner.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw index (crate-internal: the net
    /// graph stores its node ids as bare `u32`s).
    pub(crate) fn from_index(index: u32) -> Istr {
        Istr(index)
    }
}

/// An append-only hash-consing table: each distinct string is stored
/// exactly once and addressed by a stable [`Istr`] handle.
///
/// Lookup is by hash bucket with a full-string compare (no second copy
/// of the key inside a map), so unique strings — auto net keys are
/// mostly unique — cost one `Box<str>` plus bucket bookkeeping, while
/// shared strings (instance paths, device types) collapse to one entry
/// however many elements reference them. Handles are never invalidated:
/// an edit session keeps one interner alive across applies and stale
/// strings simply stop being referenced.
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    strings: Vec<Box<str>>,
    /// String hash → first id with that hash. Full-`u64` collisions are
    /// vanishingly rare, so the common case costs one flat map entry
    /// per distinct string; the rare extra ids live in `overflow`.
    first: HashMap<u64, u32>,
    /// `(hash, id)` pairs beyond the first per hash — scanned only when
    /// the first id's string mismatches.
    overflow: Vec<(u64, u32)>,
    /// Current usage epoch (see [`StringInterner::advance_epoch`]).
    epoch: u32,
    /// Epoch each string was last interned in, parallel to `strings` —
    /// the liveness signal [`StringInterner::compact_stale`] retains by.
    last_used: Vec<u32>,
}

impl StringInterner {
    fn hash_of(s: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        s.hash(&mut h);
        h.finish()
    }

    /// Interns a string, returning the stable handle of its single
    /// stored copy.
    pub fn intern(&mut self, s: &str) -> Istr {
        let id = match self.find_or_reserve(s) {
            Ok(id) => id,
            Err(id) => {
                self.strings.push(s.into());
                id
            }
        };
        self.touch(id);
        id
    }

    /// [`StringInterner::intern`] taking ownership — a miss moves the
    /// box into the table instead of re-allocating it (the shard-stitch
    /// path, where every shard's strings migrate into the merged view).
    pub fn intern_owned(&mut self, s: Box<str>) -> Istr {
        let id = match self.find_or_reserve(&s) {
            Ok(id) => id,
            Err(id) => {
                self.strings.push(s);
                id
            }
        };
        self.touch(id);
        id
    }

    /// Stamps a handle as used in the current epoch (growing the stamp
    /// column for a fresh push).
    fn touch(&mut self, id: Istr) {
        let i = id.0 as usize;
        if self.last_used.len() <= i {
            self.last_used.resize(i + 1, self.epoch);
        } else {
            self.last_used[i] = self.epoch;
        }
    }

    /// Below this many strings the table stays index-free (pure linear
    /// scan): the sharded instantiation walk creates one interner per
    /// top-level item, and a typical cell interns a couple of dozen
    /// strings — a hash map per shard would dominate the very memory
    /// the interner exists to save.
    const LINEAR_LIMIT: usize = 32;

    /// `Ok(existing)` on a hit; on a miss, records the next id in the
    /// hash tables and returns it as `Err` — the caller must push the
    /// string.
    fn find_or_reserve(&mut self, s: &str) -> Result<Istr, Istr> {
        if self.strings.len() < Self::LINEAR_LIMIT && self.first.is_empty() {
            for (i, t) in self.strings.iter().enumerate() {
                if &**t == s {
                    return Ok(Istr(i as u32));
                }
            }
            return Err(Istr(self.strings.len() as u32));
        }
        // Hash mode: index the linear backlog on first entry.
        if self.first.is_empty() {
            for i in 0..self.strings.len() as u32 {
                let h = Self::hash_of(&self.strings[i as usize]);
                match self.first.entry(h) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                    std::collections::hash_map::Entry::Occupied(_) => {
                        // Strings are distinct by construction, so an
                        // occupied slot is a true hash collision.
                        self.overflow.push((h, i));
                    }
                }
            }
        }
        let h = Self::hash_of(s);
        let id = self.strings.len() as u32;
        match self.first.entry(h) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                if &*self.strings[first as usize] == s {
                    return Ok(Istr(first));
                }
                for &(oh, oid) in &self.overflow {
                    if oh == h && &*self.strings[oid as usize] == s {
                        return Ok(Istr(oid));
                    }
                }
                self.overflow.push((h, id));
            }
        }
        Err(Istr(id))
    }

    /// The string behind a handle.
    pub fn get(&self, id: Istr) -> &str {
        &self.strings[id.0 as usize]
    }

    /// The handle a string is already interned under, if any (read-only
    /// — [`StringInterner::intern`] to insert).
    pub fn lookup(&self, s: &str) -> Option<Istr> {
        if self.first.is_empty() {
            return self
                .strings
                .iter()
                .position(|t| &**t == s)
                .map(|i| Istr(i as u32));
        }
        let h = Self::hash_of(s);
        let first = *self.first.get(&h)?;
        if &*self.strings[first as usize] == s {
            return Some(Istr(first));
        }
        self.overflow
            .iter()
            .find(|&&(oh, oid)| oh == h && &*self.strings[oid as usize] == s)
            .map(|&(_, oid)| Istr(oid))
    }

    /// Number of distinct strings stored.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Heap bytes held by the stored strings themselves (the payload the
    /// e18 memory table compares against per-element `String` copies;
    /// excludes bucket bookkeeping).
    pub fn heap_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }

    /// Drains the stored strings (the shard-stitch path: a shard's
    /// distinct strings move into the merged view's table).
    pub(crate) fn take_strings(&mut self) -> Vec<Box<str>> {
        self.first.clear();
        self.overflow.clear();
        self.last_used.clear();
        std::mem::take(&mut self.strings)
    }

    /// The current usage epoch. Epochs segment interner traffic into
    /// generations: a long-lived session (one interner across many
    /// checked cells) advances the epoch at each cell boundary, every
    /// [`StringInterner::intern`] stamps its handle with the epoch it
    /// ran in, and [`StringInterner::compact_stale`] evicts strings
    /// whose last use fell out of the recent-epoch window.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Starts the next usage epoch (see [`StringInterner::epoch`]).
    pub fn advance_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Rebuilds the table keeping only the strings `keep` approves,
    /// renumbering the survivors densely **in their original order**,
    /// and returns the old-handle → new-handle map — `None` for evicted
    /// strings (the [`diic_geom::GridIndex::compact`] remap pattern).
    /// Any caller still holding handles must remap them; handles of
    /// evicted strings are dead.
    ///
    /// Epoch stamps survive compaction, so repeated
    /// [`StringInterner::compact_stale`] calls age strings correctly.
    pub fn compact<F>(&mut self, mut keep: F) -> Vec<Option<Istr>>
    where
        F: FnMut(Istr, &str) -> bool,
    {
        let old_strings = std::mem::take(&mut self.strings);
        let old_used = std::mem::take(&mut self.last_used);
        self.first.clear();
        self.overflow.clear();
        let mut map = vec![None; old_strings.len()];
        for (old_id, s) in old_strings.into_iter().enumerate() {
            if keep(Istr(old_id as u32), &s) {
                // invariant: the table was emptied above, so every kept
                // string is a miss and ids come out dense in old order.
                let id = self.intern_owned(s);
                self.last_used[id.0 as usize] = old_used[old_id];
                map[old_id] = Some(id);
            }
        }
        map
    }

    /// [`StringInterner::compact`] keeping strings used within the last
    /// `keep_epochs` epochs (0 = only the current epoch). The batch
    /// library driver fires this between cells once the table outgrows
    /// its budget: strings the recent cells actually re-interned (shared
    /// paths, net names, device types) survive as a warm dictionary,
    /// one-off keys from older cells are evicted.
    pub fn compact_stale(&mut self, keep_epochs: u32) -> Vec<Option<Istr>> {
        let cutoff = self.epoch.saturating_sub(keep_epochs);
        let used = self.last_used.clone();
        self.compact(|id, _| used[id.index() as usize] >= cutoff)
    }
}

/// Maps layout layer references to technology layers.
#[derive(Debug, Clone)]
pub struct LayerBinding {
    map: Vec<Option<LayerId>>,
}

impl LayerBinding {
    /// Builds the binding; unknown CIF layer names produce violations.
    pub fn bind(layout: &Layout, tech: &Technology) -> (LayerBinding, Vec<Violation>) {
        let mut map = Vec::with_capacity(layout.layer_names().len());
        let mut violations = Vec::new();
        for name in layout.layer_names() {
            let id = tech.layer_by_cif(name);
            if id.is_none() {
                violations.push(Violation {
                    stage: CheckStage::Elements,
                    kind: ViolationKind::UnknownLayer {
                        cif_name: name.clone(),
                    },
                    location: None,
                    context: String::new(),
                });
            }
            map.push(id);
        }
        (LayerBinding { map }, violations)
    }

    /// Resolves a layout layer reference.
    pub fn layer(&self, r: LayerRef) -> Option<LayerId> {
        self.map.get(r.0 as usize).copied().flatten()
    }
}

/// An instantiated element in boxed record form — the staging type the
/// instantiation walk builds and the materialisation type
/// [`ElementRef::to_element`] gathers back out of the columns. The
/// pipeline's resident storage is [`ElementColumns`]; this struct
/// exists at the edges (construction, diagnostics, differential tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipElement {
    /// Index in [`ChipView::elements`] (equal to the element's column
    /// position — ids are implicit in the columnar store).
    pub id: usize,
    /// Technology layer.
    pub layer: LayerId,
    /// Exact covered rectangles in chip coordinates (boxes, Manhattan
    /// wires, rectilinear polygons).
    pub rects: Vec<Rect>,
    /// Bounding box in chip coordinates.
    pub bbox: Rect,
    /// Skeleton for connectivity checking (`None` when the element is
    /// under-width — already a width violation).
    pub skeleton: Option<Skeleton>,
    /// Net key: the declared net qualified by instance path, or a unique
    /// auto key. Interned in the owning view — render with
    /// [`ChipView::str`].
    pub net_key: Istr,
    /// True if the net was declared via `9N` (vs auto-generated).
    pub net_declared: bool,
    /// Instance path of the enclosing scope, interned in the owning view
    /// (the big sharing win: every element of an instance repeats it).
    pub path: Istr,
    /// Index into [`ChipView::devices`] if the element lives inside a
    /// device symbol instance.
    pub device: Option<usize>,
    /// The symbol definition the element came from (None = top level).
    pub source: Option<SymbolId>,
}

/// A packed bit column (one flag bit per element) — the storage behind
/// [`ElementColumns`]' boolean fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BitColumn {
    words: Vec<u64>,
    len: usize,
}

impl BitColumn {
    fn push(&mut self, v: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        self.words[w] |= (v as u64) << b;
        self.len += 1;
    }

    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }
}

/// Sentinel for "no device" / "no source" in the fixed-width columns
/// (a `u32` index column beats `Vec<Option<usize>>` by 12 bytes per
/// element and keeps the column densely comparable).
const NONE_U32: u32 = u32::MAX;

/// Struct-of-arrays storage for the instantiated elements.
///
/// One dense, fixed-width column per element field, with the
/// variable-length geometry packed into two shared arenas:
///
/// ```text
/// layer        Vec<LayerId>      2 B   dense column
/// bbox         Vec<Rect>        32 B   dense column (the hot sweep)
/// net_key      Vec<Istr>         4 B   interner handle
/// path         Vec<Istr>         4 B   interner handle
/// net_declared BitColumn       1 bit   flag bits
/// device       Vec<u32>          4 B   u32::MAX = none
/// source       Vec<u32>          4 B   SymbolId index, u32::MAX = none
/// rect_range   Vec<(u32, u32)>   8 B   (offset, len) into `rects`
/// skel_range   Vec<(u32, u32)>   8 B   (offset, len) into `skel`; len 0 = no skeleton
/// rects        Vec<Rect>               shared arena, chip coordinates
/// skel         Vec<Rect>               shared arena, scaled skeleton grid
/// ```
///
/// An element's **id is its position** — every producer preserves
/// position (the serial walk appends, the shard stitch concatenates in
/// item order, the incremental session splices whole per-item runs), so
/// no id column is stored. `len == 0` skeleton ranges encode "no
/// skeleton" exactly (no constructor produces an empty skeleton —
/// [`Skeleton::from_scaled_rects`] returns `None` for an empty run).
///
/// Hot consumers iterate the columns directly ([`ElementColumns::bboxes`]
/// with the [`diic_geom::batch`] kernels); per-element field access goes
/// through the borrowed [`ElementRef`] view, which renders reports
/// byte-identically to the old boxed storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElementColumns {
    layer: Vec<LayerId>,
    bbox: Vec<Rect>,
    net_key: Vec<Istr>,
    path: Vec<Istr>,
    net_declared: BitColumn,
    device: Vec<u32>,
    source: Vec<u32>,
    rect_range: Vec<(u32, u32)>,
    skel_range: Vec<(u32, u32)>,
    rects: Vec<Rect>,
    skel: Vec<Rect>,
}

impl ElementColumns {
    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.bbox.len()
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.bbox.is_empty()
    }

    /// Borrowed view of one element's fields. Panics if `id` is out of
    /// bounds.
    pub fn get(&self, id: usize) -> ElementRef<'_> {
        assert!(id < self.len(), "element id {id} out of bounds");
        ElementRef { cols: self, id }
    }

    /// Iterates the elements as [`ElementRef`] views, in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = ElementRef<'_>> + Clone {
        (0..self.len()).map(move |id| ElementRef { cols: self, id })
    }

    /// The dense bounding-box column — the sweep surface for grid
    /// insertion, tile filtering ([`diic_geom::batch::touching_in_run`])
    /// and halo probes.
    pub fn bboxes(&self) -> &[Rect] {
        &self.bbox
    }

    /// The dense layer column.
    pub fn layers(&self) -> &[LayerId] {
        &self.layer
    }

    /// The dense net-key column (interner handles).
    pub fn net_keys(&self) -> &[Istr] {
        &self.net_key
    }

    /// The dense path column (interner handles).
    pub fn paths(&self) -> &[Istr] {
        &self.path
    }

    /// Remaps the `net_key` / `path` handle columns through an interner
    /// compaction map ([`StringInterner::compact`]). The caller must
    /// have built the keep set from these very columns, so every stored
    /// handle survives.
    pub fn remap_strings(&mut self, remap: &[Option<Istr>]) {
        for h in self.net_key.iter_mut().chain(self.path.iter_mut()) {
            // invariant: column handles are in the compaction keep set.
            *h = remap[h.index() as usize].expect("live column handles survive compaction");
        }
    }

    /// One element's covered rectangles (a contiguous arena run).
    pub fn rects_of(&self, id: usize) -> &[Rect] {
        let (off, len) = self.rect_range[id];
        &self.rects[off as usize..off as usize + len as usize]
    }

    /// One element's skeleton rectangles in the scaled grid (empty =
    /// no skeleton; see [`Skeleton::scaled_rects`]).
    pub fn skeleton_of(&self, id: usize) -> &[Rect] {
        let (off, len) = self.skel_range[id];
        &self.skel[off as usize..off as usize + len as usize]
    }

    /// Total rectangles across both shared arenas (footprint
    /// accounting for the e18 memory table).
    pub fn arena_rects(&self) -> (usize, usize) {
        (self.rects.len(), self.skel.len())
    }

    /// Payload bytes of the columnar store: every dense column plus the
    /// two arenas (excludes `Vec` growth slack — this is the number the
    /// e18 table compares against the boxed layout's bytes/element).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.layer.len() * size_of::<LayerId>()
            + self.bbox.len() * size_of::<Rect>()
            + self.net_key.len() * size_of::<Istr>()
            + self.path.len() * size_of::<Istr>()
            + self.net_declared.words.len() * size_of::<u64>()
            + self.device.len() * size_of::<u32>()
            + self.source.len() * size_of::<u32>()
            + self.rect_range.len() * size_of::<(u32, u32)>()
            + self.skel_range.len() * size_of::<(u32, u32)>()
            + self.rects.len() * size_of::<Rect>()
            + self.skel.len() * size_of::<Rect>()
    }

    /// Appends one element, scattering the boxed record into the
    /// columns. The record's `id` must equal the current length — ids
    /// are positions.
    pub fn push(&mut self, el: ChipElement) {
        debug_assert_eq!(el.id, self.len(), "element ids are column positions");
        self.layer.push(el.layer);
        self.bbox.push(el.bbox);
        self.net_key.push(el.net_key);
        self.path.push(el.path);
        self.net_declared.push(el.net_declared);
        self.device.push(el.device.map_or(NONE_U32, |d| d as u32));
        self.source.push(el.source.map_or(NONE_U32, |s| s.0));
        let r0 = self.rects.len() as u32;
        self.rects.extend_from_slice(&el.rects);
        self.rect_range.push((r0, el.rects.len() as u32));
        let s0 = self.skel.len() as u32;
        let mut s_len = 0u32;
        if let Some(sk) = el.skeleton {
            let scaled = sk.into_scaled_rects();
            s_len = scaled.len() as u32;
            self.skel.extend(scaled);
        }
        self.skel_range.push((s0, s_len));
    }

    /// Builds columns from boxed records in order (ids must be
    /// positions). The inverse of [`ElementColumns::to_elements`].
    pub fn from_elements(elements: impl IntoIterator<Item = ChipElement>) -> ElementColumns {
        let mut cols = ElementColumns::default();
        for el in elements {
            cols.push(el);
        }
        cols
    }

    /// Materialises every element back into boxed record form — the
    /// differential oracle's round-trip surface; not used by the
    /// pipeline itself.
    pub fn to_elements(&self) -> Vec<ChipElement> {
        self.iter().map(|e| e.to_element()).collect()
    }

    /// Rewrites one element's net key (the auto-key ordinal pass).
    pub(crate) fn set_net_key(&mut self, id: usize, key: Istr) {
        self.net_key[id] = key;
    }

    /// Appends a whole shard's columns, offsetting device indices by
    /// `d_off` and remapping interner handles through `remap` — the
    /// sharded-instantiation stitch, one column `extend` at a time
    /// instead of one push per element.
    pub(crate) fn append_remapped(&mut self, shard: ElementColumns, d_off: usize, remap: &[Istr]) {
        self.layer.extend_from_slice(&shard.layer);
        self.bbox.extend_from_slice(&shard.bbox);
        self.net_key
            .extend(shard.net_key.iter().map(|k| remap[k.0 as usize]));
        self.path
            .extend(shard.path.iter().map(|p| remap[p.0 as usize]));
        for i in 0..shard.net_declared.len {
            self.net_declared.push(shard.net_declared.get(i));
        }
        self.device.extend(shard.device.iter().map(|&d| {
            if d == NONE_U32 {
                NONE_U32
            } else {
                d + d_off as u32
            }
        }));
        self.source.extend_from_slice(&shard.source);
        let r0 = self.rects.len() as u32;
        self.rects.extend_from_slice(&shard.rects);
        self.rect_range
            .extend(shard.rect_range.iter().map(|&(o, l)| (o + r0, l)));
        let s0 = self.skel.len() as u32;
        self.skel.extend_from_slice(&shard.skel);
        self.skel_range
            .extend(shard.skel_range.iter().map(|&(o, l)| (o + s0, l)));
    }

    /// Copies a contiguous run of elements from `other` (the incremental
    /// session's view patch: untouched per-item runs splice across by
    /// column copy, with ids renumbering implicitly to their new
    /// positions). Device indices shift by `device_delta`; arena runs
    /// re-pack contiguously.
    pub(crate) fn append_run_from(
        &mut self,
        other: &ElementColumns,
        range: std::ops::Range<usize>,
        device_delta: i64,
    ) {
        self.layer.extend_from_slice(&other.layer[range.clone()]);
        self.bbox.extend_from_slice(&other.bbox[range.clone()]);
        self.net_key
            .extend_from_slice(&other.net_key[range.clone()]);
        self.path.extend_from_slice(&other.path[range.clone()]);
        for i in range.clone() {
            self.net_declared.push(other.net_declared.get(i));
        }
        self.device
            .extend(other.device[range.clone()].iter().map(|&d| {
                if d == NONE_U32 {
                    NONE_U32
                } else {
                    (d as i64 + device_delta) as u32
                }
            }));
        self.source.extend_from_slice(&other.source[range.clone()]);
        for i in range {
            let r0 = self.rects.len() as u32;
            let run = other.rects_of(i);
            self.rects.extend_from_slice(run);
            self.rect_range.push((r0, run.len() as u32));
            let s0 = self.skel.len() as u32;
            let srun = other.skeleton_of(i);
            self.skel.extend_from_slice(srun);
            self.skel_range.push((s0, srun.len() as u32));
        }
    }
}

impl<'a> IntoIterator for &'a ElementColumns {
    type Item = ElementRef<'a>;
    type IntoIter =
        std::iter::Map<std::ops::Range<usize>, Box<dyn FnMut(usize) -> ElementRef<'a> + 'a>>;

    fn into_iter(self) -> Self::IntoIter {
        (0..self.len()).map(Box::new(move |id| ElementRef { cols: self, id }))
    }
}

/// A borrowed view of one element inside [`ElementColumns`] — two words
/// (columns pointer + id), `Copy`, with accessor methods named after
/// the old struct fields so call sites read the same.
#[derive(Clone, Copy)]
pub struct ElementRef<'a> {
    cols: &'a ElementColumns,
    id: usize,
}

impl<'a> ElementRef<'a> {
    /// The element's id (its column position).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Technology layer.
    pub fn layer(&self) -> LayerId {
        self.cols.layer[self.id]
    }

    /// Bounding box in chip coordinates.
    pub fn bbox(&self) -> Rect {
        self.cols.bbox[self.id]
    }

    /// Covered rectangles (a contiguous arena run).
    pub fn rects(&self) -> &'a [Rect] {
        self.cols.rects_of(self.id)
    }

    /// Skeleton rectangles in the scaled grid; empty means the element
    /// is under-width and has no skeleton. Feed pairs of these runs to
    /// [`diic_geom::batch::any_overlap`] for the legal-connection test.
    pub fn skeleton(&self) -> &'a [Rect] {
        self.cols.skeleton_of(self.id)
    }

    /// True if the element has a skeleton (is at least minimum width).
    pub fn has_skeleton(&self) -> bool {
        !self.skeleton().is_empty()
    }

    /// Interned net key.
    pub fn net_key(&self) -> Istr {
        self.cols.net_key[self.id]
    }

    /// True if the net was declared via `9N` (vs auto-generated).
    pub fn net_declared(&self) -> bool {
        self.cols.net_declared.get(self.id)
    }

    /// Interned instance path.
    pub fn path(&self) -> Istr {
        self.cols.path[self.id]
    }

    /// Index into [`ChipView::devices`] if the element lives inside a
    /// device symbol instance.
    pub fn device(&self) -> Option<usize> {
        let d = self.cols.device[self.id];
        (d != NONE_U32).then_some(d as usize)
    }

    /// The symbol definition the element came from (None = top level).
    pub fn source(&self) -> Option<SymbolId> {
        let s = self.cols.source[self.id];
        (s != NONE_U32).then_some(SymbolId(s))
    }

    /// Gathers the element back into boxed record form.
    pub fn to_element(&self) -> ChipElement {
        ChipElement {
            id: self.id,
            layer: self.layer(),
            rects: self.rects().to_vec(),
            bbox: self.bbox(),
            skeleton: Skeleton::from_scaled_rects(self.skeleton().to_vec()),
            net_key: self.net_key(),
            net_declared: self.net_declared(),
            path: self.path(),
            device: self.device(),
            source: self.source(),
        }
    }
}

impl std::fmt::Debug for ElementRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElementRef")
            .field("id", &self.id)
            .field("layer", &self.layer())
            .field("bbox", &self.bbox())
            .finish_non_exhaustive()
    }
}

/// An instantiated device (one per call of a device symbol).
#[derive(Debug, Clone)]
pub struct DeviceInstance {
    /// Instance path (dot notation), interned in the owning view.
    pub path: Istr,
    /// The device symbol.
    pub symbol: SymbolId,
    /// Declared `9D` type, interned in the owning view (one entry per
    /// distinct type however many instances share it).
    pub device_type: Istr,
    /// Archetype class if the technology knows the type.
    pub class: Option<DeviceClass>,
    /// Immunity flag (`9C`).
    pub checked: bool,
    /// Terminals in chip coordinates.
    pub terminals: Vec<(String, LayerId, Point)>,
    /// Ids of this instance's elements in [`ChipView::elements`].
    pub element_ids: Vec<usize>,
    /// Placement transform (chip ← symbol).
    pub transform: Transform,
}

/// The instantiated chip: all elements and device instances, topology
/// intact.
#[derive(Debug, Clone, Default)]
pub struct ChipView {
    /// All instantiated elements, in columnar storage.
    pub elements: ElementColumns,
    /// All device instances.
    pub devices: Vec<DeviceInstance>,
    /// Violations discovered during instantiation (unknown layers on
    /// terminals, non-rectilinear polygons treated as bboxes, …).
    pub violations: Vec<Violation>,
    /// The interner behind every [`Istr`] in `elements` and `devices`
    /// — and, once the netgen stage has run, behind the net graph's
    /// node keys too (one table end to end; see
    /// [`crate::netgen::NetParts`]).
    pub strings: StringInterner,
}

impl ChipView {
    /// Renders an interned string of this view.
    pub fn str(&self, s: Istr) -> &str {
        self.strings.get(s)
    }

    /// Borrowed view of one element (see [`ElementColumns::get`]).
    pub fn element(&self, id: usize) -> ElementRef<'_> {
        self.elements.get(id)
    }
}

/// Instantiates the layout against a technology.
///
/// Elements on unknown layers are skipped (the binding already reported
/// them). Device symbols instantiate a [`DeviceInstance`] per call;
/// elements inside them are tagged with it. Serial —
/// [`instantiate_parallel`] with one worker.
pub fn instantiate(layout: &Layout, tech: &Technology, binding: &LayerBinding) -> ChipView {
    instantiate_parallel(layout, tech, binding, 1)
}

/// [`instantiate`] with the per-top-item shard walks spread across
/// `workers` scoped threads — the sharded front end that lets
/// [`ChipView`] construction parallelise like the rest of the pipeline.
///
/// Each top-level item is one shard job: a pure walk of that item into
/// a private [`ChipView`] with shard-local ids. The shards are stitched
/// in item order by concatenating their columns — which renumbers
/// element positions (= ids) exactly as a serial walk would — while
/// offsetting device indices and the device → element back-references,
/// so any worker count yields a byte-identical view. Auto net keys are
/// assigned over the stitched columns (they are global: duplicate
/// ordinals may span shards).
pub fn instantiate_parallel(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    workers: usize,
) -> ChipView {
    instantiate_parallel_seeded(layout, tech, binding, workers, StringInterner::default())
}

/// [`instantiate_parallel`] with the view's string table **seeded** from
/// an existing interner — the library batch driver's warm-dictionary
/// path: a worker's session interner (carrying the shared paths, net
/// names, and device types of the cells it already checked) becomes the
/// base table, so repeated strings re-intern into existing entries
/// instead of re-allocating per cell. Handle *values* then differ from a
/// cold run, which is invisible in rendered output: violations carry
/// resolved strings and the net-list assembly canonicalises purely by
/// key strings ([`crate::netgen`]).
pub(crate) fn instantiate_parallel_seeded(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    workers: usize,
    seed: StringInterner,
) -> ChipView {
    let (mut view, _) = instantiate_sharded_seeded(layout, tech, binding, workers, seed);
    assign_auto_net_keys(&mut view.elements, &mut view.strings, None);
    view
}

/// The sharded walk behind [`instantiate_parallel`]: builds the view
/// one top-level item at a time on the worker pool and returns, along
/// with the stitched view, the per-item `(elements, devices)` run
/// lengths — the unit of reuse the incremental session's view patching
/// is built on. Auto net keys are **not** assigned here.
pub(crate) fn instantiate_sharded(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    workers: usize,
) -> (ChipView, Vec<(usize, usize)>) {
    instantiate_sharded_seeded(layout, tech, binding, workers, StringInterner::default())
}

/// [`instantiate_sharded`] stitching into a **seeded** string table
/// (see [`instantiate_parallel_seeded`]).
pub(crate) fn instantiate_sharded_seeded(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    workers: usize,
    seed: StringInterner,
) -> (ChipView, Vec<(usize, usize)>) {
    let items = layout.top_items();
    let shards: Vec<ChipView> = crate::parallel::run_ordered(items.len(), workers, |k| {
        let mut shard = ChipView::default();
        walk(
            layout,
            tech,
            binding,
            &items[k],
            &Transform::IDENTITY,
            "",
            None,
            None,
            &mut shard,
        );
        shard
    });
    let mut view = ChipView {
        strings: seed,
        ..ChipView::default()
    };
    let mut runs = Vec::with_capacity(shards.len());
    for mut shard in shards {
        let (e_off, d_off) = (view.elements.len(), view.devices.len());
        runs.push((shard.elements.len(), shard.devices.len()));
        view.violations.append(&mut shard.violations);
        // Each shard interned into a private table; its distinct
        // strings **move** into the stitched view's table (no string is
        // re-allocated — only duplicates already present are dropped)
        // and the handles are remapped. The stitch is sequential in
        // item order, so the merged numbering — like everything else
        // here — is independent of the worker count.
        let remap: Vec<Istr> = shard
            .strings
            .take_strings()
            .into_iter()
            .map(|s| view.strings.intern_owned(s))
            .collect();
        view.elements.append_remapped(shard.elements, d_off, &remap);
        for mut dv in shard.devices {
            for id in &mut dv.element_ids {
                *id += e_off;
            }
            dv.path = remap[dv.path.0 as usize];
            dv.device_type = remap[dv.device_type.0 as usize];
            view.devices.push(dv);
        }
    }
    (view, runs)
}

/// Instantiates a single top-level item, appending its elements and
/// device instances to `view` (the incremental checker's entry point for
/// regenerating one dirty item's run). Auto net keys are **not**
/// assigned here — run [`assign_auto_net_keys`] over the assembled
/// columns afterwards.
pub(crate) fn instantiate_item(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    item: &Item,
    view: &mut ChipView,
) {
    walk(
        layout,
        tech,
        binding,
        item,
        &Transform::IDENTITY,
        "",
        None,
        None,
        view,
    );
}

/// The ordinal-free base of an auto net key: strips a trailing `:<n>`
/// duplicate ordinal. Unambiguous because a base's own last `:` segment
/// is the four comma-joined bbox coordinates — never bare digits.
fn auto_key_base(key: &str) -> &str {
    if let Some(pos) = key.rfind(':') {
        let tail = &key[pos + 1..];
        if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) {
            return &key[..pos];
        }
    }
    key
}

/// Finalises the auto (undeclared) net keys over the finished element
/// columns — appending ordinals where exact duplicates share a key base
/// — and returns the ids whose key changed.
///
/// The key is a pure function of the element's *identity* — instance
/// path, layer, and definition-local bounding box (the base the walk
/// stored in `net_key`), with an ordinal disambiguating exact
/// duplicates — never of its position in the columns. That
/// stability is what lets an edit session reuse the net graph of
/// untouched elements: adding or removing an element elsewhere does not
/// rename every auto net after it (the old scheme's `#e{id}` did), and
/// moving an instance does not rename its internals at all (local
/// coordinates).
///
/// `changed` (when given) marks the elements whose identity may have
/// changed since keys were last assigned — only identity groups with a
/// changed member are re-derived, so an edit session pays for the edit,
/// not for re-formatting every auto key on the chip. The mask must
/// cover every element sharing a (chip) bounding box with changed or
/// removed geometry: duplicate ordinals shift only within one identity
/// group, and duplicates by definition share path, layer, and bbox.
pub(crate) fn assign_auto_net_keys(
    elements: &mut ElementColumns,
    strings: &mut StringInterner,
    changed: Option<&[bool]>,
) -> Vec<usize> {
    use std::collections::HashSet;
    // Pre-filter: the (layer, chip bbox) cells of changed undeclared
    // elements — a superset of the affected identity groups (exact
    // grouping is by key base below; a spurious match just re-derives
    // an unchanged key). A column sweep: layer/bbox/flag reads only.
    let hot: Option<HashSet<(diic_tech::LayerId, Rect)>> = changed.map(|mask| {
        elements
            .iter()
            .filter(|e| !e.net_declared() && mask[e.id()])
            .map(|e| (e.layer(), e.bbox()))
            .collect()
    });
    if hot.as_ref().is_some_and(|h| h.is_empty()) {
        return Vec::new();
    }
    let mut ordinals: HashMap<String, u32> = HashMap::new();
    let mut rekeyed = Vec::new();
    for id in 0..elements.len() {
        let e = elements.get(id);
        if e.net_declared() {
            continue;
        }
        if let Some(h) = &hot {
            if !h.contains(&(e.layer(), e.bbox())) {
                continue;
            }
        }
        // Derive the desired key while borrowing the current string,
        // then intern only when it actually changed — an unchanged key
        // costs no interner traffic and stays off the rekeyed list.
        let desired: Option<String> = {
            let current = strings.get(e.net_key());
            let base = auto_key_base(current);
            match ordinals.get_mut(base) {
                None => {
                    // Ordinal 0: the base itself is the key.
                    let want_base = base.len() != current.len();
                    let base = base.to_string();
                    let changed_key = want_base.then(|| base.clone());
                    ordinals.insert(base, 1);
                    changed_key
                }
                Some(n) => {
                    let key = format!("{base}:{n}");
                    *n += 1;
                    (key != current).then_some(key)
                }
            }
        };
        if let Some(key) = desired {
            elements.set_net_key(id, strings.intern(&key));
            rekeyed.push(id);
        }
    }
    rekeyed
}

#[allow(clippy::too_many_arguments)]
fn walk(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    item: &Item,
    t: &Transform,
    path: &str,
    device: Option<usize>,
    source: Option<SymbolId>,
    view: &mut ChipView,
) {
    match item {
        Item::Element(e) => {
            let Some(layer) = binding.layer(e.layer) else {
                return; // unknown layer, already reported
            };
            // Auto-key base in *local* (definition) coordinates: stable
            // under instance moves, so dragging a call does not rename
            // its internal nets.
            let local_bbox = e.shape.bbox();
            let shape = e.shape.transformed(t);
            let rects: Vec<Rect> = match &shape {
                Shape::Box(r) => vec![*r],
                Shape::Wire(w) => w.to_rects(),
                Shape::Polygon(p) => match p.to_rects() {
                    Ok(rs) => rs,
                    Err(_) => vec![p.bbox()], // non-rectilinear: bbox cover
                },
            };
            let bbox = shape.bbox();
            let half = tech.layer(layer).half_min_width();
            let skeleton = match &shape {
                Shape::Box(r) => Skeleton::of_rect(r, half),
                Shape::Wire(w) => Skeleton::of_wire(w, half),
                Shape::Polygon(_) => {
                    Skeleton::of_region(&Region::from_rects(rects.iter().copied()), half)
                }
            };
            let id = view.elements.len();
            // Undeclared elements get their key *base* (path, layer and
            // local bbox — never the element's position in the columns);
            // `assign_auto_net_keys` appends ordinals where exact
            // duplicates collide once the element list is complete.
            let (net_key, net_declared) = match &e.net {
                Some(n) if path.is_empty() => (n.clone(), true),
                Some(n) => (format!("{path}.{n}"), true),
                None => (
                    format!(
                        "#{}:{}:{},{},{},{}",
                        path, layer.0, local_bbox.x1, local_bbox.y1, local_bbox.x2, local_bbox.y2
                    ),
                    false,
                ),
            };
            let net_key = view.strings.intern(&net_key);
            let path = view.strings.intern(path);
            view.elements.push(ChipElement {
                id,
                layer,
                rects,
                bbox,
                skeleton,
                net_key,
                net_declared,
                path,
                device,
                source,
            });
            if let Some(d) = device {
                view.devices[d].element_ids.push(id);
            }
        }
        Item::Call(c) => {
            let sym = layout.symbol(c.target);
            let child_path = if path.is_empty() {
                c.name.clone()
            } else {
                format!("{path}.{}", c.name)
            };
            let child_t = t.after(&c.transform);
            let child_device = if let Some(decl) = &sym.device {
                // A nested device inside a device keeps the outermost
                // instance (the paper's primitive symbols contain only
                // geometry; nesting is reported by primitive checks).
                if device.is_some() {
                    device
                } else {
                    let idx = view.devices.len();
                    let terminals = decl
                        .terminals
                        .iter()
                        .filter_map(|term| {
                            let layer = binding.layer(term.layer)?;
                            Some((term.name.clone(), layer, child_t.apply_point(term.position)))
                        })
                        .collect();
                    view.devices.push(DeviceInstance {
                        path: view.strings.intern(&child_path),
                        symbol: c.target,
                        device_type: view.strings.intern(&decl.device_type),
                        class: tech.device(&decl.device_type).map(|a| a.class),
                        checked: decl.checked,
                        terminals,
                        element_ids: Vec::new(),
                        transform: child_t,
                    });
                    Some(idx)
                }
            } else {
                device
            };
            for child in &sym.items {
                walk(
                    layout,
                    tech,
                    binding,
                    child,
                    &child_t,
                    &child_path,
                    child_device,
                    Some(c.target),
                    view,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn view_of(cif: &str) -> (ChipView, Vec<Violation>) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, v) = LayerBinding::bind(&layout, &tech);
        (instantiate(&layout, &tech, &binding), v)
    }

    #[test]
    fn unknown_layer_reported_and_skipped() {
        let (view, v) = view_of("L XX; B 500 500 0 0; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::UnknownLayer { .. }));
        assert!(view.elements.is_empty());
    }

    #[test]
    fn elements_get_nets_and_skeletons() {
        let (view, v) = view_of("L NM; 9N VDD; B 1000 750 0 0; B 100 100 5000 5000; E");
        assert!(v.is_empty());
        assert_eq!(view.elements.len(), 2);
        let rail = view.elements.get(0);
        assert_eq!(view.str(rail.net_key()), "VDD");
        assert!(rail.net_declared());
        assert!(rail.has_skeleton());
        let tiny = view.elements.get(1);
        assert!(!tiny.net_declared());
        assert!(!tiny.has_skeleton()); // under metal min width 750
    }

    #[test]
    fn device_instances_created_per_call() {
        let cif = "
        DS 1; 9 ct; 9D CONTACT_D; 9T A NM 250 250; 9T B ND 250 250;
        L NC; B 500 500 250 250; L ND; B 1000 1000 250 250; L NM; B 1000 1000 250 250; DF;
        C 1 T 0 0; C 1 T 5000 0; E";
        let (view, v) = view_of(cif);
        assert!(v.is_empty());
        assert_eq!(view.devices.len(), 2);
        assert_eq!(view.str(view.devices[0].path), "i0");
        assert_eq!(view.str(view.devices[1].path), "i1");
        assert_eq!(view.devices[0].element_ids.len(), 3);
        // Terminal transformed to chip coords.
        let (name, _, pos) = &view.devices[1].terminals[0];
        assert_eq!(name, "A");
        assert_eq!(*pos, Point::new(5250, 250));
        // Elements tagged with the device.
        for &eid in &view.devices[1].element_ids {
            assert_eq!(view.elements.get(eid).device(), Some(1));
        }
    }

    #[test]
    fn nested_instance_paths() {
        let cif = "
        DS 1; L NM; 9N out; B 1000 750 0 0; DF;
        DS 2; C 1 T 0 0; DF;
        C 2 T 0 0; E";
        let (view, _) = view_of(cif);
        assert_eq!(view.elements.len(), 1);
        assert_eq!(view.str(view.elements.get(0).path()), "i0.i0");
        assert_eq!(view.str(view.elements.get(0).net_key()), "i0.i0.out");
    }

    #[test]
    fn sharded_instantiation_is_byte_identical() {
        // Mixed top level (device calls, nested calls, loose geometry,
        // duplicate shapes whose auto-key ordinals span shards): the
        // stitched parallel view must equal the serial walk exactly —
        // ids, device indices, back-references, net keys.
        let cif = "
        DS 1; 9 ct; 9D CONTACT_D; 9T A NM 250 250; 9T B ND 250 250;
        L NC; B 500 500 250 250; L ND; B 1000 1000 250 250; L NM; B 1000 1000 250 250; DF;
        DS 2; C 1 T 0 0; L NM; B 1000 750 3000 0; DF;
        C 1 T 0 0; C 2 T 8000 0; C 1 T 16000 0;
        L NM; B 1000 750 24000 0; L NM; B 1000 750 24000 0;
        E";
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let serial = instantiate(&layout, &tech, &binding);
        assert!(!serial.elements.is_empty() && !serial.devices.is_empty());
        for workers in [2usize, 3, 8] {
            let par = instantiate_parallel(&layout, &tech, &binding, workers);
            // The whole columnar store must be identical — ids are
            // positions, so column equality covers the id contract.
            assert_eq!(par.elements, serial.elements, "workers={workers}");
            for (a, b) in serial.elements.iter().zip(par.elements.iter()) {
                // Handles come from per-run interners: compare the
                // rendered strings too (the stitch numbering must also
                // be worker-count independent).
                assert_eq!(
                    serial.str(a.net_key()),
                    par.str(b.net_key()),
                    "workers={workers}"
                );
                assert_eq!(serial.str(a.path()), par.str(b.path()), "workers={workers}");
            }
            assert_eq!(par.devices.len(), serial.devices.len());
            for (a, b) in serial.devices.iter().zip(&par.devices) {
                assert_eq!(serial.str(a.path), par.str(b.path), "workers={workers}");
                assert_eq!(a.element_ids, b.element_ids, "workers={workers}");
            }
        }
    }

    #[test]
    fn columns_round_trip_through_boxed_records() {
        // Scatter → gather → scatter must be lossless: materialised
        // boxed records rebuild identical columns, and every accessor
        // agrees with its boxed field.
        let cif = "
        DS 1; 9 ct; 9D CONTACT_D; 9T A NM 250 250;
        L NC; B 500 500 250 250; L NM; B 1000 1000 250 250; DF;
        C 1 T 0 0;
        L NM; 9N out; W 750 0 0 5000 0;
        L NM; B 100 100 9000 9000;
        E";
        let (view, _) = view_of(cif);
        let boxed = view.elements.to_elements();
        let rebuilt = ElementColumns::from_elements(boxed.clone());
        assert_eq!(rebuilt, view.elements);
        for (el, r) in boxed.iter().zip(view.elements.iter()) {
            assert_eq!(el.id, r.id());
            assert_eq!(el.layer, r.layer());
            assert_eq!(el.bbox, r.bbox());
            assert_eq!(el.rects.as_slice(), r.rects());
            assert_eq!(el.net_key, r.net_key());
            assert_eq!(el.net_declared, r.net_declared());
            assert_eq!(el.path, r.path());
            assert_eq!(el.device, r.device());
            assert_eq!(el.source, r.source());
            match &el.skeleton {
                Some(sk) => assert_eq!(sk.scaled_rects(), r.skeleton()),
                None => assert!(!r.has_skeleton()),
            }
        }
    }

    #[test]
    fn interner_dedups_across_the_linear_to_hash_transition() {
        // The table starts index-free (per-shard interners stay tiny)
        // and builds its hash index past LINEAR_LIMIT strings; handles
        // must stay stable and deduplication exact through the switch.
        let mut t = StringInterner::default();
        let first = t.intern("s0");
        let ids: Vec<Istr> = (0..100).map(|i| t.intern(&format!("s{i}"))).collect();
        assert_eq!(ids[0], first, "re-interning must hit the stored copy");
        assert_eq!(t.len(), 100);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(t.get(id), format!("s{i}"));
            assert_eq!(t.lookup(&format!("s{i}")), Some(id));
            assert_eq!(t.intern(&format!("s{i}")), id, "no duplicate entry");
        }
        assert_eq!(t.lookup("never-interned"), None);
        assert_eq!(t.intern_owned("s7".into()), ids[7], "owned hit dedups");
        let owned = t.intern_owned("fresh".into());
        assert_eq!(t.get(owned), "fresh");
        assert!(t.heap_bytes() >= 100 * 2);
    }

    #[test]
    fn interner_compact_remaps_handles_and_keeps_order() {
        // The GridIndex::compact shape: survivors renumber densely in
        // original order, the returned map translates old handles, and
        // evicted handles come back None.
        let mut t = StringInterner::default();
        let ids: Vec<Istr> = (0..50).map(|i| t.intern(&format!("k{i}"))).collect();
        let map = t.compact(|_, s| !s.ends_with('3'));
        assert_eq!(map.len(), 50);
        let mut expect_new = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            if format!("k{i}").ends_with('3') {
                assert_eq!(map[id.index() as usize], None);
            } else {
                let new = map[id.index() as usize].expect("survivor remaps");
                assert_eq!(new.index(), expect_new, "dense, in original order");
                assert_eq!(t.get(new), format!("k{i}"));
                expect_new += 1;
            }
        }
        assert_eq!(t.len(), expect_new as usize);
        // The rebuilt index still dedups: re-interning a survivor hits
        // its new handle, an evicted string re-enters fresh.
        assert_eq!(t.intern("k0"), map[ids[0].index() as usize].unwrap());
        assert_eq!(t.lookup("k3"), None);
        let back = t.intern("k3");
        assert_eq!(back.index(), expect_new);
    }

    #[test]
    fn interner_compact_stale_evicts_by_epoch() {
        // Session shape: one epoch per checked cell. Strings re-interned
        // in recent epochs survive compaction; one-off keys from old
        // epochs are evicted — and the stamps survive the rebuild, so a
        // second compaction keeps ageing correctly.
        let mut t = StringInterner::default();
        t.intern("shared");
        t.intern("old-only");
        t.advance_epoch();
        t.intern("shared");
        t.intern("recent");
        let map = t.compact_stale(0); // keep only the current epoch
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("old-only"), None);
        let shared = t.lookup("shared").expect("recently used survives");
        assert_eq!(map[0], Some(shared));
        assert_eq!(map[1], None);
        assert_eq!(t.get(t.lookup("recent").unwrap()), "recent");
        // Nothing re-interned since: advancing twice ages both out.
        t.advance_epoch();
        t.advance_epoch();
        t.compact_stale(1);
        assert!(t.is_empty());
        assert_eq!(t.epoch(), 3);
    }

    #[test]
    fn class_resolved_from_technology() {
        let cif = "
        DS 1; 9D NMOS_ENH; L NP; B 1500 500 0 0; L ND; B 500 2000 0 0; DF;
        C 1; E";
        let (view, _) = view_of(cif);
        assert_eq!(view.devices[0].class, Some(DeviceClass::MosEnhancement));
        let cif2 = "DS 1; 9D FROB; L NP; B 500 500 0 0; DF; C 1; E";
        let (view2, _) = view_of(cif2);
        assert_eq!(view2.devices[0].class, None);
    }
}
