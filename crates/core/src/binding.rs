//! Binding a parsed layout to a technology, and the instantiated chip view.
//!
//! Stages 3–6 of the pipeline work on *instantiated* elements — but unlike
//! a flat checker, every instantiated element keeps its topology: the
//! symbol it came from, the device instance it belongs to, its net key, and
//! its skeleton. "The information about what symbol the piece of geometry
//! came from is never lost."

use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{Item, LayerRef, Layout, Shape, SymbolId};
use diic_geom::skeleton::Skeleton;
use diic_geom::{Point, Rect, Region, Transform};
use diic_tech::{DeviceClass, LayerId, Technology};

/// Maps layout layer references to technology layers.
#[derive(Debug, Clone)]
pub struct LayerBinding {
    map: Vec<Option<LayerId>>,
}

impl LayerBinding {
    /// Builds the binding; unknown CIF layer names produce violations.
    pub fn bind(layout: &Layout, tech: &Technology) -> (LayerBinding, Vec<Violation>) {
        let mut map = Vec::with_capacity(layout.layer_names().len());
        let mut violations = Vec::new();
        for name in layout.layer_names() {
            let id = tech.layer_by_cif(name);
            if id.is_none() {
                violations.push(Violation {
                    stage: CheckStage::Elements,
                    kind: ViolationKind::UnknownLayer {
                        cif_name: name.clone(),
                    },
                    location: None,
                    context: String::new(),
                });
            }
            map.push(id);
        }
        (LayerBinding { map }, violations)
    }

    /// Resolves a layout layer reference.
    pub fn layer(&self, r: LayerRef) -> Option<LayerId> {
        self.map.get(r.0 as usize).copied().flatten()
    }
}

/// An instantiated element with its topology retained.
#[derive(Debug, Clone)]
pub struct ChipElement {
    /// Index in [`ChipView::elements`].
    pub id: usize,
    /// Technology layer.
    pub layer: LayerId,
    /// Exact covered rectangles in chip coordinates (boxes, Manhattan
    /// wires, rectilinear polygons).
    pub rects: Vec<Rect>,
    /// Bounding box in chip coordinates.
    pub bbox: Rect,
    /// Skeleton for connectivity checking (`None` when the element is
    /// under-width — already a width violation).
    pub skeleton: Option<Skeleton>,
    /// Net key: the declared net qualified by instance path, or a unique
    /// auto key.
    pub net_key: String,
    /// True if the net was declared via `9N` (vs auto-generated).
    pub net_declared: bool,
    /// Instance path of the enclosing scope.
    pub path: String,
    /// Index into [`ChipView::devices`] if the element lives inside a
    /// device symbol instance.
    pub device: Option<usize>,
    /// The symbol definition the element came from (None = top level).
    pub source: Option<SymbolId>,
}

/// An instantiated device (one per call of a device symbol).
#[derive(Debug, Clone)]
pub struct DeviceInstance {
    /// Instance path (dot notation).
    pub path: String,
    /// The device symbol.
    pub symbol: SymbolId,
    /// Declared `9D` type.
    pub device_type: String,
    /// Archetype class if the technology knows the type.
    pub class: Option<DeviceClass>,
    /// Immunity flag (`9C`).
    pub checked: bool,
    /// Terminals in chip coordinates.
    pub terminals: Vec<(String, LayerId, Point)>,
    /// Ids of this instance's elements in [`ChipView::elements`].
    pub element_ids: Vec<usize>,
    /// Placement transform (chip ← symbol).
    pub transform: Transform,
}

/// The instantiated chip: all elements and device instances, topology
/// intact.
#[derive(Debug, Clone, Default)]
pub struct ChipView {
    /// All instantiated elements.
    pub elements: Vec<ChipElement>,
    /// All device instances.
    pub devices: Vec<DeviceInstance>,
    /// Violations discovered during instantiation (unknown layers on
    /// terminals, non-rectilinear polygons treated as bboxes, …).
    pub violations: Vec<Violation>,
}

/// Instantiates the layout against a technology.
///
/// Elements on unknown layers are skipped (the binding already reported
/// them). Device symbols instantiate a [`DeviceInstance`] per call;
/// elements inside them are tagged with it. Serial —
/// [`instantiate_parallel`] with one worker.
pub fn instantiate(layout: &Layout, tech: &Technology, binding: &LayerBinding) -> ChipView {
    instantiate_parallel(layout, tech, binding, 1)
}

/// [`instantiate`] with the per-top-item shard walks spread across
/// `workers` scoped threads — the sharded front end that lets
/// [`ChipView`] construction parallelise like the rest of the pipeline.
///
/// Each top-level item is one shard job: a pure walk of that item into
/// a private [`ChipView`] with shard-local ids. The shards are stitched
/// in item order by offsetting element ids, device indices, and the
/// device → element back-references — exactly the numbering a serial
/// walk produces, so any worker count yields a byte-identical view.
/// Auto net keys are assigned over the stitched element list (they are
/// global: duplicate ordinals may span shards).
pub fn instantiate_parallel(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    workers: usize,
) -> ChipView {
    let (mut view, _) = instantiate_sharded(layout, tech, binding, workers);
    assign_auto_net_keys(&mut view.elements, None);
    view
}

/// The sharded walk behind [`instantiate_parallel`]: builds the view
/// one top-level item at a time on the worker pool and returns, along
/// with the stitched view, the per-item `(elements, devices)` run
/// lengths — the unit of reuse the incremental session's view patching
/// is built on. Auto net keys are **not** assigned here.
pub(crate) fn instantiate_sharded(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    workers: usize,
) -> (ChipView, Vec<(usize, usize)>) {
    let items = layout.top_items();
    let shards: Vec<ChipView> = crate::parallel::run_ordered(items.len(), workers, |k| {
        let mut shard = ChipView::default();
        walk(
            layout,
            tech,
            binding,
            &items[k],
            &Transform::IDENTITY,
            "",
            None,
            None,
            &mut shard,
        );
        shard
    });
    let mut view = ChipView::default();
    let mut runs = Vec::with_capacity(shards.len());
    for mut shard in shards {
        let (e_off, d_off) = (view.elements.len(), view.devices.len());
        runs.push((shard.elements.len(), shard.devices.len()));
        view.violations.append(&mut shard.violations);
        for mut el in shard.elements {
            el.id += e_off;
            if let Some(d) = &mut el.device {
                *d += d_off;
            }
            view.elements.push(el);
        }
        for mut dv in shard.devices {
            for id in &mut dv.element_ids {
                *id += e_off;
            }
            view.devices.push(dv);
        }
    }
    (view, runs)
}

/// Instantiates a single top-level item, appending its elements and
/// device instances to `view` (the incremental checker's entry point for
/// regenerating one dirty item's run). Auto net keys are **not**
/// assigned here — run [`assign_auto_net_keys`] over the assembled
/// element vector afterwards.
pub(crate) fn instantiate_item(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    item: &Item,
    view: &mut ChipView,
) {
    walk(
        layout,
        tech,
        binding,
        item,
        &Transform::IDENTITY,
        "",
        None,
        None,
        view,
    );
}

/// The ordinal-free base of an auto net key: strips a trailing `:<n>`
/// duplicate ordinal. Unambiguous because a base's own last `:` segment
/// is the four comma-joined bbox coordinates — never bare digits.
fn auto_key_base(key: &str) -> &str {
    if let Some(pos) = key.rfind(':') {
        let tail = &key[pos + 1..];
        if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) {
            return &key[..pos];
        }
    }
    key
}

/// Finalises the auto (undeclared) net keys over a finished element
/// list — appending ordinals where exact duplicates share a key base —
/// and returns the ids whose key changed.
///
/// The key is a pure function of the element's *identity* — instance
/// path, layer, and definition-local bounding box (the base the walk
/// stored in `net_key`), with an ordinal disambiguating exact
/// duplicates — never of its position in the element vector. That
/// stability is what lets an edit session reuse the net graph of
/// untouched elements: adding or removing an element elsewhere does not
/// rename every auto net after it (the old scheme's `#e{id}` did), and
/// moving an instance does not rename its internals at all (local
/// coordinates).
///
/// `changed` (when given) marks the elements whose identity may have
/// changed since keys were last assigned — only identity groups with a
/// changed member are re-derived, so an edit session pays for the edit,
/// not for re-formatting every auto key on the chip. The mask must
/// cover every element sharing a (chip) bounding box with changed or
/// removed geometry: duplicate ordinals shift only within one identity
/// group, and duplicates by definition share path, layer, and bbox.
pub(crate) fn assign_auto_net_keys(
    elements: &mut [ChipElement],
    changed: Option<&[bool]>,
) -> Vec<usize> {
    use std::collections::{HashMap, HashSet};
    // Pre-filter: the (layer, chip bbox) cells of changed undeclared
    // elements — a superset of the affected identity groups (exact
    // grouping is by key base below; a spurious match just re-derives
    // an unchanged key).
    let hot: Option<HashSet<(diic_tech::LayerId, Rect)>> = changed.map(|mask| {
        elements
            .iter()
            .filter(|e| !e.net_declared && mask[e.id])
            .map(|e| (e.layer, e.bbox))
            .collect()
    });
    if hot.as_ref().is_some_and(|h| h.is_empty()) {
        return Vec::new();
    }
    let mut ordinals: HashMap<String, u32> = HashMap::new();
    let mut rekeyed = Vec::new();
    for e in elements {
        if e.net_declared {
            continue;
        }
        if let Some(h) = &hot {
            if !h.contains(&(e.layer, e.bbox)) {
                continue;
            }
        }
        let base = auto_key_base(&e.net_key);
        let key = match ordinals.get_mut(base) {
            None => {
                ordinals.insert(base.to_string(), 1);
                None // ordinal 0: the base itself is the key
            }
            Some(n) => {
                let key = format!("{base}:{n}");
                *n += 1;
                Some(key)
            }
        };
        match key {
            None => {
                if e.net_key != auto_key_base(&e.net_key) {
                    let key = auto_key_base(&e.net_key).to_string();
                    rekeyed.push(e.id);
                    e.net_key = key;
                }
            }
            Some(key) => {
                if e.net_key != key {
                    rekeyed.push(e.id);
                    e.net_key = key;
                }
            }
        }
    }
    rekeyed
}

#[allow(clippy::too_many_arguments)]
fn walk(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    item: &Item,
    t: &Transform,
    path: &str,
    device: Option<usize>,
    source: Option<SymbolId>,
    view: &mut ChipView,
) {
    match item {
        Item::Element(e) => {
            let Some(layer) = binding.layer(e.layer) else {
                return; // unknown layer, already reported
            };
            // Auto-key base in *local* (definition) coordinates: stable
            // under instance moves, so dragging a call does not rename
            // its internal nets.
            let local_bbox = e.shape.bbox();
            let shape = e.shape.transformed(t);
            let rects: Vec<Rect> = match &shape {
                Shape::Box(r) => vec![*r],
                Shape::Wire(w) => w.to_rects(),
                Shape::Polygon(p) => match p.to_rects() {
                    Ok(rs) => rs,
                    Err(_) => vec![p.bbox()], // non-rectilinear: bbox cover
                },
            };
            let bbox = shape.bbox();
            let half = tech.layer(layer).half_min_width();
            let skeleton = match &shape {
                Shape::Box(r) => Skeleton::of_rect(r, half),
                Shape::Wire(w) => Skeleton::of_wire(w, half),
                Shape::Polygon(_) => {
                    Skeleton::of_region(&Region::from_rects(rects.iter().copied()), half)
                }
            };
            let id = view.elements.len();
            // Undeclared elements get their key *base* (path, layer and
            // local bbox — never the element's position in the vector);
            // `assign_auto_net_keys` appends ordinals where exact
            // duplicates collide once the element list is complete.
            let (net_key, net_declared) = match &e.net {
                Some(n) if path.is_empty() => (n.clone(), true),
                Some(n) => (format!("{path}.{n}"), true),
                None => (
                    format!(
                        "#{}:{}:{},{},{},{}",
                        path, layer.0, local_bbox.x1, local_bbox.y1, local_bbox.x2, local_bbox.y2
                    ),
                    false,
                ),
            };
            view.elements.push(ChipElement {
                id,
                layer,
                rects,
                bbox,
                skeleton,
                net_key,
                net_declared,
                path: path.to_string(),
                device,
                source,
            });
            if let Some(d) = device {
                view.devices[d].element_ids.push(id);
            }
        }
        Item::Call(c) => {
            let sym = layout.symbol(c.target);
            let child_path = if path.is_empty() {
                c.name.clone()
            } else {
                format!("{path}.{}", c.name)
            };
            let child_t = t.after(&c.transform);
            let child_device = if let Some(decl) = &sym.device {
                // A nested device inside a device keeps the outermost
                // instance (the paper's primitive symbols contain only
                // geometry; nesting is reported by primitive checks).
                if device.is_some() {
                    device
                } else {
                    let idx = view.devices.len();
                    let terminals = decl
                        .terminals
                        .iter()
                        .filter_map(|term| {
                            let layer = binding.layer(term.layer)?;
                            Some((term.name.clone(), layer, child_t.apply_point(term.position)))
                        })
                        .collect();
                    view.devices.push(DeviceInstance {
                        path: child_path.clone(),
                        symbol: c.target,
                        device_type: decl.device_type.clone(),
                        class: tech.device(&decl.device_type).map(|a| a.class),
                        checked: decl.checked,
                        terminals,
                        element_ids: Vec::new(),
                        transform: child_t,
                    });
                    Some(idx)
                }
            } else {
                device
            };
            for child in &sym.items {
                walk(
                    layout,
                    tech,
                    binding,
                    child,
                    &child_t,
                    &child_path,
                    child_device,
                    Some(c.target),
                    view,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn view_of(cif: &str) -> (ChipView, Vec<Violation>) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, v) = LayerBinding::bind(&layout, &tech);
        (instantiate(&layout, &tech, &binding), v)
    }

    #[test]
    fn unknown_layer_reported_and_skipped() {
        let (view, v) = view_of("L XX; B 500 500 0 0; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::UnknownLayer { .. }));
        assert!(view.elements.is_empty());
    }

    #[test]
    fn elements_get_nets_and_skeletons() {
        let (view, v) = view_of("L NM; 9N VDD; B 1000 750 0 0; B 100 100 5000 5000; E");
        assert!(v.is_empty());
        assert_eq!(view.elements.len(), 2);
        let rail = &view.elements[0];
        assert_eq!(rail.net_key, "VDD");
        assert!(rail.net_declared);
        assert!(rail.skeleton.is_some());
        let tiny = &view.elements[1];
        assert!(!tiny.net_declared);
        assert!(tiny.skeleton.is_none()); // under metal min width 750
    }

    #[test]
    fn device_instances_created_per_call() {
        let cif = "
        DS 1; 9 ct; 9D CONTACT_D; 9T A NM 250 250; 9T B ND 250 250;
        L NC; B 500 500 250 250; L ND; B 1000 1000 250 250; L NM; B 1000 1000 250 250; DF;
        C 1 T 0 0; C 1 T 5000 0; E";
        let (view, v) = view_of(cif);
        assert!(v.is_empty());
        assert_eq!(view.devices.len(), 2);
        assert_eq!(view.devices[0].path, "i0");
        assert_eq!(view.devices[1].path, "i1");
        assert_eq!(view.devices[0].element_ids.len(), 3);
        // Terminal transformed to chip coords.
        let (name, _, pos) = &view.devices[1].terminals[0];
        assert_eq!(name, "A");
        assert_eq!(*pos, Point::new(5250, 250));
        // Elements tagged with the device.
        for &eid in &view.devices[1].element_ids {
            assert_eq!(view.elements[eid].device, Some(1));
        }
    }

    #[test]
    fn nested_instance_paths() {
        let cif = "
        DS 1; L NM; 9N out; B 1000 750 0 0; DF;
        DS 2; C 1 T 0 0; DF;
        C 2 T 0 0; E";
        let (view, _) = view_of(cif);
        assert_eq!(view.elements.len(), 1);
        assert_eq!(view.elements[0].path, "i0.i0");
        assert_eq!(view.elements[0].net_key, "i0.i0.out");
    }

    #[test]
    fn sharded_instantiation_is_byte_identical() {
        // Mixed top level (device calls, nested calls, loose geometry,
        // duplicate shapes whose auto-key ordinals span shards): the
        // stitched parallel view must equal the serial walk exactly —
        // ids, device indices, back-references, net keys.
        let cif = "
        DS 1; 9 ct; 9D CONTACT_D; 9T A NM 250 250; 9T B ND 250 250;
        L NC; B 500 500 250 250; L ND; B 1000 1000 250 250; L NM; B 1000 1000 250 250; DF;
        DS 2; C 1 T 0 0; L NM; B 1000 750 3000 0; DF;
        C 1 T 0 0; C 2 T 8000 0; C 1 T 16000 0;
        L NM; B 1000 750 24000 0; L NM; B 1000 750 24000 0;
        E";
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let serial = instantiate(&layout, &tech, &binding);
        assert!(!serial.elements.is_empty() && !serial.devices.is_empty());
        for workers in [2usize, 3, 8] {
            let par = instantiate_parallel(&layout, &tech, &binding, workers);
            assert_eq!(par.elements.len(), serial.elements.len());
            for (a, b) in serial.elements.iter().zip(&par.elements) {
                assert_eq!(a.id, b.id, "workers={workers}");
                assert_eq!(a.net_key, b.net_key, "workers={workers}");
                assert_eq!(a.device, b.device, "workers={workers}");
                assert_eq!(a.bbox, b.bbox, "workers={workers}");
                assert_eq!(a.path, b.path, "workers={workers}");
            }
            assert_eq!(par.devices.len(), serial.devices.len());
            for (a, b) in serial.devices.iter().zip(&par.devices) {
                assert_eq!(a.path, b.path, "workers={workers}");
                assert_eq!(a.element_ids, b.element_ids, "workers={workers}");
            }
        }
    }

    #[test]
    fn class_resolved_from_technology() {
        let cif = "
        DS 1; 9D NMOS_ENH; L NP; B 1500 500 0 0; L ND; B 500 2000 0 0; DF;
        C 1; E";
        let (view, _) = view_of(cif);
        assert_eq!(view.devices[0].class, Some(DeviceClass::MosEnhancement));
        let cif2 = "DS 1; 9D FROB; L NP; B 500 500 0 0; DF; C 1; E";
        let (view2, _) = view_of(cif2);
        assert_eq!(view2.devices[0].class, None);
    }
}
