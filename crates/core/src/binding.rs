//! Binding a parsed layout to a technology, and the instantiated chip view.
//!
//! Stages 3–6 of the pipeline work on *instantiated* elements — but unlike
//! a flat checker, every instantiated element keeps its topology: the
//! symbol it came from, the device instance it belongs to, its net key, and
//! its skeleton. "The information about what symbol the piece of geometry
//! came from is never lost."

use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{Item, LayerRef, Layout, Shape, SymbolId};
use diic_geom::skeleton::Skeleton;
use diic_geom::{Point, Rect, Region, Transform};
use diic_tech::{DeviceClass, LayerId, Technology};

/// Maps layout layer references to technology layers.
#[derive(Debug, Clone)]
pub struct LayerBinding {
    map: Vec<Option<LayerId>>,
}

impl LayerBinding {
    /// Builds the binding; unknown CIF layer names produce violations.
    pub fn bind(layout: &Layout, tech: &Technology) -> (LayerBinding, Vec<Violation>) {
        let mut map = Vec::with_capacity(layout.layer_names().len());
        let mut violations = Vec::new();
        for name in layout.layer_names() {
            let id = tech.layer_by_cif(name);
            if id.is_none() {
                violations.push(Violation {
                    stage: CheckStage::Elements,
                    kind: ViolationKind::UnknownLayer {
                        cif_name: name.clone(),
                    },
                    location: None,
                    context: String::new(),
                });
            }
            map.push(id);
        }
        (LayerBinding { map }, violations)
    }

    /// Resolves a layout layer reference.
    pub fn layer(&self, r: LayerRef) -> Option<LayerId> {
        self.map.get(r.0 as usize).copied().flatten()
    }
}

/// An instantiated element with its topology retained.
#[derive(Debug, Clone)]
pub struct ChipElement {
    /// Index in [`ChipView::elements`].
    pub id: usize,
    /// Technology layer.
    pub layer: LayerId,
    /// Exact covered rectangles in chip coordinates (boxes, Manhattan
    /// wires, rectilinear polygons).
    pub rects: Vec<Rect>,
    /// Bounding box in chip coordinates.
    pub bbox: Rect,
    /// Skeleton for connectivity checking (`None` when the element is
    /// under-width — already a width violation).
    pub skeleton: Option<Skeleton>,
    /// Net key: the declared net qualified by instance path, or a unique
    /// auto key.
    pub net_key: String,
    /// True if the net was declared via `9N` (vs auto-generated).
    pub net_declared: bool,
    /// Instance path of the enclosing scope.
    pub path: String,
    /// Index into [`ChipView::devices`] if the element lives inside a
    /// device symbol instance.
    pub device: Option<usize>,
    /// The symbol definition the element came from (None = top level).
    pub source: Option<SymbolId>,
}

/// An instantiated device (one per call of a device symbol).
#[derive(Debug, Clone)]
pub struct DeviceInstance {
    /// Instance path (dot notation).
    pub path: String,
    /// The device symbol.
    pub symbol: SymbolId,
    /// Declared `9D` type.
    pub device_type: String,
    /// Archetype class if the technology knows the type.
    pub class: Option<DeviceClass>,
    /// Immunity flag (`9C`).
    pub checked: bool,
    /// Terminals in chip coordinates.
    pub terminals: Vec<(String, LayerId, Point)>,
    /// Ids of this instance's elements in [`ChipView::elements`].
    pub element_ids: Vec<usize>,
    /// Placement transform (chip ← symbol).
    pub transform: Transform,
}

/// The instantiated chip: all elements and device instances, topology
/// intact.
#[derive(Debug, Clone, Default)]
pub struct ChipView {
    /// All instantiated elements.
    pub elements: Vec<ChipElement>,
    /// All device instances.
    pub devices: Vec<DeviceInstance>,
    /// Violations discovered during instantiation (unknown layers on
    /// terminals, non-rectilinear polygons treated as bboxes, …).
    pub violations: Vec<Violation>,
}

/// Instantiates the layout against a technology.
///
/// Elements on unknown layers are skipped (the binding already reported
/// them). Device symbols instantiate a [`DeviceInstance`] per call;
/// elements inside them are tagged with it.
pub fn instantiate(layout: &Layout, tech: &Technology, binding: &LayerBinding) -> ChipView {
    let mut view = ChipView::default();
    let t = Transform::IDENTITY;
    for item in layout.top_items() {
        walk(layout, tech, binding, item, &t, "", None, None, &mut view);
    }
    view
}

#[allow(clippy::too_many_arguments)]
fn walk(
    layout: &Layout,
    tech: &Technology,
    binding: &LayerBinding,
    item: &Item,
    t: &Transform,
    path: &str,
    device: Option<usize>,
    source: Option<SymbolId>,
    view: &mut ChipView,
) {
    match item {
        Item::Element(e) => {
            let Some(layer) = binding.layer(e.layer) else {
                return; // unknown layer, already reported
            };
            let shape = e.shape.transformed(t);
            let rects: Vec<Rect> = match &shape {
                Shape::Box(r) => vec![*r],
                Shape::Wire(w) => w.to_rects(),
                Shape::Polygon(p) => match p.to_rects() {
                    Ok(rs) => rs,
                    Err(_) => vec![p.bbox()], // non-rectilinear: bbox cover
                },
            };
            let bbox = shape.bbox();
            let half = tech.layer(layer).half_min_width();
            let skeleton = match &shape {
                Shape::Box(r) => Skeleton::of_rect(r, half),
                Shape::Wire(w) => Skeleton::of_wire(w, half),
                Shape::Polygon(_) => {
                    Skeleton::of_region(&Region::from_rects(rects.iter().copied()), half)
                }
            };
            let id = view.elements.len();
            let (net_key, net_declared) = match &e.net {
                Some(n) if path.is_empty() => (n.clone(), true),
                Some(n) => (format!("{path}.{n}"), true),
                None => (format!("#e{id}"), false),
            };
            view.elements.push(ChipElement {
                id,
                layer,
                rects,
                bbox,
                skeleton,
                net_key,
                net_declared,
                path: path.to_string(),
                device,
                source,
            });
            if let Some(d) = device {
                view.devices[d].element_ids.push(id);
            }
        }
        Item::Call(c) => {
            let sym = layout.symbol(c.target);
            let child_path = if path.is_empty() {
                c.name.clone()
            } else {
                format!("{path}.{}", c.name)
            };
            let child_t = t.after(&c.transform);
            let child_device = if let Some(decl) = &sym.device {
                // A nested device inside a device keeps the outermost
                // instance (the paper's primitive symbols contain only
                // geometry; nesting is reported by primitive checks).
                if device.is_some() {
                    device
                } else {
                    let idx = view.devices.len();
                    let terminals = decl
                        .terminals
                        .iter()
                        .filter_map(|term| {
                            let layer = binding.layer(term.layer)?;
                            Some((term.name.clone(), layer, child_t.apply_point(term.position)))
                        })
                        .collect();
                    view.devices.push(DeviceInstance {
                        path: child_path.clone(),
                        symbol: c.target,
                        device_type: decl.device_type.clone(),
                        class: tech.device(&decl.device_type).map(|a| a.class),
                        checked: decl.checked,
                        terminals,
                        element_ids: Vec::new(),
                        transform: child_t,
                    });
                    Some(idx)
                }
            } else {
                device
            };
            for child in &sym.items {
                walk(
                    layout,
                    tech,
                    binding,
                    child,
                    &child_t,
                    &child_path,
                    child_device,
                    Some(c.target),
                    view,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn view_of(cif: &str) -> (ChipView, Vec<Violation>) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, v) = LayerBinding::bind(&layout, &tech);
        (instantiate(&layout, &tech, &binding), v)
    }

    #[test]
    fn unknown_layer_reported_and_skipped() {
        let (view, v) = view_of("L XX; B 500 500 0 0; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0].kind, ViolationKind::UnknownLayer { .. }));
        assert!(view.elements.is_empty());
    }

    #[test]
    fn elements_get_nets_and_skeletons() {
        let (view, v) = view_of("L NM; 9N VDD; B 1000 750 0 0; B 100 100 5000 5000; E");
        assert!(v.is_empty());
        assert_eq!(view.elements.len(), 2);
        let rail = &view.elements[0];
        assert_eq!(rail.net_key, "VDD");
        assert!(rail.net_declared);
        assert!(rail.skeleton.is_some());
        let tiny = &view.elements[1];
        assert!(!tiny.net_declared);
        assert!(tiny.skeleton.is_none()); // under metal min width 750
    }

    #[test]
    fn device_instances_created_per_call() {
        let cif = "
        DS 1; 9 ct; 9D CONTACT_D; 9T A NM 250 250; 9T B ND 250 250;
        L NC; B 500 500 250 250; L ND; B 1000 1000 250 250; L NM; B 1000 1000 250 250; DF;
        C 1 T 0 0; C 1 T 5000 0; E";
        let (view, v) = view_of(cif);
        assert!(v.is_empty());
        assert_eq!(view.devices.len(), 2);
        assert_eq!(view.devices[0].path, "i0");
        assert_eq!(view.devices[1].path, "i1");
        assert_eq!(view.devices[0].element_ids.len(), 3);
        // Terminal transformed to chip coords.
        let (name, _, pos) = &view.devices[1].terminals[0];
        assert_eq!(name, "A");
        assert_eq!(*pos, Point::new(5250, 250));
        // Elements tagged with the device.
        for &eid in &view.devices[1].element_ids {
            assert_eq!(view.elements[eid].device, Some(1));
        }
    }

    #[test]
    fn nested_instance_paths() {
        let cif = "
        DS 1; L NM; 9N out; B 1000 750 0 0; DF;
        DS 2; C 1 T 0 0; DF;
        C 2 T 0 0; E";
        let (view, _) = view_of(cif);
        assert_eq!(view.elements.len(), 1);
        assert_eq!(view.elements[0].path, "i0.i0");
        assert_eq!(view.elements[0].net_key, "i0.i0.out");
    }

    #[test]
    fn class_resolved_from_technology() {
        let cif = "
        DS 1; 9D NMOS_ENH; L NP; B 1500 500 0 0; L ND; B 500 2000 0 0; DF;
        C 1; E";
        let (view, _) = view_of(cif);
        assert_eq!(view.devices[0].class, Some(DeviceClass::MosEnhancement));
        let cif2 = "DS 1; 9D FROB; L NP; B 500 500 0 0; DF; C 1; E";
        let (view2, _) = view_of(cif2);
        assert_eq!(view2.devices[0].class, None);
    }
}
