//! Shared worker-pool plumbing for every parallel path in the pipeline.
//!
//! The paper's pipeline decomposes into stages whose inner work is pure
//! per work-unit — which is why every parallel hot path in the crate
//! follows one discipline, implemented once here:
//!
//! 1. split the work into a **deterministic, ordered job list**;
//! 2. execute the jobs on a scoped thread pool (work-stealing via an
//!    atomic cursor, so unevenly sized jobs do not idle workers);
//! 3. merge the results **in job order**.
//!
//! Because each job is a pure function of its inputs and the merge is
//! positional, any worker count — including 1 — produces byte-identical
//! output. That invariant is what the differential test oracle
//! (`tests/differential.rs`) checks end to end.
//!
//! The paths that ride this pool, in pipeline order:
//!
//! * **sharded instantiation** — one walk job per top-level item,
//!   stitched with stable ids ([`crate::binding::instantiate_parallel`]);
//! * the **connection stage**'s tile-sharded pair scan
//!   ([`crate::connect::check_connections_parallel`] — each pair owned
//!   by its lower element's tile);
//! * the **netgen union phase** — per-device / per-label draft rows,
//!   interned serially in canonical order
//!   ([`crate::netgen::NetParts::build_parallel`]);
//! * the **interaction stage**'s candidate enumeration (flat tile walk
//!   or hierarchical cache fills) and pair evaluation
//!   ([`crate::interact`]);
//! * the **flat baseline**'s per-layer Boolean work ([`crate::flat`]).
//!
//! The two user-facing knobs ([`crate::CheckOptions::parallelism`] and
//! [`crate::FlatOptions::parallelism`]) are both resolved through the
//! single [`effective_parallelism`] function so their semantics cannot
//! drift apart: `0` means "all available cores", anything else is the
//! literal worker count, and the result is never zero.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count to the effective one.
///
/// `0` is clamped to the number of available cores (at least 1); any
/// other value is taken literally. Both `CheckOptions::parallelism`
/// and `FlatOptions::parallelism` go through this function, so the two
/// knobs agree on what `0` means.
pub fn effective_parallelism(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// The worker count forced by the `CHECK_PARALLELISM` environment
/// variable.
///
/// CI exports `CHECK_PARALLELISM=1` and `CHECK_PARALLELISM=$(nproc)` in
/// separate steps so the serial/parallel equivalence guarantee is
/// exercised on every push; the differential test suite picks its
/// "wide" worker count from this variable.
///
/// # Panics
///
/// Panics when the variable is set (non-empty) but not a number — a
/// silently ignored typo here would quietly un-force the CI matrix and
/// green-light a configuration that was never tested.
pub fn env_parallelism() -> Option<usize> {
    let raw = std::env::var("CHECK_PARALLELISM").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    Some(
        trimmed
            .parse()
            .unwrap_or_else(|_| panic!("CHECK_PARALLELISM must be a worker count, got {raw:?}")),
    )
}

/// Runs `job(0)`, `job(1)`, …, `job(jobs - 1)` across `workers` scoped
/// threads and returns the results **in job order**.
///
/// Jobs are claimed from an atomic cursor (work stealing), so long and
/// short jobs mix freely; determinism comes from the positional merge,
/// not from the execution schedule. With `workers <= 1` (or fewer than
/// two jobs) the jobs run inline on the caller's thread — the parallel
/// and serial paths are the same code.
pub fn run_ordered<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_ordered_with_state(jobs, workers, || (), |(), i| job(i)).0
}

/// [`run_ordered`] with **per-worker mutable state**: each worker calls
/// `init` once, threads the resulting state through every job it claims,
/// and the final states are returned alongside the ordered results.
///
/// The state is a *performance* channel, not a correctness one: work
/// stealing assigns jobs to workers nondeterministically, so a job's
/// output bytes must not depend on what its worker's state accumulated —
/// the state may only carry things that are re-derivable per job (warm
/// caches, scratch buffers, session interners whose handle values never
/// reach rendered output). The library batch driver rides this to keep
/// one long-lived [`crate::binding::StringInterner`] per worker across
/// cells.
pub fn run_ordered_with_state<T, S, I, F>(
    jobs: usize,
    workers: usize,
    init: I,
    job: F,
) -> (Vec<T>, Vec<S>)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if workers <= 1 || jobs < 2 {
        let mut state = init();
        let out = (0..jobs).map(|i| job(&mut state, i)).collect();
        return (out, vec![state]);
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let mut states: Vec<S> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(jobs))
            .map(|_| {
                let (cursor, init, job) = (&cursor, &init, &job);
                s.spawn(move || {
                    let mut state = init();
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        done.push((i, job(&mut state, i)));
                    }
                    (done, state)
                })
            })
            .collect();
        for h in handles {
            // invariant: propagating a worker panic, not creating one —
            // join only fails if the closure itself panicked.
            let (done, state) = h.join().expect("pipeline worker panicked");
            for (i, r) in done {
                slots[i] = Some(r);
            }
            states.push(state);
        }
    });
    let out = slots
        .into_iter()
        // invariant: the shared counter hands each index to exactly
        // one worker, and every worker fills what it claims.
        .map(|r| r.expect("every job index is claimed exactly once"))
        .collect();
    (out, states)
}

/// Runs `job(0)`, …, `job(n - 1)` across the worker pool in contiguous
/// **chunks** and returns the results in index order — the fan-out
/// shape for fine-grained per-item work (e.g. the netgen union phase's
/// per-device draft rows), where one [`run_ordered`] slot per item
/// would drown the work in bookkeeping. A few chunks per worker keep
/// unevenly sized items balanced; like [`run_ordered`], the positional
/// merge makes any worker count byte-identical. (Jobs that carry
/// per-chunk state of their own — the interaction stage's stat-folding
/// chunks — use [`run_ordered`] directly.)
pub fn run_chunked<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n < 2 {
        return (0..n).map(job).collect();
    }
    let chunk = n.div_ceil(workers * 4).max(1);
    let chunks = n.div_ceil(chunk);
    run_ordered(chunks, workers, |k| {
        let lo = k * chunk;
        ((lo..(lo + chunk).min(n)).map(&job)).collect::<Vec<T>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunked_preserves_index_order() {
        let serial: Vec<usize> = run_chunked(103, 1, |i| i * 3);
        for workers in [2usize, 3, 8] {
            assert_eq!(run_chunked(103, workers, |i| i * 3), serial, "{workers}");
        }
        assert!(run_chunked(0, 4, |i| i).is_empty());
        assert_eq!(run_chunked(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_clamps_to_available_cores() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_parallelism(0), cores);
        assert!(effective_parallelism(0) >= 1);
    }

    #[test]
    fn nonzero_taken_literally() {
        assert_eq!(effective_parallelism(1), 1);
        assert_eq!(effective_parallelism(7), 7);
    }

    #[test]
    fn run_ordered_preserves_job_order() {
        let serial: Vec<usize> = run_ordered(100, 1, |i| i * i);
        for workers in [2usize, 3, 8, 64] {
            let parallel = run_ordered(100, workers, |i| i * i);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn run_ordered_uneven_jobs_stay_ordered() {
        // Job i sleeps inversely to its index, so later jobs finish
        // first — the merge must still be positional.
        let out = run_ordered(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 50));
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_handles_empty_and_single() {
        assert!(run_ordered(0, 4, |i| i).is_empty());
        assert_eq!(run_ordered(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn run_ordered_with_state_threads_worker_state() {
        // Every worker counts the jobs it ran; the counts must cover
        // every job exactly once and the results stay positional.
        let (out, states) = run_ordered_with_state(
            50,
            4,
            || 0usize,
            |seen: &mut usize, i| {
                *seen += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(states.iter().sum::<usize>(), 50);
        assert!(states.len() <= 4 && !states.is_empty());
        // Serial fallback: one state, all jobs.
        let (out, states) = run_ordered_with_state(
            3,
            1,
            || 0usize,
            |seen: &mut usize, i| {
                *seen += 1;
                i
            },
        );
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(states, vec![3]);
    }

    #[test]
    fn env_parallelism_parses() {
        // The variable is unset in normal test runs; when CI sets it,
        // the parsed value must round-trip (whitespace tolerated, but
        // garbage panics rather than silently un-forcing the matrix).
        match std::env::var("CHECK_PARALLELISM") {
            Ok(v) if v.trim().is_empty() => assert_eq!(env_parallelism(), None),
            Ok(v) => assert_eq!(env_parallelism(), Some(v.trim().parse().unwrap())),
            Err(_) => assert_eq!(env_parallelism(), None),
        }
    }
}
