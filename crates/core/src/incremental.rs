//! The incremental re-check subsystem: edit sessions, dirty-halo
//! scoping, and report patching.
//!
//! The paper pitches layout verification as part of the *design loop* —
//! designers re-check after every edit, not once at tapeout. A
//! [`CheckSession`] makes that loop cheap: it owns the [`Layout`] and a
//! cached, canonically ordered [`CheckReport`], accepts a typed
//! [`EditSet`] (add / remove / move top-level items, replace a cell
//! definition), and re-checks only the disturbed neighbourhood — yet the
//! patched report is **byte-identical** to a from-scratch run
//! ([`canonical_check`]) on the edited layout.
//!
//! # How the patch stays exact
//!
//! Per edit the session computes a **dirty core**: the union of the
//! old and new footprints of every structurally changed element (edited
//! top-level items; every instance of a replaced definition, found
//! through the call-graph closure). From there:
//!
//! * **cheap global stages re-run in full** — layer binding, element
//!   (per-definition width) checks, primitive-symbol checks, ERC and
//!   net-list comparison. Their violations replace the cached ones
//!   wholesale; they are a small fraction of a full run.
//! * **the chip view is patched** — untouched top-level items keep
//!   their instantiated element/device runs (ids and device indices are
//!   renumbered in place); only dirty items re-instantiate. Auto net
//!   keys are stable functions of element identity (path, layer, bbox),
//!   so reuse does not rename distant nets.
//! * **connections are patched** — a connection verdict is a pure pair
//!   function, and its anchor (the bbox overlap) touches both elements,
//!   so pairs among the *seed set* (dirty elements plus everything
//!   whose bbox touches the dirty core) re-check while every other
//!   pair's cached verdict and merge survive.
//! * **the net graph is patched, the net list reassembled** — net keys
//!   are interned once into stable integer nodes
//!   ([`crate::netgen::NetParts`]); the edit swaps the dirty rows and
//!   re-folds the graph through the same canonical
//!   [`diic_netlist::assemble_netlist`] a full build uses. Cost is
//!   integer union-find plus net construction, not string re-interning.
//! * **net-wide effects are caught by a name diff** — connectivity is
//!   global (one added strap merges two nets chip-wide), so after
//!   reassembly every surviving element whose net's canonical name
//!   changed, and every device whose terminal-net names changed, adds
//!   its footprint to the dirty core. A merge or split always renames
//!   at least one side (the canonical name is the minimum alias), so
//!   every pair whose same-net/relatedness verdict could have flipped
//!   now has a dirty endpoint.
//! * **interactions re-run inside the halo only** — the dirty core is
//!   inflated by the technology's rule reach
//!   ([`crate::interact::max_rule_range`], the same reach that sizes
//!   [`crate::interact::interaction_cell_size`]) and handed to
//!   [`crate::interact::check_interactions_clipped`]. Spacing markers
//!   are tight gap boxes (within the pair's gap of *both* elements), so
//!   cached violations whose marker misses the halo are provably
//!   unchanged and are kept; everything anchored inside the halo is
//!   retracted and re-found fresh. The patched list is re-sorted with
//!   [`crate::report::canonical_sort`], which is the order
//!   [`canonical_check`] reports in — hence byte equality.
//!
//! What is *not* invalidated incrementally: the net list and ERC are
//! recomputed every edit (the graph patch makes that cheap), and
//! per-definition checks re-run in full. `tests/incremental.rs` holds
//! the differential oracle: random edit sequences where the session
//! report must equal a from-scratch check at every step, serial and
//! parallel.
//!
//! # Example
//!
//! ```
//! use diic_core::incremental::{CheckSession, EditSet};
//! use diic_core::CheckOptions;
//! use diic_geom::Rect;
//! use diic_tech::nmos::nmos_technology;
//!
//! let tech = nmos_technology();
//! let layout = diic_cif::parse("L NM; B 2000 750 1000 375; E").unwrap();
//! let options = CheckOptions { erc: false, ..CheckOptions::default() };
//! let mut session = CheckSession::new(layout, &tech, &options);
//! assert!(session.report().violations.is_empty());
//!
//! // Drop a too-close metal stub next to the wire and re-check.
//! let mut edits = EditSet::new();
//! edits.add_box("NM", Rect::new(0, 1250, 2000, 2000), None);
//! session.apply(&edits).unwrap();
//! assert_eq!(session.report().violations.len(), 1);
//! assert_eq!(
//!     session.report().violations,
//!     session.full_check().violations
//! );
//! ```

use crate::binding::{
    assign_auto_net_keys, instantiate_item, instantiate_sharded, ChipView, LayerBinding,
};
use crate::checker::{check, CheckOptions, CheckReport};
use crate::connect::check_connections_among;
use crate::element_checks::check_elements;
use crate::engine::{composition_violations, DiagnosticSink, Sink};
use crate::interact::{check_interactions, check_same_mask, max_rule_range};
use crate::netgen::{element_is_netted, BindIndex, NetParts, NetgenResult};
use crate::primitive_checks::check_primitive_symbols;
use crate::report::{canonical_sort, merge_canonical};
use crate::violations::{CheckStage, Violation};
use diic_cif::{Call, Element, Item, Layout, NetLabel, Shape, SymbolId};
use diic_geom::{Rect, Region, Transform, Vector};
use diic_tech::{LayerId, Technology};
use std::collections::HashSet;

/// One edit against the top level of a layout or its symbol table.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Append a primitive element at top level. The layer is named by
    /// its CIF name (interned on application; unknown names are
    /// reported by layer binding exactly as a full check would).
    AddElement {
        /// CIF layer name (e.g. `NM`).
        cif_layer: String,
        /// The geometry.
        shape: Shape,
        /// Optional declared net (`9N`).
        net: Option<String>,
    },
    /// Instantiate an existing symbol at top level (a new placement of
    /// a cell the layout already defines).
    AddCall {
        /// The symbol to instantiate.
        symbol: SymbolId,
        /// The placement transform.
        transform: Transform,
        /// Instance name (the CIF parser auto-names parsed calls
        /// `i<n>`; edit-added calls pick their own, which becomes the
        /// leading component of the instance's context paths).
        name: String,
    },
    /// Remove the top-level item at this index (element or call; later
    /// items shift down, exactly as in the layout itself).
    RemoveItem {
        /// Index into the current `Layout::top_items`.
        index: usize,
    },
    /// Translate the top-level item at this index (an element's shape,
    /// or a call's placement transform).
    MoveItem {
        /// Index into the current `Layout::top_items`.
        index: usize,
        /// Translation vector.
        by: Vector,
    },
    /// Replace a symbol definition's body items. Every instance of the
    /// symbol (and of symbols that call it, transitively) is
    /// invalidated.
    ReplaceSymbol {
        /// The definition to replace.
        symbol: SymbolId,
        /// The new body.
        items: Vec<Item>,
    },
}

/// An ordered batch of edits, applied sequentially (each edit sees the
/// indices left by the previous one).
#[derive(Debug, Clone, Default)]
pub struct EditSet {
    /// The edits, in application order.
    pub edits: Vec<Edit>,
}

impl EditSet {
    /// An empty edit set.
    pub fn new() -> Self {
        EditSet::default()
    }

    /// True if the set contains no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Convenience: append a box element.
    pub fn add_box(&mut self, cif_layer: &str, rect: Rect, net: Option<&str>) -> &mut Self {
        self.edits.push(Edit::AddElement {
            cif_layer: cif_layer.to_string(),
            shape: Shape::Box(rect),
            net: net.map(str::to_string),
        });
        self
    }

    /// Convenience: append an instance of an existing symbol.
    pub fn add_call(&mut self, symbol: SymbolId, transform: Transform, name: &str) -> &mut Self {
        self.edits.push(Edit::AddCall {
            symbol,
            transform,
            name: name.to_string(),
        });
        self
    }

    /// Convenience: remove a top-level item.
    pub fn remove(&mut self, index: usize) -> &mut Self {
        self.edits.push(Edit::RemoveItem { index });
        self
    }

    /// Convenience: move a top-level item.
    pub fn translate(&mut self, index: usize, dx: i64, dy: i64) -> &mut Self {
        self.edits.push(Edit::MoveItem {
            index,
            by: Vector::new(dx, dy),
        });
        self
    }

    /// Convenience: replace a symbol's body.
    pub fn replace_symbol(&mut self, symbol: SymbolId, items: Vec<Item>) -> &mut Self {
        self.edits.push(Edit::ReplaceSymbol { symbol, items });
        self
    }
}

/// Why an [`EditSet`] was rejected (the session is left untouched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// An item index was out of bounds at its point in the sequence.
    ItemOutOfBounds {
        /// The offending index.
        index: usize,
        /// The top-item count at that point.
        len: usize,
    },
    /// A replaced symbol id does not exist.
    UnknownSymbol(SymbolId),
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::ItemOutOfBounds { index, len } => {
                write!(f, "top-level item index {index} out of bounds (len {len})")
            }
            EditError::UnknownSymbol(s) => write!(f, "unknown symbol id {}", s.0),
        }
    }
}

impl std::error::Error for EditError {}

/// What one [`CheckSession::apply`] did — the observability handle the
/// `fig_incremental` bench and the e17 experiment table read.
#[derive(Debug, Clone, Copy, Default)]
pub struct EditStats {
    /// Top-level items re-instantiated (dirty).
    pub dirty_items: usize,
    /// Elements belonging to dirty items (structurally dirty).
    pub dirty_elements: usize,
    /// Elements whose net changed identity in the name diff.
    pub net_dirty_elements: usize,
    /// Seed elements the scoped connection pass examined.
    pub seed_elements: usize,
    /// Candidate pairs the scoped interaction pass evaluated.
    pub rechecked_pairs: u64,
    /// Cached violations retracted from the report.
    pub retracted: usize,
    /// Fresh violations spliced into the report (patched stages only).
    pub spliced: usize,
    /// True when the edit dirtied so much of the chip that the session
    /// fell back to a full rebuild (still byte-identical — just not
    /// faster than a from-scratch check).
    pub full_rebuild: bool,
    /// True when the edit was *net-neutral* — the patched net graph
    /// proved bit-identical to the cached one (same nodes, edges, and
    /// bindings), so the cached net list was reused without
    /// reassembly. Moving geometry with declared nets, or whole
    /// instances (auto keys are instance-local), typically qualifies.
    pub netlist_reused: bool,
    /// True when this apply compacted the session's persistent spatial
    /// index ([`diic_geom::GridIndex::compact`]) — tombstones from
    /// edit churn had come to outnumber the live elements.
    pub index_compacted: bool,
    /// Wall clock of the view patch (apply + instantiate dirty items).
    pub t_view: std::time::Duration,
    /// Wall clock of the scoped connection pass.
    pub t_conn: std::time::Duration,
    /// Wall clock of the net-graph patch + reassembly + name diff.
    pub t_net: std::time::Duration,
    /// Wall clock of the scoped interaction pass.
    pub t_interact: std::time::Duration,
    /// Wall clock of the full-re-run global stages (binding, elements,
    /// primitives, composition).
    pub t_global: std::time::Duration,
    /// Wall clock of the report retract/splice/sort.
    pub t_patch: std::time::Duration,
}

/// Per-item instantiation run lengths (the unit of view reuse).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ItemRun {
    elems: usize,
    devices: usize,
}

/// A slot in the edited top-item list: where it came from and whether
/// it must re-instantiate.
#[derive(Debug, Clone, Copy)]
struct Slot {
    origin: Option<usize>,
    dirty: bool,
}

/// An element's entry in the session's persistent spatial index: a
/// session-unique tag (the index payload) and the grid handle for
/// removal.
#[derive(Debug, Clone, Copy)]
struct ElemTag {
    tag: u32,
    handle: u32,
}

/// An edit session: a layout under interactive editing with its cached,
/// canonically ordered check report and the artefacts needed to re-check
/// incrementally. See the module docs for the invalidation model.
#[derive(Debug)]
pub struct CheckSession {
    layout: Layout,
    tech: Technology,
    options: CheckOptions,
    halo: i64,
    binding: LayerBinding,
    labels: Vec<(NetLabel, Option<LayerId>)>,
    view: ChipView,
    runs: Vec<ItemRun>,
    merges: Vec<(usize, usize)>,
    parts: NetParts,
    element_net: Vec<Option<diic_netlist::NetId>>,
    device_terminal_nets: Vec<Vec<diic_netlist::NetId>>,
    /// Persistent spatial index over element bboxes (the
    /// [`diic_geom::GridIndex`] incremental-update path): dirty-region
    /// queries cost the neighbourhood, not a whole-chip scan.
    elem_index: diic_geom::GridIndex<u32>,
    elem_tags: Vec<ElemTag>,
    next_tag: u32,
    /// Tag → current element id. Stale (removed) tags keep garbage
    /// values; only live tags — which the index queries return — are
    /// ever read.
    tag_owner: Vec<usize>,
    report: CheckReport,
}

impl CheckSession {
    /// Opens a session: runs a full check and caches every artefact.
    /// The session owns the layout; edits go through
    /// [`CheckSession::apply`].
    pub fn new(layout: Layout, tech: &Technology, options: &CheckOptions) -> CheckSession {
        let tech = tech.clone();
        let options = options.clone();
        let halo = max_rule_range(&tech);

        let (binding, bind_violations) = LayerBinding::bind(&layout, &tech);
        // Sharded instantiation: the per-item walks the session's view
        // patching is built on are exactly the shard jobs, so opening a
        // session parallelises like an engine run.
        let (mut view, run_lens) =
            instantiate_sharded(&layout, &tech, &binding, options.effective_parallelism());
        let runs: Vec<ItemRun> = run_lens
            .into_iter()
            .map(|(elems, devices)| ItemRun { elems, devices })
            .collect();
        assign_auto_net_keys(&mut view.elements, &mut view.strings, None);
        let mut instantiate_violations = std::mem::take(&mut view.violations);
        // The patch path cannot regenerate *clean* items' instantiation
        // violations (it never re-walks them), which is sound today only
        // because the walk produces none. If `ChipView::violations` ever
        // gains a producer, teach the session to cache them per item run
        // before relying on report patching.
        debug_assert!(
            instantiate_violations.is_empty(),
            "instantiate-time violations are not cached per item run yet; \
             CheckSession::apply would silently drop them for clean items"
        );

        let mut elem_index =
            diic_geom::GridIndex::new(crate::interact::interaction_cell_size(&tech));
        let mut elem_tags = Vec::with_capacity(view.elements.len());
        let mut next_tag = 0u32;
        for &bbox in view.elements.bboxes() {
            let tag = next_tag;
            next_tag += 1;
            let handle = elem_index.insert(bbox, tag);
            elem_tags.push(ElemTag { tag, handle });
        }

        // The open-time stages emit through the Sink trait like any
        // engine run; a session just buffers (it must own its canonical
        // report — patching retracts and splices against it).
        let mut sink = DiagnosticSink::new();
        sink.absorb(bind_violations);
        sink.append(&mut instantiate_violations);
        sink.absorb(check_elements(&layout, &tech, &binding));
        let prim = check_primitive_symbols(&layout, &tech, &binding);
        let waived_devices = prim.waived;
        sink.absorb(prim.violations);

        // The session opens with the same parallel connection scan and
        // netgen union phase an engine run uses (both byte-identical to
        // serial); the patch paths below stay serial — they are
        // edit-sized.
        let conn = crate::connect::check_connections_parallel(
            &view,
            &tech,
            options.effective_parallelism(),
        );
        sink.absorb(conn.violations);

        let labels: Vec<(NetLabel, Option<LayerId>)> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();
        let parts = NetParts::build_parallel(
            &mut view,
            &tech,
            &conn.merges,
            &labels,
            options.effective_parallelism(),
        );
        let mut nets = parts.assemble(&view);
        sink.append(&mut nets.violations);

        let interact_options = options.interact_options();
        let (ivs, stats) = check_interactions(&view, &tech, &nets, &layout, &interact_options);
        sink.absorb(ivs);

        sink.absorb(composition_violations(&nets.netlist, &tech, &options));
        let mut violations = sink.into_violations();
        canonical_sort(&mut violations);

        let NetgenResult {
            netlist,
            element_net,
            device_terminal_nets,
            ..
        } = nets;
        let report = CheckReport {
            violations,
            netlist,
            interact_stats: stats,
            timings: Default::default(),
            stage_profile: Vec::new(),
            waived_devices,
            element_count: view.elements.len(),
            device_count: view.devices.len(),
        };

        CheckSession {
            layout,
            tech,
            options,
            halo,
            binding,
            labels,
            view,
            runs,
            merges: conn.merges,
            parts,
            element_net,
            device_terminal_nets,
            elem_index,
            elem_tags,
            next_tag,
            tag_owner: (0..next_tag as usize).collect(),
            report,
        }
    }

    /// The layout in its current (edited) state.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The cached report for the current layout, in canonical order —
    /// violations, net list and counts are byte-identical to
    /// [`CheckSession::full_check`]. `interact_stats` and timings
    /// describe the *incremental* work of the last apply, not a full
    /// run.
    pub fn report(&self) -> &CheckReport {
        &self.report
    }

    /// A from-scratch check of the current layout, canonically sorted —
    /// the oracle [`CheckSession::report`] must match.
    pub fn full_check(&self) -> CheckReport {
        canonical_check(&self.layout, &self.tech, &self.options)
    }

    /// Applies an edit batch and patches the cached report. On error
    /// the session (including the layout) is untouched.
    pub fn apply(&mut self, edits: &EditSet) -> Result<EditStats, EditError> {
        let t_start = std::time::Instant::now();
        // -- Phase A: validate and simulate slot bookkeeping. ---------
        let n_old = self.layout.top_items().len();
        let mut slots: Vec<Slot> = (0..n_old)
            .map(|i| Slot {
                origin: Some(i),
                dirty: false,
            })
            .collect();
        let mut removed_origins: Vec<usize> = Vec::new();
        let mut replaced: Vec<SymbolId> = Vec::new();
        for edit in &edits.edits {
            match edit {
                Edit::AddElement { .. } => slots.push(Slot {
                    origin: None,
                    dirty: true,
                }),
                Edit::AddCall { symbol, .. } => {
                    if symbol.0 as usize >= self.layout.symbols().len() {
                        return Err(EditError::UnknownSymbol(*symbol));
                    }
                    slots.push(Slot {
                        origin: None,
                        dirty: true,
                    });
                }
                Edit::RemoveItem { index } => {
                    if *index >= slots.len() {
                        return Err(EditError::ItemOutOfBounds {
                            index: *index,
                            len: slots.len(),
                        });
                    }
                    if let Some(o) = slots.remove(*index).origin {
                        removed_origins.push(o);
                    }
                }
                Edit::MoveItem { index, .. } => {
                    if *index >= slots.len() {
                        return Err(EditError::ItemOutOfBounds {
                            index: *index,
                            len: slots.len(),
                        });
                    }
                    slots[*index].dirty = true;
                }
                Edit::ReplaceSymbol { symbol, .. } => {
                    if symbol.0 as usize >= self.layout.symbols().len() {
                        return Err(EditError::UnknownSymbol(*symbol));
                    }
                    replaced.push(*symbol);
                }
            }
        }

        // Dirty-symbol closure: a replaced definition invalidates every
        // symbol that (transitively) calls it. Ancestry edges come from
        // *other* symbols' bodies, which no edit touches, so the closure
        // is the same before and after application.
        let dirty_symbols = dirty_symbol_closure(&self.layout, &replaced);
        for slot in &mut slots {
            let Some(o) = slot.origin else { continue };
            if let Item::Call(c) = &self.layout.top_items()[o] {
                if dirty_symbols.contains(&c.target) {
                    slot.dirty = true;
                }
            }
        }

        // Degradation guard: when the edit dirties a large fraction of
        // the chip (a definition instantiated everywhere, a shuffled
        // floorplan), patching costs more than recomputing — the halo
        // covers everything and every cache misses. Rebuild instead;
        // the result is the same canonical report either way.
        let total_old = self.view.elements.len();
        let dirty_old: usize = removed_origins
            .iter()
            .copied()
            .chain(slots.iter().filter(|s| s.dirty).filter_map(|s| s.origin))
            .map(|o| self.runs[o].elems)
            .sum();
        if total_old > 0 && dirty_old * 10 >= total_old * 3 {
            let dirty_items = slots.iter().filter(|s| s.dirty).count();
            apply_layout_edits(&mut self.layout, edits);
            let layout = std::mem::take(&mut self.layout);
            *self = CheckSession::new(layout, &self.tech, &self.options);
            return Ok(EditStats {
                dirty_items,
                dirty_elements: dirty_old,
                full_rebuild: true,
                t_view: t_start.elapsed(),
                ..EditStats::default()
            });
        }

        // -- Phase B: old footprints (from the cached view's runs), and
        // eviction of the stale entries from the persistent element
        // index (survivor entries stay put — their bboxes are
        // unchanged).
        let mut stats = EditStats::default();
        // Removed items never reach the new view's dirty loop below, but
        // their evicted footprints drive retraction and halo re-checks
        // all the same — count them as dirty work.
        stats.dirty_items += removed_origins.len();
        stats.dirty_elements += removed_origins
            .iter()
            .map(|&o| self.runs[o].elems)
            .sum::<usize>();
        let old_offsets = run_offsets(&self.runs);
        let mut foot: Vec<Rect> = Vec::new();
        for o in removed_origins
            .iter()
            .copied()
            .chain(slots.iter().filter(|s| s.dirty).filter_map(|s| s.origin))
        {
            let (e0, _) = old_offsets[o];
            let run_bboxes = &self.view.elements.bboxes()[e0..e0 + self.runs[o].elems];
            for (&bbox, t) in run_bboxes
                .iter()
                .zip(&self.elem_tags[e0..e0 + self.runs[o].elems])
            {
                foot.push(bbox);
                self.elem_index.remove(t.handle);
            }
        }

        // -- Phase C: apply the edits to the layout. ------------------
        apply_layout_edits(&mut self.layout, edits);
        debug_assert_eq!(slots.len(), self.layout.top_items().len());

        // -- Phase D: re-bind layers (the name set may have grown). ---
        let (binding, bind_violations) = LayerBinding::bind(&self.layout, &self.tech);

        // -- Phase E: patch the view, reusing clean runs. -------------
        let mut old_view = std::mem::take(&mut self.view);
        let old_runs = std::mem::take(&mut self.runs);
        let old_tags = std::mem::take(&mut self.elem_tags);
        let old_element_count = old_view.elements.len();
        // The interner survives the patch: it is append-only, so the
        // reused runs' `Istr` handles stay valid and fresh items intern
        // into the same table (stale strings simply stop being
        // referenced — compaction is not worth a whole-view rewrite per
        // edit, and the rebuild fallback resets the table anyway).
        let strings = std::mem::take(&mut old_view.strings);
        // Survivor element runs copy across as whole column runs (ids
        // renumber implicitly to their new positions); devices still
        // move one record at a time for the back-reference rewrite.
        let old_cols = old_view.elements;
        let mut old_devs: Vec<Option<crate::binding::DeviceInstance>> =
            old_view.devices.into_iter().map(Some).collect();

        let mut view = ChipView {
            strings,
            ..ChipView::default()
        };
        let mut tags: Vec<ElemTag> = Vec::with_capacity(old_element_count);
        let mut runs: Vec<ItemRun> = Vec::with_capacity(slots.len());
        let mut old_to_new: Vec<Option<usize>> = vec![None; old_element_count];
        // Device alignment for the terminal-net diff: new device id →
        // old device id (survivor runs only).
        let mut dev_old_of_new: Vec<Option<usize>> = Vec::new();
        for (k, slot) in slots.iter().enumerate() {
            let (e0, d0) = (view.elements.len(), view.devices.len());
            match (slot.dirty, slot.origin) {
                (false, Some(o)) => {
                    let (oe, od) = old_offsets[o];
                    let run = old_runs[o];
                    view.elements.append_run_from(
                        &old_cols,
                        oe..oe + run.elems,
                        d0 as i64 - od as i64,
                    );
                    for t in 0..run.elems {
                        old_to_new[oe + t] = Some(e0 + t);
                        tags.push(old_tags[oe + t]);
                    }
                    for t in 0..run.devices {
                        // invariant: each old device index belongs to
                        // exactly one reused run, so it is taken once.
                        let mut dv = old_devs[od + t].take().expect("runs are disjoint");
                        for id in dv.element_ids.iter_mut() {
                            *id = *id - oe + e0;
                        }
                        dev_old_of_new.push(Some(od + t));
                        view.devices.push(dv);
                    }
                    runs.push(run);
                }
                _ => {
                    stats.dirty_items += 1;
                    instantiate_item(
                        &self.layout,
                        &self.tech,
                        &binding,
                        &self.layout.top_items()[k],
                        &mut view,
                    );
                    for &bbox in &view.elements.bboxes()[e0..] {
                        let tag = self.next_tag;
                        self.next_tag += 1;
                        let handle = self.elem_index.insert(bbox, tag);
                        tags.push(ElemTag { tag, handle });
                    }
                    dev_old_of_new.extend(std::iter::repeat_n(None, view.devices.len() - d0));
                    runs.push(ItemRun {
                        elems: view.elements.len() - e0,
                        devices: view.devices.len() - d0,
                    });
                }
            }
        }
        let mut fresh_instantiate_violations = std::mem::take(&mut view.violations);

        // New footprints + dirty element flags.
        let n_new = view.elements.len();
        let mut dirty_elem = vec![false; n_new];
        let new_offsets = run_offsets(&runs);
        for (slot, (&(e0, _), run)) in slots.iter().zip(new_offsets.iter().zip(&runs)) {
            if slot.dirty {
                let run_bboxes = &view.elements.bboxes()[e0..e0 + run.elems];
                for (&bbox, dirty) in run_bboxes.iter().zip(&mut dirty_elem[e0..e0 + run.elems]) {
                    foot.push(bbox);
                    *dirty = true;
                    stats.dirty_elements += 1;
                }
            }
        }
        let d_conn = Region::from_rects(foot.iter().copied());
        let cell = crate::interact::interaction_cell_size(&self.tech);
        let d_conn_grid = region_grid(&d_conn, cell);
        // Refresh the tag → element-id map (stale tags are never read:
        // the index only returns live ones).
        self.tag_owner.resize(self.next_tag as usize, usize::MAX);
        for (id, t) in tags.iter().enumerate() {
            self.tag_owner[t.tag as usize] = id;
        }
        let tag_owner = &self.tag_owner;
        // Seed set: dirty elements plus everything touching the dirty
        // footprints — the elements whose pair verdicts, duplicate-key
        // ordinals, or bindings could have changed. Queried from the
        // persistent index: cost follows the edit, not the chip.
        let mut seed = dirty_elem.clone();
        for r in d_conn.rects() {
            for &tag in self.elem_index.query(r) {
                seed[tag_owner[tag as usize]] = true;
            }
        }
        // Auto net keys: re-derive only identity groups with a changed
        // member (the seed mask covers removed duplicates — they share
        // their bbox with their survivors by definition).
        let rekeyed = assign_auto_net_keys(&mut view.elements, &mut view.strings, Some(&seed));
        stats.t_view = t_start.elapsed();

        // -- Phase F: patch connections. ------------------------------
        let t0 = std::time::Instant::now();
        let seeds: Vec<usize> = (0..n_new).filter(|&i| seed[i]).collect();
        stats.seed_elements = seeds.len();
        let scoped_conn = check_connections_among(&view, &self.tech, &seeds);
        let mut merges: Vec<(usize, usize)> = self
            .merges
            .iter()
            .filter_map(|&(i, j)| {
                let (Some(ni), Some(nj)) = (old_to_new[i], old_to_new[j]) else {
                    return None;
                };
                // Pairs fully inside the seed set are the scoped pass's
                // verdicts; everything else is provably unchanged.
                (!(seed[ni] && seed[nj])).then_some((ni, nj))
            })
            .collect();
        merges.extend_from_slice(&scoped_conn.merges);
        merges.sort_unstable();
        stats.t_conn = t0.elapsed();

        // -- Phase G: patch the net graph and reassemble. -------------
        let t0 = std::time::Instant::now();
        let old_element_node = std::mem::take(&mut self.parts.element_node);
        let mut element_node: Vec<Option<u32>> = vec![None; n_new];
        for (old, new) in old_to_new.iter().enumerate() {
            if let Some(new) = new {
                element_node[*new] = old_element_node[old];
            }
        }
        // Nodes are the view interner's raw indices, so patching them is
        // a handle read — no string ever re-interns here.
        for &id in &rekeyed {
            // Re-keyed survivors keep their netted-ness; fresh elements
            // are handled below.
            if element_node[id].is_some() {
                element_node[id] = Some(view.elements.net_keys()[id].index());
            }
        }
        for id in 0..n_new {
            if dirty_elem[id] {
                element_node[id] =
                    element_is_netted(&view, id).then(|| view.elements.net_keys()[id].index());
            }
        }
        // Net-neutral fast-path candidate: an edit that provably leaves
        // the net graph bit-identical (same item structure, no re-keyed
        // elements, every dirty element kept its node, and — checked
        // below — identical connection edges and device/label rows)
        // reuses the cached net list instead of reassembling it. A
        // moved instance (auto keys are instance-local) or a dragged
        // declared-net wire in free space is the common hit.
        let aligned = slots.len() == old_runs.len()
            && slots.iter().enumerate().all(|(i, s)| s.origin == Some(i))
            && runs == old_runs;
        let mut net_neutral = aligned
            && rekeyed.is_empty()
            && (0..n_new)
                .filter(|&i| dirty_elem[i])
                .all(|i| element_node[i] == old_element_node[i]);
        self.parts.element_node = element_node;
        let old_conn_edges = net_neutral.then(|| self.parts.conn_edges.clone());
        self.parts.set_conn_edges(&merges);
        if let Some(old_edges) = &old_conn_edges {
            net_neutral &= *old_edges == self.parts.conn_edges;
        }

        // Rebinding region: geometry changes plus re-keyed elements
        // (their interned node changed even though nothing moved). With
        // no surviving re-keys it is exactly the connection dirty
        // region, whose grid already exists.
        let d_bind_grid_wide = rekeyed.iter().any(|&id| !dirty_elem[id]).then(|| {
            let mut rects = foot.clone();
            rects.extend(rekeyed.iter().map(|&id| view.elements.bboxes()[id]));
            region_grid(&Region::from_rects(rects), cell)
        });
        let d_bind_grid = d_bind_grid_wide.as_ref().unwrap_or(&d_conn_grid);
        let rekeyed_flags = {
            let mut f = vec![false; n_new];
            for &id in &rekeyed {
                f[id] = true;
            }
            f
        };

        // Decide which devices and labels re-bind. A binding (point →
        // covering elements) can only have changed if geometry inside
        // the point's bbox changed — i.e. the point touches `d_bind`;
        // a device also re-rows when one of its own elements was
        // re-keyed (its join/bind edges reference the stale node).
        let point_rect = |p: diic_geom::Point| Rect::new(p.x, p.y, p.x, p.y);
        let rerow: Vec<bool> = (0..view.devices.len())
            .map(|di| {
                let dev = &view.devices[di];
                dev_old_of_new[di].is_none()
                    || dev.element_ids.iter().any(|&eid| rekeyed_flags[eid])
                    || dev
                        .terminals
                        .iter()
                        .any(|(_, _, p)| d_bind_grid.touches_any(&point_rect(*p)))
            })
            .collect();
        let relabel: Vec<bool> = self
            .labels
            .iter()
            .map(|(label, _)| d_bind_grid.touches_any(&point_rect(label.position)))
            .collect();

        // The scoped bind index must be complete at **every** re-bound
        // point — a device re-rows all of its terminals even when only
        // one sits in the dirty region, so the scope is the union of
        // the re-bound points themselves (an element can only bind if
        // its bbox covers the point).
        let bind: Option<BindIndex> = if rerow.iter().any(|&b| b) || relabel.iter().any(|&b| b) {
            let mut pts: Vec<Rect> = Vec::new();
            for (di, &r) in rerow.iter().enumerate() {
                if r {
                    for (_, _, p) in &view.devices[di].terminals {
                        // 1-unit pad: Region drops zero-area rects.
                        pts.push(Rect::new(p.x - 1, p.y - 1, p.x + 1, p.y + 1));
                    }
                }
            }
            for ((label, _), &r) in self.labels.iter().zip(&relabel) {
                if r {
                    let p = label.position;
                    pts.push(Rect::new(p.x - 1, p.y - 1, p.x + 1, p.y + 1));
                }
            }
            let mut ids: Vec<usize> = Vec::new();
            for r in Region::from_rects(pts).rects() {
                ids.extend(
                    self.elem_index
                        .query(r)
                        .into_iter()
                        .map(|&tag| tag_owner[tag as usize]),
                );
            }
            ids.sort_unstable();
            ids.dedup();
            ids.retain(|&id| element_is_netted(&view, id));
            Some(BindIndex::build_among(&view, &self.tech, &ids))
        } else {
            None
        };

        // Device rows: reuse survivors, recompute the rest.
        let mut old_rows: Vec<Option<crate::netgen::DeviceParts>> =
            std::mem::take(&mut self.parts.devices)
                .into_iter()
                .map(Some)
                .collect();
        let mut new_rows: Vec<crate::netgen::DeviceParts> = Vec::with_capacity(view.devices.len());
        for di in 0..view.devices.len() {
            let reusable = if rerow[di] {
                None
            } else {
                dev_old_of_new[di].and_then(|od| old_rows[od].take())
            };
            match reusable {
                Some(row) => new_rows.push(row),
                None => {
                    // invariant: the bind index is built up front
                    // whenever any row is marked for re-derivation.
                    let b = bind
                        .as_ref()
                        .expect("bind index built when anything re-rows");
                    let row = self.parts.device_parts(&mut view, di, b);
                    if net_neutral {
                        // Under `aligned`, device di corresponds to old
                        // device di.
                        net_neutral = old_rows
                            .get(di)
                            .and_then(|r| r.as_ref())
                            .is_some_and(|old| *old == row);
                    }
                    new_rows.push(row);
                }
            }
        }
        self.parts.devices = new_rows;

        // Label rows: re-bind those whose point sits in the rebinding
        // region.
        for (li, (label, layer)) in self.labels.iter().enumerate() {
            if relabel[li] {
                // invariant: same up-front construction as the device
                // rows — relabel[li] implies the index exists.
                let b = bind
                    .as_ref()
                    .expect("bind index built when anything re-binds");
                let row = self.parts.label_parts(&mut view, label, *layer, b);
                net_neutral &= self.parts.labels[li] == row;
                self.parts.labels[li] = row;
            }
        }

        let nets_new = if net_neutral {
            stats.netlist_reused = true;
            NetgenResult {
                netlist: std::mem::take(&mut self.report.netlist),
                element_net: std::mem::take(&mut self.element_net),
                device_terminal_nets: std::mem::take(&mut self.device_terminal_nets),
                violations: Vec::new(),
            }
        } else {
            self.parts.assemble(&view)
        };

        // -- Phase H: net-identity diff extends the dirty core. -------
        let mut int_foot = foot;
        if !net_neutral {
            let old_name = |id: Option<diic_netlist::NetId>| -> Option<&str> {
                id.map(|id| self.report.netlist.net(id).name.as_str())
            };
            let new_name = |id: Option<diic_netlist::NetId>| -> Option<&str> {
                id.map(|id| nets_new.netlist.net(id).name.as_str())
            };
            for (old, new) in old_to_new.iter().enumerate() {
                let Some(new) = *new else { continue };
                if old_name(self.element_net[old]) != new_name(nets_new.element_net[new]) {
                    int_foot.push(view.elements.bboxes()[new]);
                    stats.net_dirty_elements += 1;
                }
            }
            for (di, old_di) in dev_old_of_new.iter().enumerate() {
                let Some(old_di) = *old_di else { continue };
                let old_terms = &self.device_terminal_nets[old_di];
                let new_terms = &nets_new.device_terminal_nets[di];
                let same = old_terms.len() == new_terms.len()
                    && old_terms
                        .iter()
                        .zip(new_terms)
                        .all(|(&o, &n)| old_name(Some(o)) == new_name(Some(n)));
                if !same {
                    for &eid in &view.devices[di].element_ids {
                        int_foot.push(view.elements.bboxes()[eid]);
                    }
                }
            }
        }
        let d_halo = Region::from_rects(int_foot).inflate(self.halo);
        // One grid serves both the scoped search's marker filter and
        // Phase K's retraction predicate — they must agree bit for bit.
        let d_halo_grid = region_grid(&d_halo, cell);
        stats.t_net = t0.elapsed();

        // -- Phase I: scoped interactions inside the halo. ------------
        let t0 = std::time::Instant::now();
        let interact_options = self.options.interact_options();
        // Candidate elements (one rule reach around the halo) from the
        // persistent index: bbox ⊕ reach touches the halo ⇔ bbox
        // touches a halo rect ⊕ reach.
        let mut halo_ids: Vec<usize> = Vec::new();
        for r in d_halo.rects() {
            if let Some(q) = r.inflate(self.halo) {
                halo_ids.extend(
                    self.elem_index
                        .query(&q)
                        .into_iter()
                        .map(|&tag| tag_owner[tag as usize]),
                );
            }
        }
        halo_ids.sort_unstable();
        halo_ids.dedup();
        let (ivs, istats) = crate::interact::check_interactions_among_clipped(
            &view,
            &self.tech,
            &nets_new,
            &interact_options,
            &halo_ids,
            &d_halo_grid,
        );
        stats.rechecked_pairs = istats.candidate_pairs;
        stats.t_interact = t0.elapsed();

        // -- Phase J: global stages re-run in full, emitted through the
        // Sink trait like any engine run. -----------------------------
        let t0 = std::time::Instant::now();
        let mut fresh_sink = DiagnosticSink::new();
        fresh_sink.absorb(bind_violations);
        fresh_sink.append(&mut fresh_instantiate_violations);
        fresh_sink.absorb(check_elements(&self.layout, &self.tech, &binding));
        let prim = check_primitive_symbols(&self.layout, &self.tech, &binding);
        let waived_devices = prim.waived;
        fresh_sink.absorb(prim.violations);
        fresh_sink.absorb(nets_new.violations.to_vec());
        fresh_sink.absorb(composition_violations(
            &nets_new.netlist,
            &self.tech,
            &self.options,
        ));
        stats.t_global = t0.elapsed();

        // -- Phase K: patch the report by merge-splice. ---------------
        let t0 = std::time::Instant::now();
        let anchored_in = |v: &Violation, grid: &diic_geom::GridIndex<()>| -> bool {
            v.location.is_none_or(|l| grid.touches_any(&l))
        };
        // The kept violations are a subsequence of the cached canonical
        // report, hence already canonically sorted.
        let mut kept: Vec<Violation> = Vec::with_capacity(self.report.violations.len());
        for v in &self.report.violations {
            let keep = match v.stage {
                CheckStage::Connections => !anchored_in(v, &d_conn_grid),
                // Mask odd cycles are a global (conflict-graph) verdict:
                // an edit anywhere can open or close a cycle whose
                // witness marker lies far outside the halo, so they are
                // always retracted and recomputed from scratch below.
                CheckStage::Interactions => {
                    !matches!(
                        v.kind,
                        crate::violations::ViolationKind::MaskOddCycle { .. }
                    ) && !anchored_in(v, &d_halo_grid)
                }
                _ => false, // replaced wholesale by the fresh global runs
            };
            if keep {
                kept.push(v.clone());
            }
        }
        stats.retracted = self.report.violations.len() - kept.len();
        fresh_sink.absorb(
            scoped_conn
                .violations
                .into_iter()
                .filter(|v| anchored_in(v, &d_conn_grid))
                .collect(),
        );
        fresh_sink.absorb(ivs);
        // Global recompute of the same-mask conflict graph (the scoped
        // interaction pass above discards its clip-local edges): free
        // when the technology declares no same_mask rules.
        fresh_sink.absorb(check_same_mask(&view, &self.tech, &interact_options));
        let mut fresh = fresh_sink.into_violations();
        stats.spliced = fresh.len();
        // Only the fresh side pays a sort; the combined list is a
        // linear merge of the two sorted halves instead of re-sorting
        // everything each edit.
        canonical_sort(&mut fresh);
        #[cfg(debug_assertions)]
        let sort_oracle = {
            let mut all = kept.clone();
            all.extend(fresh.iter().cloned());
            canonical_sort(&mut all);
            all
        };
        let violations = merge_canonical(kept, fresh);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            violations, sort_oracle,
            "merge-splice diverged from canonical_sort"
        );
        stats.t_patch = t0.elapsed();

        // -- Phase L: commit. -----------------------------------------
        self.binding = binding;
        self.view = view;
        self.runs = runs;
        self.elem_tags = tags;
        self.merges = merges;
        let NetgenResult {
            netlist,
            element_net,
            device_terminal_nets,
            ..
        } = nets_new;
        self.element_net = element_net;
        self.device_terminal_nets = device_terminal_nets;
        self.report = CheckReport {
            violations,
            netlist,
            interact_stats: istats,
            timings: Default::default(),
            stage_profile: Vec::new(),
            waived_devices,
            element_count: self.view.elements.len(),
            device_count: self.view.devices.len(),
        };

        // -- Phase M: compact the spatial index after heavy churn. ----
        // Tombstones and cell bookkeeping grow monotonically under
        // edits; once the dead slots outnumber the live elements (with
        // a floor so small sessions never bother), rebuild the index
        // and remap the retained handles. Queries return identical
        // results before and after, so no downstream state is touched.
        if self.elem_index.tombstones() > self.elem_index.len().max(64) {
            stats.index_compacted = self.compact_spatial_index();
        }
        Ok(stats)
    }

    /// Rebuilds the spatial index without its tombstones and remaps
    /// the retained handles. True if anything was dropped.
    fn compact_spatial_index(&mut self) -> bool {
        if self.elem_index.tombstones() == 0 {
            return false;
        }
        let remap = self.elem_index.compact();
        for t in &mut self.elem_tags {
            // invariant: compaction only drops tombstoned handles,
            // and every tag references a live element.
            t.handle = remap[t.handle as usize].expect("live elements keep live handles");
        }
        true
    }

    /// Streams the cached canonical report through any
    /// [`Sink`] — pair it with a
    /// [`StreamingSink`](crate::engine::StreamingSink) to export a
    /// session's report without materialising a second copy, or with a
    /// [`SpillingSink`](crate::engine::SpillingSink) to bound even the
    /// export's sort buffer when the report outgrows RAM. (The
    /// session keeps its own canonical buffer: report patching retracts
    /// and splices against it.)
    pub fn emit_report(&self, sink: &mut dyn Sink) {
        for v in &self.report.violations {
            sink.push(v.clone());
        }
    }

    /// The options the session checks under.
    pub fn options(&self) -> &CheckOptions {
        &self.options
    }

    /// The technology the session checks against.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// An estimate of the session's resident heap, in bytes: the
    /// columnar element store, the string table, device instances, the
    /// persistent net graph, the cached canonical report, and the
    /// spatial-index bookkeeping. Payload bytes, not allocator-exact —
    /// the number a session *pool* budgets and evicts against (and the
    /// denominator of the e21 sessions-per-GB figure).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::{size_of, size_of_val};
        let elements = self.view.elements.heap_bytes();
        let strings = self.view.strings.heap_bytes();
        let devices: usize = self
            .view
            .devices
            .iter()
            .map(|d| {
                size_of_val(d)
                    + d.terminals.len()
                        * size_of::<(String, diic_tech::LayerId, diic_geom::Point)>()
                    + d.element_ids.len() * size_of::<usize>()
            })
            .sum();
        let graph = self.parts.element_node.len() * size_of::<Option<u32>>()
            + self.parts.conn_edges.len() * size_of::<(u32, u32)>()
            + self
                .parts
                .devices
                .iter()
                .map(|d| {
                    size_of_val(d)
                        + d.terms.iter().map(|(t, _)| t.len() + 28).sum::<usize>()
                        + d.edges.len() * size_of::<(u32, u32)>()
                })
                .sum::<usize>()
            + self
                .parts
                .labels
                .iter()
                .map(|l| size_of_val(l) + l.edges.len() * size_of::<(u32, u32)>())
                .sum::<usize>();
        let report: usize = self
            .report
            .violations
            .iter()
            .map(|v| size_of_val(v) + v.context.len())
            .sum();
        let index = self.elem_tags.len() * (size_of::<ElemTag>() + size_of::<(Rect, u32)>());
        elements + strings + devices + graph + report + index
    }

    /// Compacts the session's long-lived memory in place: rebuilds the
    /// spatial index without tombstones ([`diic_geom::GridIndex::compact`])
    /// and evicts interner strings orphaned by edit churn
    /// ([`crate::binding::StringInterner::compact`] — removed elements
    /// and replaced definitions leave dead paths and net keys behind),
    /// remapping every live handle: the element columns, the device
    /// instances, and the net graph's node indices
    /// ([`NetParts::remap_strings`]). The session pool fires this on
    /// eviction pressure; rendered reports before and after are
    /// byte-identical (`service_sessions_survive_compaction` in
    /// `tests/api.rs` and [`mod@self`]'s own unit test pin it).
    pub fn compact_memory(&mut self) -> SessionCompaction {
        let index_compacted = self.compact_spatial_index();
        let strings_before = self.view.strings.len();
        let bytes_before = self.view.strings.heap_bytes();

        // The keep set: every handle the view or the net graph still
        // references. Everything else is churn garbage.
        let mut keep = vec![false; strings_before];
        let mut mark = |index: u32| keep[index as usize] = true;
        for h in self.view.elements.net_keys() {
            mark(h.index());
        }
        for h in self.view.elements.paths() {
            mark(h.index());
        }
        for d in &self.view.devices {
            mark(d.path.index());
            mark(d.device_type.index());
        }
        for node in self.parts.element_node.iter().flatten() {
            mark(*node);
        }
        for (a, b) in &self.parts.conn_edges {
            mark(*a);
            mark(*b);
        }
        for d in &self.parts.devices {
            for (_, node) in &d.terms {
                mark(*node);
            }
            for (a, b) in &d.edges {
                mark(*a);
                mark(*b);
            }
        }
        for l in &self.parts.labels {
            if let Some(node) = l.node {
                mark(node);
            }
            for (a, b) in &l.edges {
                mark(*a);
                mark(*b);
            }
        }

        let remap = self.view.strings.compact(|id, _| keep[id.index() as usize]);
        self.view.elements.remap_strings(&remap);
        for d in &mut self.view.devices {
            // invariant: device handles were marked above.
            d.path = remap[d.path.index() as usize].expect("device path survives compaction");
            d.device_type =
                remap[d.device_type.index() as usize].expect("device type survives compaction");
        }
        self.parts.remap_strings(&remap);

        SessionCompaction {
            index_compacted,
            strings_evicted: strings_before - self.view.strings.len(),
            string_bytes_freed: bytes_before.saturating_sub(self.view.strings.heap_bytes()),
        }
    }
}

/// What one [`CheckSession::compact_memory`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCompaction {
    /// True if the spatial index had tombstones to drop.
    pub index_compacted: bool,
    /// Interner strings evicted as unreferenced.
    pub strings_evicted: usize,
    /// Interner heap bytes freed by the eviction.
    pub string_bytes_freed: usize,
}

/// A from-scratch [`check`] with the violations brought into canonical
/// order — the oracle an incremental session's patched report must equal
/// byte for byte.
pub fn canonical_check(layout: &Layout, tech: &Technology, options: &CheckOptions) -> CheckReport {
    let mut report = check(layout, tech, options);
    canonical_sort(&mut report.violations);
    report
}

/// Applies an edit batch to a layout (indices must already be
/// validated).
fn apply_layout_edits(layout: &mut Layout, edits: &EditSet) {
    for edit in &edits.edits {
        match edit {
            Edit::AddElement {
                cif_layer,
                shape,
                net,
            } => {
                let layer = layout.intern_layer(cif_layer);
                layout.push_top(Item::Element(Element {
                    layer,
                    shape: shape.clone(),
                    net: net.clone(),
                }));
            }
            Edit::AddCall {
                symbol,
                transform,
                name,
            } => {
                layout.push_top(Item::Call(Call {
                    target: *symbol,
                    transform: *transform,
                    name: name.clone(),
                }));
            }
            Edit::RemoveItem { index } => {
                layout.remove_top(*index);
            }
            Edit::MoveItem { index, by } => {
                let t = Transform::translate(*by);
                match layout.top_item_mut(*index) {
                    Item::Element(el) => el.shape = el.shape.transformed(&t),
                    Item::Call(c) => c.transform = t.after(&c.transform),
                }
            }
            Edit::ReplaceSymbol { symbol, items } => {
                layout.symbol_mut(*symbol).items = items.clone();
            }
        }
    }
}

/// A uniform grid over a region's rects, for fast "does this bbox touch
/// the dirty region" predicates (a whole-chip dirty region can hold
/// thousands of rects; the linear scan in [`Region::touches_rect`] is
/// the wrong tool for per-element loops).
fn region_grid(region: &Region, cell: i64) -> diic_geom::GridIndex<()> {
    let mut grid = diic_geom::GridIndex::new(cell);
    for r in region.rects() {
        grid.insert(*r, ());
    }
    grid
}

/// Prefix sums of the per-item runs: `(element_start, device_start)`.
fn run_offsets(runs: &[ItemRun]) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(runs.len());
    let (mut e, mut d) = (0usize, 0usize);
    for r in runs {
        out.push((e, d));
        e += r.elems;
        d += r.devices;
    }
    out
}

/// The replaced symbols plus everything that transitively calls them.
fn dirty_symbol_closure(layout: &Layout, replaced: &[SymbolId]) -> HashSet<SymbolId> {
    let mut callers: Vec<Vec<SymbolId>> = vec![Vec::new(); layout.symbols().len()];
    for (si, sym) in layout.symbols().iter().enumerate() {
        for call in sym.calls() {
            callers[call.target.0 as usize].push(SymbolId(si as u32));
        }
    }
    let mut dirty: HashSet<SymbolId> = HashSet::new();
    let mut queue: Vec<SymbolId> = replaced.to_vec();
    while let Some(s) = queue.pop() {
        if dirty.insert(s) {
            queue.extend(callers[s.0 as usize].iter().copied());
        }
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn options() -> CheckOptions {
        CheckOptions {
            erc: false,
            ..CheckOptions::default()
        }
    }

    fn assert_matches_full(session: &CheckSession) {
        let full = session.full_check();
        assert_eq!(
            session.report().violations,
            full.violations,
            "patched report diverged from from-scratch check"
        );
        assert_eq!(session.report().netlist, full.netlist);
        assert_eq!(session.report().element_count, full.element_count);
        assert_eq!(session.report().device_count, full.device_count);
        assert_eq!(session.report().waived_devices, full.waived_devices);
    }

    #[test]
    fn empty_edit_set_changes_nothing() {
        let layout = parse("L NM; B 2000 750 1000 375; B 2000 750 1000 1625; E").unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        let before = session.report().violations.clone();
        let stats = session.apply(&EditSet::new()).unwrap();
        assert_eq!(stats.dirty_items, 0);
        assert_eq!(stats.retracted, 0);
        assert_eq!(session.report().violations, before);
        assert_matches_full(&session);
    }

    #[test]
    fn add_then_remove_roundtrips() {
        let layout = parse("L NM; B 2000 750 1000 375; E").unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert!(session.report().violations.is_empty());

        let mut add = EditSet::new();
        add.add_box("NM", Rect::new(0, 1250, 2000, 2000), None); // 500 gap, rule 750
        session.apply(&add).unwrap();
        assert_eq!(session.report().violations.len(), 1);
        assert_matches_full(&session);

        let mut remove = EditSet::new();
        remove.remove(1);
        session.apply(&remove).unwrap();
        assert!(
            session.report().violations.is_empty(),
            "{:?}",
            session.report().violations
        );
        assert_matches_full(&session);
    }

    #[test]
    fn move_element_relocates_violation() {
        let layout = parse("L NM; B 2000 750 1000 375; B 2000 750 1000 1625; E").unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert_eq!(session.report().violations.len(), 1); // 500 gap

        let mut away = EditSet::new();
        away.translate(1, 0, 5000);
        session.apply(&away).unwrap();
        assert!(session.report().violations.is_empty());
        assert_matches_full(&session);

        let mut back = EditSet::new();
        back.translate(1, 0, -5000);
        session.apply(&back).unwrap();
        assert_eq!(session.report().violations.len(), 1);
        assert_matches_full(&session);
    }

    #[test]
    fn out_of_bounds_edit_leaves_session_untouched() {
        let layout = parse("L NM; B 2000 750 1000 375; E").unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        let before = session.report().violations.clone();
        let mut bad = EditSet::new();
        bad.remove(7);
        let err = session.apply(&bad).unwrap_err();
        assert_eq!(err, EditError::ItemOutOfBounds { index: 7, len: 1 });
        assert_eq!(session.report().violations, before);
        assert_matches_full(&session);
    }

    #[test]
    fn replace_symbol_invalidates_instances() {
        let layout = parse(
            "DS 1; L NM; B 2000 750 1000 375; DF;
             C 1 T 0 0; C 1 T 6000 0; E",
        )
        .unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert!(session.report().violations.is_empty());

        // New body: two wires 500 apart inside the definition — every
        // instance now carries an internal spacing violation.
        let sym = session.layout().symbol_by_cif_id(1).unwrap();
        let broken = parse("DS 9; L NM; B 2000 750 1000 375; B 2000 750 1000 1625; DF; E").unwrap();
        let body = broken.symbols()[0].items.clone();
        let mut edits = EditSet::new();
        edits.replace_symbol(sym, body);
        session.apply(&edits).unwrap();
        assert_eq!(session.report().violations.len(), 2, "one per instance");
        assert_matches_full(&session);
    }

    #[test]
    fn added_call_is_instantiated_and_checked() {
        let layout = parse("DS 1; L NM; B 2000 750 1000 375; DF; C 1 T 0 0; E").unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert!(session.report().violations.is_empty());

        // A second placement 1250 above the first: the two instances'
        // wires end up 500 apart (rule 750) — cross-instance violation.
        let sym = session.layout().symbol_by_cif_id(1).unwrap();
        let mut edits = EditSet::new();
        edits.add_call(sym, Transform::translate(Vector::new(0, 1250)), "added");
        session.apply(&edits).unwrap();
        assert_eq!(
            session.report().violations.len(),
            1,
            "{:?}",
            session.report().violations
        );
        assert_matches_full(&session);

        // The added instance behaves like any other item: move it away
        // and the violation disappears.
        let mut away = EditSet::new();
        away.translate(1, 0, 8000);
        session.apply(&away).unwrap();
        assert!(session.report().violations.is_empty());
        assert_matches_full(&session);
    }

    #[test]
    fn add_call_unknown_symbol_rejected() {
        let layout = parse("DS 1; L NM; B 2000 750 1000 375; DF; C 1 T 0 0; E").unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        let before = session.report().violations.clone();
        let mut bad = EditSet::new();
        bad.add_call(SymbolId(99), Transform::IDENTITY, "x");
        let err = session.apply(&bad).unwrap_err();
        assert_eq!(err, EditError::UnknownSymbol(SymbolId(99)));
        assert_eq!(session.report().violations, before);
        assert_matches_full(&session);
    }

    #[test]
    fn moved_call_is_rechecked() {
        let layout = parse(
            "DS 1; L NM; B 2000 750 1000 375; DF;
             C 1 T 0 0; C 1 T 6000 0; E",
        )
        .unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert!(session.report().violations.is_empty());
        // Slide the second instance next to the first: cross-instance
        // metal spacing violation.
        let mut edits = EditSet::new();
        edits.translate(1, -3500, 0); // gap becomes 500
        session.apply(&edits).unwrap();
        assert_eq!(session.report().violations.len(), 1);
        assert_matches_full(&session);
    }

    #[test]
    fn net_merge_far_from_edit_is_caught() {
        // Two parallel metal wires 500 apart on different nets: one
        // spacing violation. A far-away strap connecting them makes the
        // pair same-net — the violation must vanish even though the
        // close pair is far outside the edit's geometric dirty region.
        let layout = parse(
            "L NM; 9N A; B 20000 750 10000 375;
             L NM; 9N B; B 20000 750 10000 1625;
             E",
        )
        .unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert_eq!(session.report().violations.len(), 1);

        let mut strap = EditSet::new();
        // Overlapping both rails at the far right end (x ≈ 19k): merges
        // nets A and B into one.
        strap.add_box("NM", Rect::new(19000, 0, 19750, 2000), Some("A"));
        session.apply(&strap).unwrap();
        assert_matches_full(&session);

        let mut unstrap = EditSet::new();
        unstrap.remove(2);
        session.apply(&unstrap).unwrap();
        assert_eq!(session.report().violations.len(), 1);
        assert_matches_full(&session);
    }

    #[test]
    fn heavy_churn_compacts_the_index_and_stays_exact() {
        // A chip big enough that moving one 8-element cell stays under
        // the full-rebuild threshold (8 of 48 elements dirty); each
        // move evicts and re-inserts the cell's elements, leaving 8
        // tombstones per apply, so the threshold (dead > live, floored
        // at 64) trips within a handful of edits. Check byte equality
        // with the full run at every compaction boundary.
        let mut cif = String::from("DS 1;\n");
        for i in 0..8 {
            cif.push_str(&format!("L NM; B 2000 750 1000 {};\n", 375 + i * 3000));
        }
        cif.push_str("DF;\n");
        for i in 0..40 {
            cif.push_str(&format!("L NM; B 2000 750 1000 {};\n", 375 + i * 3000));
        }
        cif.push_str("C 1 T 50000 0;\nE");
        let layout = parse(&cif).unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        assert!(session.report().violations.is_empty());
        let mut compactions = 0;
        for step in 0..30 {
            let mut churn = EditSet::new();
            churn.translate(40, if step % 2 == 0 { 2500 } else { -2500 }, 0);
            let stats = session.apply(&churn).unwrap();
            assert!(!stats.full_rebuild, "churn edits must stay incremental");
            if stats.index_compacted {
                compactions += 1;
                assert_matches_full(&session);
            }
            if step % 10 == 0 {
                assert_matches_full(&session);
            }
        }
        assert!(
            compactions >= 2,
            "30 churn applies must trip the compaction threshold repeatedly \
             (got {compactions})"
        );
        // The session keeps working (and can compact again) afterwards.
        let mut after = EditSet::new();
        after.add_box("NM", Rect::new(0, 1250, 2000, 2000), None);
        session.apply(&after).unwrap();
        assert_eq!(session.report().violations.len(), 1);
        assert_matches_full(&session);
    }

    #[test]
    fn compact_memory_evicts_churn_garbage_and_stays_exact() {
        // Add-then-remove churn leaves orphaned net keys and paths in
        // the interner (each added element at a distinct bbox interns a
        // fresh auto key). compact_memory must evict them, renumber
        // every live handle (columns, devices, net-graph nodes), and
        // leave the rendered report and the edit loop byte-identical.
        // The base chip is wide enough that one-box churn stays under
        // the full-rebuild threshold (a rebuild resets the interner and
        // would hide the garbage this test is about).
        let mut cif = String::new();
        for i in 0..40 {
            cif.push_str(&format!("L NM; B 2000 750 1000 {};\n", 375 + i * 3000));
        }
        cif.push('E');
        let layout = parse(&cif).unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        for step in 0..24i64 {
            let mut add = EditSet::new();
            add.add_box(
                "NM",
                Rect::new(50_000, 10_000 + step * 3000, 52_000, 10_750 + step * 3000),
                None,
            );
            let stats = session.apply(&add).unwrap();
            assert!(!stats.full_rebuild, "churn edits must stay incremental");
            let mut remove = EditSet::new();
            remove.remove(40);
            session.apply(&remove).unwrap();
        }
        let before = session.memory_bytes();
        let compaction = session.compact_memory();
        assert!(
            compaction.strings_evicted > 0,
            "24 add/remove rounds must orphan interned keys: {compaction:?}"
        );
        assert!(compaction.string_bytes_freed > 0);
        assert!(session.memory_bytes() < before);
        assert_matches_full(&session);

        // The compacted session keeps editing (and re-interning) fine.
        let mut add = EditSet::new();
        add.add_box("NM", Rect::new(0, 1250, 2000, 2000), None);
        session.apply(&add).unwrap();
        assert_eq!(session.report().violations.len(), 1);
        assert_matches_full(&session);
        let again = session.compact_memory();
        assert_matches_full(&session);
        let _ = again;
    }

    #[test]
    fn whole_chip_dirty_rail_edit() {
        // Moving a chip-spanning rail dirties everything; the patch
        // machinery must still agree with the full check.
        let layout = parse(
            "L NM; 9N VDD; B 30000 750 15000 375;
             L NM; B 2000 750 1000 1625;
             L NM; B 2000 750 8000 1625;
             E",
        )
        .unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &options());
        let before = session.report().violations.len();
        assert!(before > 0);
        let mut edits = EditSet::new();
        edits.translate(0, 0, -200); // rail slides closer to the stubs
        session.apply(&edits).unwrap();
        assert_matches_full(&session);
    }
}
