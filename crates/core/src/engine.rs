//! The stage engine: the Fig. 10 pipeline as a trait-based stage set.
//!
//! Instead of hard-wiring the six checking stages as sequential function
//! calls, the pipeline is a [`StageEngine`] holding boxed
//! [`PipelineStage`]s. Every stage reads and writes one shared
//! [`CheckContext`] — the layout, technology, options, and the artefacts
//! earlier stages produced (binding, [`ChipView`], connection merges,
//! net list) — and reports findings by **moving** them into the
//! context's [`DiagnosticSink`], so no stage ever clones its violation
//! vector. The engine times every stage generically and returns a
//! [`StageTime`] profile, which [`crate::checker::check_with_engine`]
//! folds into the classic [`StageTimings`] cost breakdown.
//!
//! Two stage sets ship with the crate:
//!
//! * [`StageEngine::diic_pipeline`] — the paper's six stages plus
//!   instantiation and the composition (ERC / net-list consistency)
//!   tail;
//! * [`StageEngine::flat_baseline`] — the mask-level baseline checker as
//!   an alternative four-stage set (union, width, spacing, Fig. 7 gate
//!   rule — each separately profiled, the width/spacing phases parallel
//!   per [`CheckOptions::parallelism`]), so ablation harnesses drive
//!   both checkers through one interface.
//!
//! Custom stages (lint passes, exporters, extra rule decks) implement
//! [`PipelineStage`] and are added with [`StageEngine::register`]; they
//! appear in the per-stage profile like the built-in ones.

use crate::binding::{ChipView, LayerBinding};
use crate::checker::{CheckOptions, CheckReport, StageTimings};
use crate::connect::{check_connections_parallel, ConnectionResult};
use crate::element_checks::check_elements;
use crate::flat::{
    flat_gate_checks, flat_spacing_checks, flat_width_checks, FlatLayers, FlatOptions,
};
use crate::interact::{check_interactions, InteractStats};
use crate::netgen::{generate_netlist_parallel, NetgenResult};
use crate::parallel::effective_parallelism;
use crate::primitive_checks::check_primitive_symbols;
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::Layout;
use diic_netlist::{check_erc, compare_by_structure, NetlistBuilder};
use diic_tech::Technology;
use std::time::{Duration, Instant};

/// Where stages deposit violations, by move.
///
/// Every producer in the pipeline — the [`PipelineStage`]s of both
/// stage sets, and the incremental session's patch phases — emits
/// through this trait, so the decision of *what happens to a
/// violation* (buffer it, stream it to a writer, just count it) is the
/// caller's, not the stage's. Three implementations ship with the
/// crate:
///
/// * [`DiagnosticSink`] — buffers everything in one vector (the
///   classic report path);
/// * [`StreamingSink`] — holds at most one bounded chunk in memory,
///   flushing each chunk (canonically sorted) to a writer — the
///   bounded-memory report path for million-element chips;
/// * [`SpillingSink`] — like [`StreamingSink`] but the writer receives
///   the **fully sorted** report: chunks past the in-memory budget
///   spill to on-disk sorted runs ([`crate::spill`]) and
///   [`SpillingSink::finish`] streams their k-way merge;
/// * [`CountingSink`] — retains nothing, counting per report stage.
///
/// The ingestion contract all implementations share: violations are
/// accepted **append-only, in arrival order** — a sink may batch or
/// discard, but never reorder what a caller observes through
/// [`Sink::len`], and [`Sink::take_buffered`] returns whatever is
/// retained in arrival order.
pub trait Sink: std::fmt::Debug {
    /// Accepts one violation.
    fn push(&mut self, v: Violation);

    /// Drains `vs` into the sink, leaving it empty (for violation
    /// vectors embedded in stage result structs). This keeps the
    /// zero-copy discipline: diagnostics move, they are never cloned on
    /// their way out of a stage.
    fn append(&mut self, vs: &mut Vec<Violation>) {
        for v in vs.drain(..) {
            self.push(v);
        }
    }

    /// Moves a whole vector of violations into the sink (the
    /// owned-vector form of [`Sink::append`] — both funnel through one
    /// path so the ordering contract cannot fork).
    fn absorb(&mut self, vs: Vec<Violation>) {
        let mut vs = vs;
        self.append(&mut vs);
    }

    /// Number of violations **accepted** so far (streamed or counted
    /// ones included — this is what the engine's per-stage profile
    /// reads, so it must not reset on flush).
    fn len(&self) -> usize;

    /// True if nothing has been accepted.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes whatever the sink still holds **in memory**, in arrival
    /// order. A buffering sink returns everything it accepted; a
    /// streaming or counting sink returns nothing (its violations left
    /// through the writer, or were never retained).
    fn take_buffered(&mut self) -> Vec<Violation> {
        Vec::new()
    }
}

impl<S: Sink + ?Sized> Sink for &mut S {
    fn push(&mut self, v: Violation) {
        (**self).push(v);
    }
    fn append(&mut self, vs: &mut Vec<Violation>) {
        (**self).append(vs);
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn take_buffered(&mut self) -> Vec<Violation> {
        (**self).take_buffered()
    }
}

/// The buffering [`Sink`]: owns every violation of a run in one vector.
#[derive(Debug, Default)]
pub struct DiagnosticSink {
    violations: Vec<Violation>,
}

impl DiagnosticSink {
    /// An empty sink.
    pub fn new() -> Self {
        DiagnosticSink::default()
    }

    /// Consumes the sink, yielding the collected violations in **report
    /// order**.
    ///
    /// The ordering contract (which report patching depends on): the
    /// list is exactly the concatenation of each stage's violations in
    /// stage *registration* order, and within one stage in the order
    /// the stage pushed them — ingestion is append-only through
    /// [`Sink::append`], nothing is ever reordered or deduplicated
    /// here. A canonical refinement of this order (sorted within each
    /// stage) is produced by [`crate::report::canonical_sort`]; the
    /// incremental checker keeps its patched reports in that canonical
    /// form.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }
}

impl Sink for DiagnosticSink {
    fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    fn append(&mut self, vs: &mut Vec<Violation>) {
        self.violations.append(vs);
    }

    fn len(&self) -> usize {
        self.violations.len()
    }

    fn take_buffered(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }
}

/// A bounded-memory [`Sink`]: retains at most `chunk_capacity`
/// violations, flushing each full chunk — canonically sorted within
/// itself ([`crate::report::canonical_sort`]) — to the writer as one
/// debug-rendered line per violation. Pairing this with the tiled
/// interaction search and sharded instantiation keeps a whole check run
/// at O(tile) memory end to end.
///
/// Write errors are deferred (the [`Sink`] methods cannot fail) and
/// surfaced by [`StreamingSink::finish`].
///
/// **Error latch.** The first write failure poisons the sink: the
/// failed chunk is dropped (a partial `write_all` may have left its
/// prefix in the writer, but [`StreamingSink::written`] does not count
/// it — `written` means *durably written in full chunks*), every
/// subsequent [`Sink::push`] is discarded without buffering or
/// counting, and [`StreamingSink::finish`] returns the original error.
/// A poisoned sink therefore stops mutating both its own state and the
/// writer the moment the error occurs, instead of interleaving later
/// chunks after a torn one.
pub struct StreamingSink<W: std::io::Write> {
    out: W,
    chunk: Vec<Violation>,
    capacity: usize,
    accepted: usize,
    written: usize,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> StreamingSink<W> {
    /// A sink flushing to `out` every `chunk_capacity` violations
    /// (clamped to ≥ 1; `1` streams every violation immediately).
    pub fn new(out: W, chunk_capacity: usize) -> Self {
        StreamingSink {
            out,
            chunk: Vec::new(),
            capacity: chunk_capacity.max(1),
            accepted: 0,
            written: 0,
            error: None,
        }
    }

    /// Violations written **durably** to the writer so far: complete
    /// chunks whose `write_all` succeeded. Excludes the pending chunk
    /// and any chunk lost to a write error (even if a prefix of its
    /// bytes reached the writer before the failure).
    pub fn written(&self) -> usize {
        self.written
    }

    /// True once a write error has latched: the sink is poisoned, all
    /// further input is dropped, and [`StreamingSink::finish`] will
    /// return the error.
    pub fn errored(&self) -> bool {
        self.error.is_some()
    }

    fn flush_chunk(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        crate::report::canonical_sort(&mut self.chunk);
        // Format the whole (bounded) chunk and write it in one call:
        // a raw `File` writer then pays one syscall per chunk, not one
        // per violation — no `BufWriter` required of the caller.
        let flushed = self.chunk.len();
        let mut text = String::new();
        for v in self.chunk.drain(..) {
            use std::fmt::Write as _;
            let _ = writeln!(text, "{v:?}");
        }
        match self.out.write_all(text.as_bytes()) {
            Ok(()) => self.written += flushed,
            Err(e) => self.error = Some(e),
        }
    }

    /// Flushes the pending chunk and returns the writer — or the first
    /// deferred write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if self.error.is_none() {
            self.flush_chunk();
        }
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl<W: std::io::Write> std::fmt::Debug for StreamingSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingSink")
            .field("capacity", &self.capacity)
            .field("accepted", &self.accepted)
            .field("written", &self.written)
            .field("pending", &self.chunk.len())
            .field("errored", &self.error.is_some())
            .finish()
    }
}

impl<W: std::io::Write> Sink for StreamingSink<W> {
    fn push(&mut self, v: Violation) {
        if self.error.is_some() {
            // The latch: a poisoned sink accepts nothing further.
            return;
        }
        self.accepted += 1;
        self.chunk.push(v);
        if self.chunk.len() >= self.capacity {
            self.flush_chunk();
        }
    }

    fn len(&self) -> usize {
        self.accepted
    }
}

/// Statistics of a finished [`SpillingSink`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sorted runs spilled to disk (0 = the whole report fit the
    /// in-memory budget and was sorted and written directly).
    pub runs: usize,
    /// Bytes of encoded run records spilled to disk.
    pub spilled_bytes: u64,
    /// Violations written to the output writer (the full report).
    pub written: usize,
}

/// The external-sort [`Sink`]: a bounded in-memory budget, on-disk
/// sorted runs past it, and a k-way merge at the end — the writer
/// receives the report in **global canonical order**
/// ([`crate::report::canonical_sort`] order, byte-identical to sorting
/// a [`DiagnosticSink`]'s buffer) while the process never holds more
/// than `budget` violations plus O(runs) merge cursors in memory.
///
/// Accepted violations accumulate in one chunk; when the chunk reaches
/// the budget it is canonically sorted and appended as a *run* to a
/// single unlinked temp file ([`crate::spill::SpillFile`] — see that
/// module for the record format). [`SpillingSink::finish`] then streams
/// the heap-merge of all runs (plus the final partial chunk) to the
/// writer as one debug-rendered line per violation. A report that
/// never exceeds the budget spills nothing: it is sorted in memory and
/// written directly, so small chips pay no I/O beyond the final write.
///
/// **Error latch.** Spill and merge I/O can fail mid-run; the first
/// failure poisons the sink exactly like [`StreamingSink`]: further
/// input is dropped uncounted, no further writes are attempted, and
/// [`SpillingSink::finish`] returns the error.
pub struct SpillingSink<W: std::io::Write> {
    out: W,
    chunk: Vec<Violation>,
    budget: usize,
    accepted: usize,
    spill: Option<crate::spill::SpillFile>,
    spill_dir: Option<std::path::PathBuf>,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> SpillingSink<W> {
    /// A sink merging to `out`, spilling every `budget` violations
    /// (clamped to ≥ 1; `1` makes every violation its own run — the
    /// degenerate all-merge configuration the differential oracle
    /// exercises). Runs spill to the system temp directory; see
    /// [`SpillingSink::with_spill_dir`].
    pub fn new(out: W, budget: usize) -> Self {
        SpillingSink {
            out,
            chunk: Vec::new(),
            budget: budget.max(1),
            accepted: 0,
            spill: None,
            spill_dir: None,
            error: None,
        }
    }

    /// Directs run spilling into `dir` instead of the system temp
    /// directory (the file is still unlinked/deleted automatically).
    #[must_use]
    pub fn with_spill_dir(mut self, dir: std::path::PathBuf) -> Self {
        self.spill_dir = Some(dir);
        self
    }

    /// True once a spill or write error has latched (see the type-level
    /// docs); [`SpillingSink::finish`] will return the error.
    pub fn errored(&self) -> bool {
        self.error.is_some()
    }

    /// Sorted runs spilled so far (the final partial chunk spills at
    /// [`SpillingSink::finish`], so this can grow by one more).
    pub fn spilled_runs(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.runs())
    }

    fn spill_chunk(&mut self) {
        if self.chunk.is_empty() || self.error.is_some() {
            self.chunk.clear();
            return;
        }
        crate::report::canonical_sort(&mut self.chunk);
        let result = (|| -> std::io::Result<()> {
            if self.spill.is_none() {
                self.spill = Some(crate::spill::SpillFile::create_in(
                    self.spill_dir.as_deref(),
                )?);
            }
            // invariant: just created above when absent.
            let spill = self.spill.as_mut().expect("created above");
            spill.append_run(&self.chunk)
        })();
        self.chunk.clear();
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    /// Merges every spilled run (and the pending chunk) into the
    /// writer in global canonical order, returning the writer and the
    /// run statistics — or the first deferred error.
    pub fn finish(mut self) -> std::io::Result<(W, SpillStats)> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut stats = SpillStats {
            written: self.accepted,
            ..SpillStats::default()
        };
        // Batch merged lines so the writer sees large writes, not one
        // syscall per violation.
        const FLUSH_BYTES: usize = 256 * 1024;
        let mut text = String::new();
        if let Some(mut spill) = self.spill.take() {
            // External path: the pending chunk becomes the last run,
            // then everything merges from disk.
            self.spill = Some(spill);
            self.spill_chunk();
            if let Some(e) = self.error.take() {
                return Err(e);
            }
            // invariant: spill_chunk either latched an error (returned
            // above) or left a spill file holding at least this chunk.
            spill = self.spill.take().expect("spill survives spill_chunk");
            stats.runs = spill.runs();
            stats.spilled_bytes = spill.bytes();
            let out = &mut self.out;
            spill.merge(&mut |_, line| {
                text.push_str(&line);
                text.push('\n');
                if text.len() >= FLUSH_BYTES {
                    out.write_all(text.as_bytes())?;
                    text.clear();
                }
                Ok(())
            })?;
        } else {
            // In-memory path: the whole report fit the budget.
            crate::report::canonical_sort(&mut self.chunk);
            for v in self.chunk.drain(..) {
                use std::fmt::Write as _;
                let _ = writeln!(text, "{v:?}");
                if text.len() >= FLUSH_BYTES {
                    self.out.write_all(text.as_bytes())?;
                    text.clear();
                }
            }
        }
        if !text.is_empty() {
            self.out.write_all(text.as_bytes())?;
        }
        Ok((self.out, stats))
    }
}

impl<W: std::io::Write> std::fmt::Debug for SpillingSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillingSink")
            .field("budget", &self.budget)
            .field("accepted", &self.accepted)
            .field("pending", &self.chunk.len())
            .field("runs", &self.spilled_runs())
            .field("errored", &self.error.is_some())
            .finish()
    }
}

impl<W: std::io::Write> Sink for SpillingSink<W> {
    fn push(&mut self, v: Violation) {
        if self.error.is_some() {
            // The latch: a poisoned sink accepts nothing further.
            return;
        }
        self.accepted += 1;
        self.chunk.push(v);
        if self.chunk.len() >= self.budget {
            self.spill_chunk();
        }
    }

    fn len(&self) -> usize {
        self.accepted
    }
}

/// A retention-free [`Sink`]: counts violations per report stage and in
/// total, holding nothing — the cheapest way to answer "how many, and
/// where" on a chip whose full report would not fit in memory.
#[derive(Debug, Default)]
pub struct CountingSink {
    total: usize,
    by_stage: [usize; crate::report::STAGE_COUNT],
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Violations accepted for one report stage.
    pub fn count(&self, stage: CheckStage) -> usize {
        self.by_stage[crate::report::stage_rank(stage)]
    }

    /// Violations accepted in total.
    pub fn total(&self) -> usize {
        self.total
    }
}

impl Sink for CountingSink {
    fn push(&mut self, v: Violation) {
        self.total += 1;
        self.by_stage[crate::report::stage_rank(v.stage)] += 1;
    }

    fn len(&self) -> usize {
        self.total
    }
}

/// Shared state threaded through a pipeline run.
///
/// The context owns everything a stage may need: the borrowed inputs
/// (`layout`, `tech`), the run `options`, the sink, and the artefacts
/// produced by earlier stages (`binding`, `view`, `connections`,
/// `nets`). Later stages use the panicking accessors ([`Self::view`],
/// [`Self::nets`], …) which name the stage that must run first, so a
/// mis-assembled custom engine fails loudly instead of silently
/// reporting nothing.
///
/// **Violations live in the sink, not in the artefacts.** The built-in
/// stages drain the `violations` vector of every result they store
/// (that is the zero-copy contract), so a custom stage reading
/// `ctx.view().violations` or `ctx.connections().violations` will find
/// them empty — inspect [`CheckContext::sink`] instead.
#[derive(Debug)]
pub struct CheckContext<'a> {
    /// The parsed layout under check.
    pub layout: &'a Layout,
    /// The technology (layers, rule matrix, device archetypes).
    pub tech: &'a Technology,
    /// Options for this run (borrowed — a run never mutates them).
    pub options: &'a CheckOptions,
    /// Violation sink shared by all stages. All violations found so
    /// far — including those drained out of `view`, `connections` and
    /// `nets` below — went through it. A context built with
    /// [`CheckContext::new`] owns a buffering [`DiagnosticSink`];
    /// [`CheckContext::new_with_sink`] borrows any [`Sink`] (streaming,
    /// counting, custom) instead.
    pub sink: Box<dyn Sink + 'a>,
    /// Layer binding, set by the instantiate stage.
    pub binding: Option<LayerBinding>,
    /// Instantiated chip view, set by the instantiate stage (its
    /// `violations` have been moved into the sink).
    pub view: Option<ChipView>,
    /// Connection-stage output (merges for net-list generation; its
    /// `violations` have been moved into the sink).
    pub connections: Option<ConnectionResult>,
    /// Net-list generation output (its `violations` have been moved
    /// into the sink).
    pub nets: Option<NetgenResult>,
    /// Per-layer mask unions, set by the flat-union stage (the flat
    /// baseline's counterpart of the instantiate stage).
    pub flat_layers: Option<FlatLayers>,
    /// Interaction-stage statistics.
    pub interact_stats: InteractStats,
    /// Devices waived by the `9C` immunity flag.
    pub waived_devices: Vec<String>,
    /// Optional clip region: stages that support scoping (interactions,
    /// flat width/spacing) restrict their search to geometry within rule
    /// reach of this region and report only violations anchored inside
    /// it. `None` (the default) checks the whole chip. This is the
    /// engine hook the incremental re-check subsystem drives; see
    /// [`crate::incremental`].
    pub clip: Option<diic_geom::Region>,
    /// Library-mode shared state: the batch's precomputed technology
    /// constants and its cross-cell content-keyed candidate cache.
    /// `None` (the default) re-derives the constants per run and keeps
    /// candidate fills run-local — the standalone [`crate::check`]
    /// behaviour. Set by [`crate::library::check_library`]; either way
    /// the run's output bytes are identical.
    pub(crate) library: Option<(
        &'a crate::library::BoundTechnology,
        &'a crate::library::LibraryCache,
    )>,
    /// A warm [`StringInterner`] the instantiate stage seeds the view's
    /// string table from (the library batch driver's per-worker session
    /// dictionary). `None` starts cold. Handle *values* differ between
    /// the two, but handles never reach rendered output (violations
    /// materialize strings at creation; the net list canonicalises by
    /// key strings), so either way the report bytes are identical.
    pub(crate) seed_strings: Option<crate::binding::StringInterner>,
}

impl<'a> CheckContext<'a> {
    /// A fresh context with no stage artefacts yet, buffering its
    /// violations in an owned [`DiagnosticSink`].
    pub fn new(layout: &'a Layout, tech: &'a Technology, options: &'a CheckOptions) -> Self {
        CheckContext::with_sink(layout, tech, options, Box::new(DiagnosticSink::new()))
    }

    /// A fresh context emitting through a borrowed [`Sink`] — the
    /// bounded-memory entry point: pair it with a [`StreamingSink`] or
    /// [`CountingSink`] and the run never buffers its report
    /// (the resulting [`CheckReport::violations`] is then empty; the
    /// sink saw everything).
    pub fn new_with_sink(
        layout: &'a Layout,
        tech: &'a Technology,
        options: &'a CheckOptions,
        sink: &'a mut dyn Sink,
    ) -> Self {
        CheckContext::with_sink(layout, tech, options, Box::new(sink))
    }

    fn with_sink(
        layout: &'a Layout,
        tech: &'a Technology,
        options: &'a CheckOptions,
        sink: Box<dyn Sink + 'a>,
    ) -> Self {
        CheckContext {
            layout,
            tech,
            options,
            sink,
            binding: None,
            view: None,
            connections: None,
            nets: None,
            flat_layers: None,
            interact_stats: InteractStats::default(),
            waived_devices: Vec::new(),
            clip: None,
            library: None,
            seed_strings: None,
        }
    }

    /// Builder-style clip region (see [`CheckContext::clip`]).
    #[must_use]
    pub fn with_clip(mut self, clip: diic_geom::Region) -> Self {
        self.clip = Some(clip);
        self
    }

    /// Builder-style library-mode shared state (see
    /// [`CheckContext::library`]).
    #[must_use]
    pub(crate) fn with_library(
        mut self,
        bound: &'a crate::library::BoundTechnology,
        cache: &'a crate::library::LibraryCache,
    ) -> Self {
        self.library = Some((bound, cache));
        self
    }

    /// Builder-style warm interner seed (see
    /// [`CheckContext::seed_strings`]).
    #[must_use]
    pub(crate) fn with_seed_strings(mut self, seed: crate::binding::StringInterner) -> Self {
        self.seed_strings = Some(seed);
        self
    }

    /// Takes the view's string table out of a finished context (the
    /// library batch driver reclaims its per-worker session interner
    /// this way, now holding the cell's additions). Call after the
    /// engine ran and before [`CheckContext::into_report`] — the report
    /// only reads counts and already-materialized strings.
    pub(crate) fn take_strings(&mut self) -> Option<crate::binding::StringInterner> {
        self.view.as_mut().map(|v| std::mem::take(&mut v.strings))
    }

    // invariant (this and the accessors below): stage-order contract —
    // the engine runs producers before consumers, so a populated field
    // here is a precondition of being scheduled at all; a panic is a
    // mis-registered custom stage set, not an input- or I/O-reachable
    // state.

    /// The layer binding (requires the instantiate stage).
    pub fn binding(&self) -> &LayerBinding {
        self.binding
            .as_ref()
            .expect("layer binding not available: run the instantiate stage first")
    }

    /// The instantiated chip view (requires the instantiate stage).
    pub fn view(&self) -> &ChipView {
        self.view
            .as_ref()
            .expect("chip view not available: run the instantiate stage first")
    }

    /// Mutable chip view (the net-list stage interns its fresh node
    /// keys into the view's string table).
    pub fn view_mut(&mut self) -> &mut ChipView {
        self.view
            .as_mut()
            .expect("chip view not available: run the instantiate stage first")
    }

    /// The connection results (requires the connections stage).
    pub fn connections(&self) -> &ConnectionResult {
        self.connections
            .as_ref()
            .expect("connection results not available: run the connections stage first")
    }

    /// The generated net list (requires the net-list stage).
    pub fn nets(&self) -> &NetgenResult {
        self.nets
            .as_ref()
            .expect("net list not available: run the net-list stage first")
    }

    /// The per-layer mask unions (requires the flat-union stage).
    pub fn flat_layers(&self) -> &FlatLayers {
        self.flat_layers
            .as_ref()
            .expect("flat layer unions not available: run the flat-union stage first")
    }

    /// Folds the finished context and a stage profile into a report.
    /// The report's `violations` are whatever the sink retained in
    /// memory — everything for a buffering context, nothing for a
    /// streaming or counting one.
    pub fn into_report(mut self, profile: Vec<StageTime>) -> CheckReport {
        let timings = StageTimings::from_profile(&profile);
        let (element_count, device_count) = self
            .view
            .as_ref()
            .map(|v| (v.elements.len(), v.devices.len()))
            .unwrap_or((0, 0));
        CheckReport {
            violations: self.sink.take_buffered(),
            netlist: self
                .nets
                .map(|n| n.netlist)
                .unwrap_or_else(|| NetlistBuilder::new().finish()),
            interact_stats: self.interact_stats,
            timings,
            stage_profile: profile,
            waived_devices: self.waived_devices,
            element_count,
            device_count,
        }
    }
}

/// One stage of a checking pipeline.
pub trait PipelineStage {
    /// Stable stage name, used for timing profiles and diagnostics.
    fn name(&self) -> &'static str;

    /// The report stage ([`CheckStage`]) this stage primarily feeds, if
    /// any. Infrastructure stages (instantiation, exporters) return
    /// `None`.
    fn stage(&self) -> Option<CheckStage> {
        None
    }

    /// Runs the stage against the shared context.
    fn run(&self, ctx: &mut CheckContext<'_>);
}

/// Wall-clock record for one executed stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTime {
    /// The stage's [`PipelineStage::name`].
    pub name: String,
    /// Time spent inside [`PipelineStage::run`].
    pub duration: Duration,
    /// Violations the stage pushed into the sink.
    pub violations: usize,
}

/// An ordered, extensible set of pipeline stages.
#[derive(Default)]
pub struct StageEngine {
    stages: Vec<Box<dyn PipelineStage>>,
}

impl StageEngine {
    /// An empty engine; add stages with [`Self::register`].
    pub fn new() -> Self {
        StageEngine::default()
    }

    /// Appends a stage to the pipeline.
    pub fn register(&mut self, stage: Box<dyn PipelineStage>) -> &mut Self {
        self.stages.push(stage);
        self
    }

    /// Builder-style [`Self::register`].
    #[must_use]
    pub fn with_stage(mut self, stage: Box<dyn PipelineStage>) -> Self {
        self.stages.push(stage);
        self
    }

    /// Names of the registered stages, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The paper's Fig. 10 pipeline: instantiate, elements, primitive
    /// symbols, connections, net list, interactions, composition.
    pub fn diic_pipeline() -> Self {
        StageEngine::new()
            .with_stage(Box::new(InstantiateStage))
            .with_stage(Box::new(ElementsStage))
            .with_stage(Box::new(PrimitivesStage))
            .with_stage(Box::new(ConnectionsStage))
            .with_stage(Box::new(NetgenStage))
            .with_stage(Box::new(InteractionsStage))
            .with_stage(Box::new(CompositionStage))
    }

    /// The flat mask-level baseline as an alternative stage set: union
    /// per layer, then the width, spacing, and contact-over-gate phases
    /// as separately profiled stages. The width and spacing stages run
    /// their per-layer/per-rule jobs across the scoped worker pool when
    /// [`CheckOptions::parallelism`] asks for it — like the interaction
    /// stage, byte-identical to serial.
    pub fn flat_baseline(options: FlatOptions) -> Self {
        StageEngine::new()
            .with_stage(Box::new(FlatUnionStage { options }))
            .with_stage(Box::new(FlatWidthStage { options }))
            .with_stage(Box::new(FlatSpacingStage { options }))
            .with_stage(Box::new(FlatGateStage { options }))
    }

    /// Runs every stage in order, timing each generically.
    pub fn run(&self, ctx: &mut CheckContext<'_>) -> Vec<StageTime> {
        self.stages
            .iter()
            .map(|stage| {
                let before = ctx.sink.len();
                let t0 = Instant::now();
                stage.run(ctx);
                StageTime {
                    name: stage.name().to_string(),
                    duration: t0.elapsed(),
                    violations: ctx.sink.len() - before,
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for StageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageEngine")
            .field("stages", &self.stage_names())
            .finish()
    }
}

/// Binds layers and instantiates the chip view (the pipeline's front
/// end; not one of the paper's numbered checking stages). The view is
/// built **sharded**: one walk job per top-level item, run across the
/// scoped worker pool ([`CheckOptions::parallelism`]) and stitched with
/// stable element/device ids — byte-identical to a serial walk for any
/// worker count.
pub struct InstantiateStage;

impl PipelineStage for InstantiateStage {
    fn name(&self) -> &'static str {
        "instantiate"
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let (binding, bind_violations) = LayerBinding::bind(ctx.layout, ctx.tech);
        ctx.sink.absorb(bind_violations);
        let workers = effective_parallelism(ctx.options.parallelism);
        let mut view = match ctx.seed_strings.take() {
            Some(seed) => crate::binding::instantiate_parallel_seeded(
                ctx.layout, ctx.tech, &binding, workers, seed,
            ),
            None => crate::binding::instantiate_parallel(ctx.layout, ctx.tech, &binding, workers),
        };
        ctx.sink.append(&mut view.violations);
        ctx.binding = Some(binding);
        ctx.view = Some(view);
    }
}

/// Stage 2 — "check elements": interconnect width per definition.
pub struct ElementsStage;

impl PipelineStage for ElementsStage {
    fn name(&self) -> &'static str {
        "elements"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::Elements)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let vs = check_elements(ctx.layout, ctx.tech, ctx.binding());
        ctx.sink.absorb(vs);
    }
}

/// Stage 3 — "check primitive symbols": device-internal rules with the
/// `9C` immunity waiver.
pub struct PrimitivesStage;

impl PipelineStage for PrimitivesStage {
    fn name(&self) -> &'static str {
        "primitives"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::PrimitiveSymbols)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let prim = check_primitive_symbols(ctx.layout, ctx.tech, ctx.binding());
        ctx.sink.absorb(prim.violations);
        ctx.waived_devices = prim.waived;
    }
}

/// Stage 4 — "check legal connections": skeletal connectivity and
/// undeclared-device detection. The element scan is sharded by grid
/// tile across the scoped worker pool ([`CheckOptions::parallelism`]) —
/// each candidate pair owned by its lower element's tile, results
/// merged positionally — byte-identical to serial for any worker count.
pub struct ConnectionsStage;

impl PipelineStage for ConnectionsStage {
    fn name(&self) -> &'static str {
        "connections"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::Connections)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let workers = effective_parallelism(ctx.options.parallelism);
        let mut conn = check_connections_parallel(ctx.view(), ctx.tech, workers);
        ctx.sink.append(&mut conn.violations);
        ctx.connections = Some(conn);
    }
}

/// Stage 5 — "generate hierarchical net list". The per-device /
/// per-label union phase fans out over the scoped worker pool
/// ([`CheckOptions::parallelism`]) as symbolic draft rows; the serial
/// canonical assembly interns them in device/label order, so any worker
/// count yields a byte-identical net list.
pub struct NetgenStage;

impl PipelineStage for NetgenStage {
    fn name(&self) -> &'static str {
        "netlist"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::NetList)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let labels: Vec<_> = ctx
            .layout
            .labels()
            .iter()
            .map(|l| (l.clone(), ctx.binding().layer(l.layer)))
            .collect();
        let workers = effective_parallelism(ctx.options.parallelism);
        let merges = ctx.connections().merges.clone();
        let tech = ctx.tech;
        let mut nets = generate_netlist_parallel(ctx.view_mut(), tech, &merges, &labels, workers);
        ctx.sink.append(&mut nets.violations);
        ctx.nets = Some(nets);
    }
}

/// Stage 6 — "check interactions": spacing via the rule matrix, searched
/// serially or across a scoped thread pool
/// ([`CheckOptions::parallelism`]).
pub struct InteractionsStage;

impl PipelineStage for InteractionsStage {
    fn name(&self) -> &'static str {
        "interactions"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::Interactions)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let interact_options = ctx.options.interact_options();
        let (ivs, stats) = match &ctx.clip {
            Some(clip) => crate::interact::check_interactions_clipped(
                ctx.view(),
                ctx.tech,
                ctx.nets(),
                &interact_options,
                clip,
            ),
            None => match ctx.library {
                Some((bound, cache)) => crate::interact::check_interactions_shared(
                    ctx.view(),
                    ctx.tech,
                    ctx.nets(),
                    ctx.layout,
                    &interact_options,
                    bound,
                    cache,
                ),
                None => check_interactions(
                    ctx.view(),
                    ctx.tech,
                    ctx.nets(),
                    ctx.layout,
                    &interact_options,
                ),
            },
        };
        ctx.sink.absorb(ivs);
        ctx.interact_stats = stats;
    }
}

/// The composition tail as a free function: non-geometric construction
/// rules (ERC) and the net-list consistency check. Shared by
/// [`CompositionStage`] and the incremental session (where it is re-run
/// in full on every edit — ERC is global over the net list).
pub fn composition_violations(
    netlist: &diic_netlist::Netlist,
    tech: &Technology,
    options: &CheckOptions,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if options.erc {
        for e in check_erc(netlist, tech) {
            let context = netlist.net(e.net).name.clone();
            out.push(Violation {
                stage: CheckStage::Composition,
                kind: ViolationKind::Erc {
                    rule: e.rule,
                    detail: e.detail,
                },
                location: None,
                context,
            });
        }
    }
    if let Some(intended) = &options.intended_netlist {
        let diff = compare_by_structure(netlist, intended, 12);
        if !diff.matched {
            for msg in diff.messages {
                out.push(Violation {
                    stage: CheckStage::NetList,
                    kind: ViolationKind::NetlistMismatch { detail: msg },
                    location: None,
                    context: String::new(),
                });
            }
        }
    }
    out
}

/// The composition tail: non-geometric construction rules (ERC) and the
/// net-list consistency check.
pub struct CompositionStage;

impl PipelineStage for CompositionStage {
    fn name(&self) -> &'static str {
        "composition"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::Composition)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let vs = composition_violations(&ctx.nets().netlist, ctx.tech, ctx.options);
        ctx.sink.absorb(vs);
    }
}

/// Flat front end: flatten the layout and union it per mask layer (the
/// baseline's counterpart of the instantiate stage — all topology is
/// discarded here). The per-layer unions run across the worker pool
/// (`flat_stage_workers`), byte-identical to serial.
pub struct FlatUnionStage {
    /// Baseline knobs (worker count).
    pub options: FlatOptions,
}

impl PipelineStage for FlatUnionStage {
    fn name(&self) -> &'static str {
        "flat-union"
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let workers = flat_stage_workers(&self.options, ctx);
        ctx.flat_layers = Some(FlatLayers::build_parallel(ctx.layout, ctx.tech, workers));
    }
}

/// The worker count for a flat stage: the stage's own
/// [`FlatOptions::parallelism`] when explicitly set, otherwise the
/// run-wide [`CheckOptions::parallelism`] — so neither knob is silently
/// dead in engine runs.
fn flat_stage_workers(options: &FlatOptions, ctx: &CheckContext<'_>) -> usize {
    if options.parallelism == 1 {
        effective_parallelism(ctx.options.parallelism)
    } else {
        options.effective_parallelism()
    }
}

/// Flat width phase: shrink-expand-compare per layer, parallel over
/// layers (`flat_stage_workers`).
pub struct FlatWidthStage {
    /// Baseline knobs (metric, raster resolution).
    pub options: FlatOptions,
}

impl PipelineStage for FlatWidthStage {
    fn name(&self) -> &'static str {
        "flat-width"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::Elements)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let workers = flat_stage_workers(&self.options, ctx);
        let vs = flat_width_checks(
            ctx.flat_layers(),
            ctx.tech,
            &self.options,
            workers,
            ctx.clip.as_ref(),
        );
        ctx.sink.absorb(vs);
    }
}

/// Flat spacing phase: expand-check-overlap per rule entry / component,
/// parallel over the job list (`flat_stage_workers`).
pub struct FlatSpacingStage {
    /// Baseline knobs (metric).
    pub options: FlatOptions,
}

impl PipelineStage for FlatSpacingStage {
    fn name(&self) -> &'static str {
        "flat-spacing"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::Interactions)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        let workers = flat_stage_workers(&self.options, ctx);
        let vs = flat_spacing_checks(
            ctx.flat_layers(),
            ctx.tech,
            &self.options,
            workers,
            ctx.clip.as_ref(),
        );
        ctx.sink.absorb(vs);
    }
}

/// Flat Fig. 7 phase: the mask-level "no contact over poly∩diff" rule
/// (skipped when [`FlatOptions::contact_over_gate_rule`] is off).
pub struct FlatGateStage {
    /// Baseline knobs (Fig. 7 rule toggle).
    pub options: FlatOptions,
}

impl PipelineStage for FlatGateStage {
    fn name(&self) -> &'static str {
        "flat-gate"
    }

    fn stage(&self) -> Option<CheckStage> {
        Some(CheckStage::PrimitiveSymbols)
    }

    fn run(&self, ctx: &mut CheckContext<'_>) {
        if self.options.contact_over_gate_rule {
            // The gate rule is a handful of whole-layer Booleans — cheap
            // enough to evaluate in full even under a clip (which keeps
            // violation content exact: no component is ever truncated at
            // the clip boundary); only the reported set is clipped.
            let mut vs = flat_gate_checks(ctx.flat_layers(), ctx.tech);
            if let Some(clip) = &ctx.clip {
                vs.retain(|v| v.location.is_none_or(|l| clip.touches_rect(&l)));
            }
            ctx.sink.absorb(vs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_with_engine;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    #[test]
    fn diic_pipeline_stage_order() {
        let engine = StageEngine::diic_pipeline();
        assert_eq!(
            engine.stage_names(),
            vec![
                "instantiate",
                "elements",
                "primitives",
                "connections",
                "netlist",
                "interactions",
                "composition"
            ]
        );
    }

    #[test]
    fn custom_stage_runs_and_is_profiled() {
        struct TagStage;
        impl PipelineStage for TagStage {
            fn name(&self) -> &'static str {
                "tag"
            }
            fn run(&self, ctx: &mut CheckContext<'_>) {
                ctx.sink.push(Violation {
                    stage: CheckStage::Composition,
                    kind: ViolationKind::NonManhattan,
                    location: None,
                    context: "tag-stage".into(),
                });
            }
        }
        let mut engine = StageEngine::diic_pipeline();
        engine.register(Box::new(TagStage));
        let layout = parse("L NM; B 2000 750 1000 375; E").unwrap();
        let tech = nmos_technology();
        let report = check_with_engine(
            &engine,
            &layout,
            &tech,
            &CheckOptions {
                erc: false,
                ..CheckOptions::default()
            },
        );
        let tag = report
            .stage_profile
            .iter()
            .find(|s| s.name == "tag")
            .expect("custom stage missing from profile");
        assert_eq!(tag.violations, 1);
        assert!(report.violations.iter().any(|v| v.context == "tag-stage"));
    }

    #[test]
    fn flat_baseline_engine_matches_flat_check() {
        let layout = parse("L NM; B 2000 700 1000 350; E").unwrap();
        let tech = nmos_technology();
        let direct = crate::flat::flat_check(&layout, &tech, &FlatOptions::default());
        let report = check_with_engine(
            &StageEngine::flat_baseline(FlatOptions::default()),
            &layout,
            &tech,
            &CheckOptions::default(),
        );
        assert_eq!(report.violations, direct);
        assert_eq!(report.element_count, 0, "flat baseline builds no view");
        assert_eq!(
            report
                .stage_profile
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            vec!["flat-union", "flat-width", "flat-spacing", "flat-gate"],
        );
    }

    #[test]
    fn parallel_flat_baseline_engine_is_byte_identical() {
        let layout = parse(
            "L NM; B 2000 700 1000 350;
             L NM; B 2000 750 1000 2000; B 2000 750 1000 2500; E",
        )
        .unwrap();
        let tech = nmos_technology();
        let engine = StageEngine::flat_baseline(FlatOptions::default());
        let serial = check_with_engine(&engine, &layout, &tech, &CheckOptions::default());
        assert!(!serial.violations.is_empty());
        for parallelism in [2usize, 4, 0] {
            let parallel = check_with_engine(
                &engine,
                &layout,
                &tech,
                &CheckOptions {
                    parallelism,
                    ..CheckOptions::default()
                },
            );
            assert_eq!(serial.violations, parallel.violations, "{parallelism}");
        }
        // The FlatOptions knob is live in engine runs too: an explicit
        // non-default value wins over a serial CheckOptions.
        let via_flat_options = check_with_engine(
            &StageEngine::flat_baseline(FlatOptions {
                parallelism: 3,
                ..FlatOptions::default()
            }),
            &layout,
            &tech,
            &CheckOptions::default(),
        );
        assert_eq!(serial.violations, via_flat_options.violations);
    }

    #[test]
    fn sink_moves_violations() {
        let mut sink = DiagnosticSink::new();
        let mut owned = vec![Violation {
            stage: CheckStage::Elements,
            kind: ViolationKind::NonManhattan,
            location: None,
            context: String::new(),
        }];
        sink.append(&mut owned);
        assert!(owned.is_empty());
        assert_eq!(sink.len(), 1);
        sink.absorb(Vec::new());
        assert_eq!(sink.into_violations().len(), 1);
    }

    fn sample_violation(context: &str) -> Violation {
        Violation {
            stage: CheckStage::Elements,
            kind: ViolationKind::NonManhattan,
            location: None,
            context: context.into(),
        }
    }

    #[test]
    fn streaming_sink_flushes_bounded_chunks() {
        let mut sink = StreamingSink::new(Vec::new(), 2);
        sink.push(sample_violation("a"));
        assert_eq!(sink.written(), 0, "below capacity: nothing flushed yet");
        sink.push(sample_violation("b"));
        assert_eq!(sink.written(), 2, "full chunk flushed");
        sink.push(sample_violation("c"));
        assert_eq!(sink.len(), 3, "len counts accepted, not written");
        assert!(sink.take_buffered().is_empty(), "streaming retains nothing");
        let out = sink.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 3, "finish flushes the tail:\n{text}");
        for ctx in ["\"a\"", "\"b\"", "\"c\""] {
            assert!(text.contains(ctx), "missing {ctx} in:\n{text}");
        }
    }

    /// A writer accepting at most `budget` bytes, then failing — the
    /// mid-chunk partial-write case: `write_all` sees a short `Ok`
    /// first, so some bytes land before the error surfaces.
    #[derive(Debug)]
    struct FailingWriter {
        budget: usize,
        taken: usize,
    }

    impl std::io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let room = self.budget - self.taken;
            if room == 0 {
                return Err(std::io::Error::other("writer full"));
            }
            let n = room.min(buf.len());
            self.taken += n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_sink_latches_on_mid_chunk_write_failure() {
        // Room for a few bytes only: the first chunk's write_all makes
        // partial progress, then fails.
        let mut sink = StreamingSink::new(
            FailingWriter {
                budget: 5,
                taken: 0,
            },
            2,
        );
        sink.push(sample_violation("a"));
        assert!(!sink.errored());
        sink.push(sample_violation("b")); // fills the chunk → torn write
        assert!(sink.errored(), "partial write_all must latch the error");
        assert_eq!(
            sink.written(),
            0,
            "written means durably written: a torn chunk does not count"
        );
        let accepted = sink.len();
        // The poisoned sink drops everything that follows — no
        // buffering, no counting, no further writer traffic.
        sink.push(sample_violation("c"));
        sink.push(sample_violation("d"));
        assert_eq!(sink.len(), accepted, "poisoned sink accepts nothing");
        let err = sink
            .finish()
            .expect_err("finish surfaces the latched error");
        assert_eq!(err.to_string(), "writer full");
    }

    #[test]
    fn spilling_sink_in_memory_path_sorts_without_io() {
        // Under budget: nothing spills, the writer gets the canonically
        // sorted report in one shot.
        let mut sink = SpillingSink::new(Vec::new(), 100);
        sink.push(sample_violation("b"));
        sink.push(sample_violation("a"));
        assert_eq!(sink.spilled_runs(), 0);
        let (out, stats) = sink.finish().unwrap();
        assert_eq!(stats.runs, 0, "under budget: no run files");
        assert_eq!(stats.written, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"a\"") && lines[1].contains("\"b\""),
            "canonical order in-memory:\n{text}"
        );
    }

    #[test]
    fn spilling_sink_merges_runs_in_canonical_order() {
        // Budget 2 over 5 violations pushed in reverse order: two
        // spilled runs plus a pending chunk, merged fully sorted.
        let mut sink = SpillingSink::new(Vec::new(), 2);
        for ctx in ["e", "d", "c", "b", "a"] {
            sink.push(sample_violation(ctx));
        }
        assert_eq!(sink.spilled_runs(), 2);
        let (out, stats) = sink.finish().unwrap();
        assert_eq!(stats.runs, 3, "final partial chunk spills at finish");
        assert_eq!(stats.written, 5);
        assert!(stats.spilled_bytes > 0);
        let text = String::from_utf8(out).unwrap();
        let contexts: Vec<&str> = ["\"a\"", "\"b\"", "\"c\"", "\"d\"", "\"e\""].to_vec();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (line, ctx) in lines.iter().zip(&contexts) {
            assert!(line.contains(ctx), "expected {ctx} in {line}");
        }
    }

    #[test]
    fn spilling_sink_latches_on_final_write_failure() {
        let mut sink = SpillingSink::new(
            FailingWriter {
                budget: 3,
                taken: 0,
            },
            1, // every violation its own run
        );
        sink.push(sample_violation("a"));
        sink.push(sample_violation("b"));
        assert_eq!(sink.spilled_runs(), 2, "runs spill to disk error-free");
        // The merge hits the failing output writer at finish.
        let err = sink.finish().expect_err("merge write error surfaces");
        assert_eq!(err.to_string(), "writer full");
    }

    #[test]
    fn counting_sink_counts_per_stage_without_retaining() {
        let mut sink = CountingSink::new();
        sink.push(sample_violation("x"));
        sink.absorb(vec![sample_violation("y"), {
            let mut v = sample_violation("z");
            v.stage = CheckStage::Interactions;
            v
        }]);
        assert_eq!(sink.total(), 3);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.count(CheckStage::Elements), 2);
        assert_eq!(sink.count(CheckStage::Interactions), 1);
        assert_eq!(sink.count(CheckStage::Composition), 0);
        assert!(sink.take_buffered().is_empty());
    }

    #[test]
    fn engine_run_through_streaming_sink_matches_buffered() {
        // The same stage set driven through a StreamingSink must find
        // the same violations (read back from the writer) and count
        // them identically in the per-stage profile.
        let layout =
            parse("L NM; B 2000 700 1000 350; B 2000 750 1000 2000; B 2000 750 1000 2500; E")
                .unwrap();
        let tech = nmos_technology();
        let options = CheckOptions {
            erc: false,
            ..CheckOptions::default()
        };
        let buffered = check_with_engine(&StageEngine::diic_pipeline(), &layout, &tech, &options);
        assert!(!buffered.violations.is_empty());

        let mut sink = StreamingSink::new(Vec::new(), 1);
        let streamed = crate::checker::check_with_sink(
            &StageEngine::diic_pipeline(),
            &layout,
            &tech,
            &options,
            &mut sink,
        );
        assert!(streamed.violations.is_empty(), "nothing buffered");
        assert_eq!(streamed.element_count, buffered.element_count);
        assert_eq!(
            streamed
                .stage_profile
                .iter()
                .map(|s| (s.name.as_str(), s.violations))
                .collect::<Vec<_>>(),
            buffered
                .stage_profile
                .iter()
                .map(|s| (s.name.as_str(), s.violations))
                .collect::<Vec<_>>(),
            "per-stage counts must agree across sinks"
        );
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let mut streamed_lines: Vec<&str> = text.lines().collect();
        streamed_lines.sort_unstable();
        let mut expect: Vec<String> = buffered
            .violations
            .iter()
            .map(|v| format!("{v:?}"))
            .collect();
        expect.sort_unstable();
        assert_eq!(streamed_lines, expect);
    }

    #[test]
    fn missing_stage_panics_with_guidance() {
        let layout = parse("E").unwrap();
        let tech = nmos_technology();
        let options = CheckOptions::default();
        let ctx = CheckContext::new(&layout, &tech, &options);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.view()))
            .expect_err("accessor must panic before instantiate");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap_or_default();
        assert!(msg.contains("instantiate"), "unhelpful panic: {msg}");
    }
}
